//! The Figure 10 face-off: incremental crawler (steady, in-place,
//! variable frequency) versus periodic crawler (batch, shadowing, fixed
//! frequency) on the same evolving web with the same average crawl budget
//! — one `CrawlSession` builder, two `EngineKind`s.
//!
//! ```sh
//! cargo run --release --example crawler_comparison
//! ```

use webevo::prelude::*;

fn main() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(7));
    // Coverage regime: capacity spans every page slot, so the comparison
    // isolates refresh scheduling and swap mechanics.
    let capacity = universe.site_count() * universe.config().pages_per_site + 20;
    let cycle_days = 15.0;
    let horizon = 90.0;
    // One budget drives both engines: same capacity, same average speed.
    let budget = CrawlBudget::paper_monthly(capacity)
        .with_cycle_days(cycle_days)
        .with_batch_window_days(cycle_days / 4.0)
        .with_sample_interval_days(0.5);

    let run = |kind: EngineKind| {
        let mut session = CrawlSession::builder()
            .engine(kind)
            .budget(budget)
            .universe(&universe)
            .build()
            .expect("a valid session");
        session.run(horizon).expect("the crawl runs");
        session.metrics().clone()
    };
    // --- Incremental: steady + in-place + optimal revisit. ---
    let inc = run(EngineKind::Incremental);
    // --- Periodic: batch (1/4-cycle window) + shadow swap. ---
    let per = run(EngineKind::Periodic);

    let warmup = 2.0 * cycle_days;
    println!(
        "{}",
        CrawlMetrics::comparison_table(&[("incremental", &inc), ("periodic", &per)], warmup)
    );
    println!(
        "The incremental crawler should win on freshness, latency and peak\n\
         load (Figure 10's left column); the periodic crawler's only draw is\n\
         implementation simplicity."
    );
}
