//! The Figure 10 face-off: incremental crawler (steady, in-place,
//! variable frequency) versus periodic crawler (batch, shadowing, fixed
//! frequency) on the same evolving web with the same average crawl budget.
//!
//! ```sh
//! cargo run --release --example crawler_comparison
//! ```

use webevo::prelude::*;

fn main() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(7));
    // Coverage regime: capacity spans every page slot, so the comparison
    // isolates refresh scheduling and swap mechanics.
    let capacity = universe.site_count() * universe.config().pages_per_site + 20;
    let cycle_days = 15.0;
    let horizon = 90.0;

    // --- Incremental: steady + in-place + optimal revisit. ---
    let mut incremental = IncrementalCrawler::new(IncrementalConfig {
        capacity,
        crawl_rate_per_day: capacity as f64 / cycle_days,
        ranking_interval_days: 1.0,
        revisit: RevisitStrategy::Optimal,
        estimator: EstimatorKind::Ep,
        history_window: 200,
        sample_interval_days: 0.5,
        ranking: RankingConfig::default(),
    });
    let mut fetcher = SimFetcher::new(&universe);
    incremental.run(&universe, &mut fetcher, 0.0, horizon);

    // --- Periodic: batch (1/4-cycle window) + shadow swap. ---
    let mut periodic = PeriodicCrawler::new(PeriodicConfig {
        capacity,
        cycle_days,
        window_days: cycle_days / 4.0,
        sample_interval_days: 0.5,
    });
    let mut fetcher2 = SimFetcher::new(&universe);
    periodic.run(&universe, &mut fetcher2, 0.0, horizon);

    let warmup = 2.0 * cycle_days;
    let inc = incremental.metrics();
    let per = periodic.metrics();
    println!("metric                     incremental   periodic");
    println!(
        "avg freshness (post-warmup)   {:>8.3}   {:>8.3}",
        inc.average_freshness_from(warmup),
        per.average_freshness_from(warmup)
    );
    println!(
        "avg copy age (days)           {:>8.2}   {:>8.2}",
        inc.age.time_average(),
        per.age.time_average()
    );
    println!(
        "birth->visible (days)         {:>8.2}   {:>8.2}",
        inc.new_page_latency.mean(),
        per.new_page_latency.mean()
    );
    println!(
        "found->visible (days)         {:>8.2}   {:>8.2}",
        inc.discovery_latency.mean(),
        per.discovery_latency.mean()
    );
    println!(
        "peak crawl speed (pages/day)  {:>8.1}   {:>8.1}",
        inc.peak_speed, per.peak_speed
    );
    println!(
        "total fetches                 {:>8}   {:>8}",
        inc.fetches, per.fetches
    );
    println!();
    println!(
        "The incremental crawler should win on freshness, latency and peak\n\
         load (Figure 10's left column); the periodic crawler's only draw is\n\
         implementation simplicity."
    );
}
