//! Quickstart: generate a synthetic web, run the incremental crawler for
//! two simulated months, and print what it achieved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use webevo::prelude::*;

fn main() {
    // A small synthetic web: 10 sites in the paper's domain mix, page
    // windows, Poisson change processes calibrated to the paper's Figure 2.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(2024));
    println!(
        "universe: {} sites, {} page incarnations over {} days",
        universe.site_count(),
        universe.page_count(),
        universe.config().horizon_days
    );

    // An incremental crawler: steady crawling, in-place updates, optimal
    // revisit frequencies from estimator EP (the left-hand column of the
    // paper's Figure 10).
    let capacity = 150;
    let config = IncrementalConfig {
        capacity,
        crawl_rate_per_day: capacity as f64 / 10.0, // 10-day revisit cycle
        ranking_interval_days: 1.0,
        revisit: RevisitStrategy::Optimal,
        estimator: EstimatorKind::Ep,
        history_window: 200,
        sample_interval_days: 1.0,
        ranking: RankingConfig::default(),
    };
    let mut crawler = IncrementalCrawler::new(config);
    let mut fetcher = SimFetcher::new(&universe);
    crawler.run(&universe, &mut fetcher, 0.0, 60.0);

    let m = crawler.metrics();
    println!("collection size:        {}", crawler.collection().len());
    println!("fetches issued:         {}", m.fetches);
    println!("ranking passes:         {}", crawler.ranking_runs());
    println!(
        "steady-state freshness: {:.3}",
        m.average_freshness_from(20.0)
    );
    println!(
        "new-page latency:       {:.1} days mean over {} admissions",
        m.new_page_latency.mean(),
        m.new_page_latency.count()
    );
    println!(
        "collection quality:     {:.3} (1.0 = holds exactly the top pages)",
        crawler.quality(&universe, 60.0)
    );
}
