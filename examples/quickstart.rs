//! Quickstart: generate a synthetic web, run the incremental crawler for
//! two simulated months through the `CrawlSession` builder, and print what
//! it achieved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use webevo::prelude::*;

fn main() {
    // A small synthetic web: 10 sites in the paper's domain mix, page
    // windows, Poisson change processes calibrated to the paper's Figure 2.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(2024));
    println!(
        "universe: {} sites, {} page incarnations over {} days",
        universe.site_count(),
        universe.page_count(),
        universe.config().horizon_days
    );

    // An incremental crawler: steady crawling, in-place updates, optimal
    // revisit frequencies from estimator EP (the left-hand column of the
    // paper's Figure 10). The budget sets capacity and cycle; `.incremental`
    // would override the finer knobs (revisit strategy, estimator, ...).
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(
            CrawlBudget::paper_monthly(150).with_cycle_days(10.0), // 10-day revisit cycle
        )
        .universe(&universe)
        .build()
        .expect("a valid session");
    session.run(60.0).expect("the crawl runs");

    println!("collection size:        {}", session.collection_len());
    println!("ranking passes:         {}", session.passes());
    println!(
        "collection quality:     {:.3} (1.0 = holds exactly the top pages)",
        session.quality(60.0).expect("incremental engines have a collection")
    );
    // The standard metrics table (shared with `repro crawlers` and the
    // crawler_comparison example), post-warmup freshness from day 20.
    println!(
        "{}",
        CrawlMetrics::comparison_table(&[("value", session.metrics())], 20.0)
    );
}
