//! Resume a crawl from durable state: run 30 simulated days under a
//! checkpointing `CrawlSession`, drop the session ("crash"), build a new
//! session over the same checkpoint directory, and `resume()` to day 60 —
//! then verify the freshness trajectory matches an uninterrupted 60-day
//! run exactly.
//!
//! ```sh
//! cargo run --release --example resume_crawl
//! ```

use webevo::prelude::*;

fn main() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(7));
    let budget = CrawlBudget::paper_monthly(60).with_cycle_days(5.0); // 12 fetches/day
    let dir = std::env::temp_dir().join(format!("webevo-resume-example-{}", std::process::id()));

    // --- Day 0–30: crawl under the checkpointer. -----------------------
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&universe)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir writable");
    session.run(30.0).expect("the crawl runs");
    let stats = session.checkpoint_stats().expect("checkpointing active");
    println!(
        "day 30: {} pages in collection, {} fetches; checkpointing wrote \
         {} snapshots and {} WAL flushes ({} records)",
        session.collection_len(),
        session.metrics().fetches,
        stats.snapshots,
        stats.flushes,
        stats.records_logged,
    );

    // --- Crash: every in-memory structure is gone. ---------------------
    drop(session);

    // --- Recover from disk and continue to day 60: one call. -----------
    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&universe)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir writable");
    resumed.resume(60.0).expect("snapshot + WAL tail recover");
    println!(
        "day 60 (resumed): {} pages, {} fetches, steady-state freshness {:.3}",
        resumed.collection_len(),
        resumed.metrics().fetches,
        resumed.metrics().average_freshness_from(30.0),
    );

    // --- Reference: the same 60 days, never interrupted. ---------------
    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&universe)
        .build()
        .expect("a valid session");
    reference.run(60.0).expect("the crawl runs");

    let resumed_rows: Vec<(f64, f64)> = resumed.metrics().freshness.rows().collect();
    let reference_rows: Vec<(f64, f64)> = reference.metrics().freshness.rows().collect();
    assert_eq!(
        resumed_rows, reference_rows,
        "a killed-and-resumed crawl must retrace the uninterrupted freshness trajectory"
    );
    assert_eq!(reference.metrics().fetches, resumed.metrics().fetches);
    println!(
        "verified: {} freshness samples identical to the uninterrupted run — \
         the crash never happened, as far as the metrics can tell",
        resumed_rows.len(),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
