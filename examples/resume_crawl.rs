//! Resume a crawl from durable state: run 30 simulated days under the
//! checkpointer, drop the engine ("crash"), recover `snapshot + WAL tail`
//! from disk, and continue to day 60 — then verify the freshness
//! trajectory matches an uninterrupted 60-day run exactly.
//!
//! ```sh
//! cargo run --release --example resume_crawl
//! ```

use webevo::prelude::*;

fn main() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(7));
    let config = IncrementalConfig {
        capacity: 60,
        crawl_rate_per_day: 12.0,
        ..IncrementalConfig::monthly(60)
    };
    let dir = std::env::temp_dir().join(format!("webevo-resume-example-{}", std::process::id()));

    // --- Day 0–30: crawl under the checkpointer. -----------------------
    let mut checkpointer =
        Checkpointer::create(CheckpointConfig::new(&dir, 5.0)).expect("checkpoint dir writable");
    let mut crawler = IncrementalCrawler::new(config.clone());
    let mut fetcher = SimFetcher::new(&universe);
    crawler.run_hooked(&universe, &mut fetcher, 0.0, 30.0, &mut checkpointer);
    let stats = checkpointer.stats();
    println!(
        "day 30: {} pages in collection, {} fetches; checkpointing wrote \
         {} snapshots and {} WAL flushes ({} records)",
        crawler.collection().len(),
        crawler.metrics().fetches,
        stats.snapshots,
        stats.flushes,
        stats.records_logged,
    );

    // --- Crash: every in-memory structure is gone. ---------------------
    drop(crawler);
    drop(fetcher);
    drop(checkpointer);

    // --- Recover from disk and continue to day 60. ---------------------
    let recovered = recover(&dir)
        .expect("checkpoint decodes")
        .expect("a snapshot was written");
    println!(
        "recovered: snapshot at day {:.2} (fetch #{}), WAL tail of {} records",
        recovered.state.clock.t,
        recovered.state.fetch_seq,
        recovered.wal.len(),
    );
    let (mut resumed, fetcher_state) = IncrementalCrawler::from_state(recovered.state);
    let mut resumed_fetcher = SimFetcher::new(&universe);
    resumed_fetcher.restore_state(fetcher_state.expect("sim fetcher state persisted"));
    resumed.replay(&universe, &mut resumed_fetcher, &recovered.wal);
    // Keep checkpointing the continued run (fresh lineage over the
    // recovered state).
    let mut state = resumed.export_state();
    state.fetcher = Fetcher::export_state(&resumed_fetcher);
    let mut checkpointer = Checkpointer::continue_from(CheckpointConfig::new(&dir, 5.0), &state)
        .expect("checkpoint dir writable");
    resumed.resume(&universe, &mut resumed_fetcher, 60.0, &mut checkpointer);
    println!(
        "day 60 (resumed): {} pages, {} fetches, steady-state freshness {:.3}",
        resumed.collection().len(),
        resumed.metrics().fetches,
        resumed.metrics().average_freshness_from(30.0),
    );

    // --- Reference: the same 60 days, never interrupted. ---------------
    let mut reference = IncrementalCrawler::new(config);
    let mut reference_fetcher = SimFetcher::new(&universe);
    reference.run(&universe, &mut reference_fetcher, 0.0, 60.0);

    let resumed_rows: Vec<(f64, f64)> = resumed.metrics().freshness.rows().collect();
    let reference_rows: Vec<(f64, f64)> = reference.metrics().freshness.rows().collect();
    assert_eq!(
        resumed_rows, reference_rows,
        "a killed-and-resumed crawl must retrace the uninterrupted freshness trajectory"
    );
    assert_eq!(reference.metrics().fetches, resumed.metrics().fetches);
    println!(
        "verified: {} freshness samples identical to the uninterrupted run — \
         the crash never happened, as far as the metrics can tell",
        resumed_rows.len(),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
