//! Reproduce the paper's §2–3 web-evolution experiment end to end:
//! site selection (Table 1), four months of daily monitoring, and the
//! Figure 2/4/5/6 analyses — printed in the paper's table formats.
//!
//! ```sh
//! cargo run --release --example evolution_experiment
//! ```

use webevo::experiment::report;
use webevo::prelude::*;

fn main() {
    // A medium universe preserving the Table 1 domain ratio.
    let universe = WebUniverse::generate(UniverseConfig::medium_scale(1999));
    println!(
        "generated {} sites / {} page incarnations; monitoring daily for 128 days...\n",
        universe.site_count(),
        universe.page_count()
    );

    // Select ~2/3 of a top-candidate pool, echoing 400 → 270.
    let candidates = universe.site_count();
    let permitted = candidates * 270 / 400;
    let report_data = run_full_experiment(
        &universe,
        &MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 },
        candidates,
        permitted,
    );

    print!("{}", report::render_full(&report_data));

    // Summarize the §3 headline claims against this run.
    println!("--- headline claims ---");
    let daily = report_data
        .fig2_overall
        .fraction(IntervalBin::UpToDay);
    println!(
        "pages changing every visit: {:.1}% (paper: >20%)",
        daily * 100.0
    );
    let com_daily = report_data
        .fig2_by_domain
        .get(Domain::Com)
        .fraction(IntervalBin::UpToDay);
    println!(
        "com pages changing daily:   {:.1}% (paper: >40%)",
        com_daily * 100.0
    );
    match report_data.fig5_overall.half_life_days() {
        Some(d) => println!("50% of the web changed by:  day {d} (paper: ~50)"),
        None => println!("50% of the web: not reached in 128 days"),
    }
}
