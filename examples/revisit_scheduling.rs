//! Figure 9 and the §4.3 scheduling comparison: the optimal revisit
//! frequency *rises then falls* with a page's change rate, and the optimal
//! allocation beats uniform and proportional on a realistic rate mixture.
//!
//! ```sh
//! cargo run --release --example revisit_scheduling
//! ```

use webevo::prelude::*;
use webevo::sim::DomainProfile;

fn main() {
    // --- Figure 9: the optimal-frequency curve. ---
    println!("Figure 9: optimal revisit frequency vs change rate");
    println!("(collection of log-spaced rates, fixed total budget)\n");
    let curve = optimal_frequency_curve(0.001, 10.0, 60, 20.0)
        .expect("valid sweep parameters");
    println!("{:<16}{:>16}", "rate (1/day)", "f* (visits/day)");
    for (lambda, f) in curve.iter().step_by(5) {
        let bar = "#".repeat((f * 40.0).round() as usize);
        println!("{lambda:<16.4}{f:>16.4}  {bar}");
    }

    // --- §4.3: policy comparison on a paper-calibrated rate mixture. ---
    let mut rng = SimRng::seed_from_u64(99);
    let mut rates: Vec<ChangeRate> = Vec::new();
    for domain in Domain::ALL {
        let profile = DomainProfile::calibrated(domain);
        let pages = domain.paper_site_count() * 4; // scaled-down mixture
        for _ in 0..pages {
            rates.push(profile.sample_rate(&mut rng));
        }
    }
    // Budget: revisit the whole collection every 10 days on average.
    let budget = rates.len() as f64 / 10.0;
    let uniform = uniform_allocation(&rates, budget).expect("valid");
    let proportional = proportional_allocation(&rates, budget).expect("valid");
    let optimal = optimal_allocation(&rates, budget).expect("valid");

    let f_uni = evaluate_allocation(&rates, &uniform);
    let f_prop = evaluate_allocation(&rates, &proportional);
    let f_opt = evaluate_allocation(&rates, &optimal.allocation);
    println!("\nExpected freshness, {} pages, budget {:.0} visits/day:", rates.len(), budget);
    println!("  uniform       {f_uni:.4}");
    println!("  proportional  {f_prop:.4}");
    println!(
        "  optimal       {:.4}  (+{:.1}% over uniform, +{:.1}% over proportional)",
        f_opt,
        (f_opt / f_uni - 1.0) * 100.0,
        (f_opt / f_prop - 1.0) * 100.0
    );
    println!(
        "  pages the optimizer abandons as too hot: {}",
        optimal.zero_pages
    );
    println!("\nThe paper reports 10-23% freshness gains from optimizing revisit frequencies.");
}
