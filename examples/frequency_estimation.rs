//! Estimators EP and EB in action (§5.3, [CGM99a]): watch both converge on
//! pages with known ground-truth change rates, and see the naive estimator
//! saturate on fast pages (Figure 1(a)'s granularity limit).
//!
//! ```sh
//! cargo run --release --example frequency_estimation
//! ```

use webevo::prelude::*;

fn observe_page(lambda: f64, days: usize, seed: u64) -> (ChangeHistory, BayesianEstimator) {
    let mut rng = SimRng::seed_from_u64(seed);
    let process = PoissonProcess::generate(&mut rng, lambda, days as f64 + 1.0);
    let mut history = ChangeHistory::new(days + 2);
    let mut bayes = BayesianEstimator::uniform_prior(BayesianEstimator::paper_classes())
        .expect("classes are non-empty");
    let mut prev_version = 0;
    for day in 0..=days {
        let t = day as f64;
        let version = process.version_at(t);
        history.record_visit(t, Checksum::of_version(seed, version));
        if day > 0 {
            bayes.observe(1.0, version != prev_version);
        }
        prev_version = version;
    }
    (history, bayes)
}

fn main() {
    println!("daily visits for 180 days; all rates in changes/day\n");
    println!(
        "{:<14}{:>10}{:>10}{:>12}{:>14}{:>16}",
        "true rate", "naive", "EP (MLE)", "EP 95% CI", "EB mean", "EB MAP class"
    );
    for (i, &lambda) in [0.01, 0.05, 1.0 / 7.0, 0.5, 2.0].iter().enumerate() {
        let (history, bayes) = observe_page(lambda, 180, 42 + i as u64);
        let naive = estimate_naive(&history)
            .map(|r| r.per_day())
            .unwrap_or(f64::NAN);
        let ep = estimate_ep(&history, 0.95).ok();
        let (ep_rate, ci) = match &ep {
            Some(e) => (e.rate.per_day(), format!("[{:.3},{:>6}]", e.ci.lo, fmt_hi(e.ci.hi))),
            None => (f64::NAN, "-".to_string()),
        };
        println!(
            "{:<14.3}{:>10.3}{:>10.3}{:>12}{:>14.3}{:>16}",
            lambda,
            naive,
            ep_rate,
            ci,
            bayes.posterior_mean_rate().per_day(),
            bayes.map_class().label
        );
    }
    println!(
        "\nNote the λ=2 row: the naive estimator saturates near 1 change/day\n\
         (daily visits cannot see more), while EP's bias-corrected inversion\n\
         and EB's class posterior still identify the page as fast."
    );
}

fn fmt_hi(hi: f64) -> String {
    if hi.is_infinite() {
        "inf".to_string()
    } else {
        format!("{hi:.3}")
    }
}
