//! A sharded crawl fleet with per-shard durability and link routing.
//!
//! Partitions the universe's sites across four shards, runs each shard as
//! an independent checkpointed `CrawlSession` on its own thread — with
//! cross-shard link discoveries routed to their owning shards at exchange
//! barriers instead of being dropped — kills the whole fleet mid-run
//! (including tearing one shard's WAL mid-frame, as a crash during a
//! flush would), resumes it, and verifies the merged freshness trajectory
//! is byte-identical to a fleet that was never interrupted. Finally it
//! rebalances the fleet onto a skew-free partition and resumes under the
//! new plan.
//!
//! ```sh
//! cargo run --release --example fleet_crawl
//! ```

use webevo::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("webevo-fleet-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let universe = WebUniverse::generate(UniverseConfig::test_scale(2024));
    let budget = CrawlBudget::paper_monthly(60).with_cycle_days(6.0);
    let shards = 4u32;
    let build = |checkpoint: bool| {
        let mut builder = FleetSession::builder()
            .shards(shards)
            .partition(ShardFn::Hash)
            .engine(EngineKind::Incremental)
            .budget(budget)
            .universe(&universe)
            .failure_rate(0.1);
        if checkpoint {
            builder = builder.checkpoint(&dir, 4.0);
        }
        builder.build().expect("a valid fleet")
    };

    // Phase 1: crawl to day 20 under checkpointing, then "crash".
    let mut fleet = build(true);
    println!(
        "running a {shards}-shard fleet over {} sites (plan: {}) to day 20...",
        universe.site_count(),
        fleet.plan().function(),
    );
    let first = fleet.run(20.0).expect("the fleet runs").clone();
    for report in &first.shards {
        println!(
            "  {}: {} sites, {} fetches, {} pages held, {} links routed in",
            report.shard,
            report.sites,
            report.metrics.fetches,
            report.collection_len,
            report.routed_links
        );
    }
    assert_eq!(
        first.shards.iter().map(|s| s.foreign_rejects).sum::<u64>(),
        0,
        "link routing keeps every fetch on an owned site"
    );
    drop(fleet); // the crash: every in-memory structure is gone

    // Tear shard 2's WAL mid-frame — that shard also lost its last flush.
    let wal = dir.join("shard-2").join(webevo::store::WAL_FILE);
    let bytes = std::fs::read(&wal).expect("shard 2 has a WAL");
    std::fs::write(&wal, &bytes[..bytes.len().saturating_sub(17)]).expect("wal writable");
    println!("killed the fleet; tore shard-2's WAL mid-frame");

    // Phase 2: resume everything to day 35. Each shard recovers from its
    // own snapshot + WAL; shard 2 re-crawls its torn tail.
    let mut resumed = build(true);
    let recovered = resumed.resume(35.0).expect("the fleet recovers").clone();
    println!(
        "resumed to day 35: {} fetches, {} pages across the fleet",
        recovered.merged.fetches,
        recovered.collection_len()
    );

    // Reference: the same fleet, never interrupted.
    let mut reference = build(false);
    let uninterrupted = reference.run(35.0).expect("the fleet runs").clone();

    let a: Vec<(f64, f64)> = uninterrupted.merged.freshness.rows().collect();
    let b: Vec<(f64, f64)> = recovered.merged.freshness.rows().collect();
    assert_eq!(a, b, "merged freshness trajectory must survive the crash bitwise");
    assert_eq!(uninterrupted.merged.fetches, recovered.merged.fetches);
    println!(
        "crash+resume trajectory matches the uninterrupted fleet bitwise \
         ({} freshness samples, {} cross-shard links routed, avg {:.3})",
        a.len(),
        recovered.routed_links(),
        recovered.merged.average_freshness_from(12.0)
    );

    // Phase 3: migrate the fleet onto the skew-free balanced partition —
    // pages move between shard checkpoints, the manifest is rewritten
    // atomically — then keep crawling under the new plan.
    let new_plan = ShardPlan::new(ShardFn::Balanced, shards, universe.site_count() as u32);
    resumed.rebalance(new_plan).expect("the fleet rebalances");
    let rebalanced = resumed.resume(45.0).expect("resumes under the new plan").clone();
    let sites: Vec<usize> = rebalanced.shards.iter().map(|s| s.sites).collect();
    println!(
        "rebalanced onto {} and resumed to day 45: per-shard sites {:?}, {} pages",
        new_plan.function(),
        sites,
        rebalanced.collection_len()
    );
    assert!(sites.iter().max().unwrap() - sites.iter().min().unwrap() <= 1);

    let _ = std::fs::remove_dir_all(&dir);
}
