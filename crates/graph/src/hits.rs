//! HITS (Hub & Authority) scores \[Kle98\].
//!
//! §5.2 lists "Hub and Authority" alongside PageRank as importance metrics
//! the RankingModule may use. Standard power iteration with L2
//! normalization per step; scores are reported L2-normalized.

use crate::pagegraph::PageGraph;
use serde::{Deserialize, Serialize};
use webevo_types::{DenseMap, Error, PageId, Result};

/// Parameters for the HITS iteration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HitsConfig {
    /// Convergence threshold on the per-page L1 change of both vectors.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig { tolerance: 1e-10, max_iterations: 200 }
    }
}

/// Hub and authority scores per page, each vector L2-normalized.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HitsScores {
    hubs: DenseMap<f64>,
    authorities: DenseMap<f64>,
    iterations: usize,
}

impl HitsScores {
    /// Hub score of a page (0 for unknown).
    pub fn hub(&self, p: PageId) -> f64 {
        self.hubs.get(p).copied().unwrap_or(0.0)
    }

    /// Authority score of a page (0 for unknown).
    pub fn authority(&self, p: PageId) -> f64 {
        self.authorities.get(p).copied().unwrap_or(0.0)
    }

    /// Number of iterations the solve took.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Pages sorted by descending authority.
    pub fn ranked_authorities(&self) -> Vec<(PageId, f64)> {
        let mut v: Vec<_> = self.authorities.iter().map(|(p, &s)| (p, s)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        v
    }

    /// Pages sorted by descending hub score.
    pub fn ranked_hubs(&self) -> Vec<(PageId, f64)> {
        let mut v: Vec<_> = self.hubs.iter().map(|(p, &s)| (p, s)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        v
    }
}

/// Run HITS over the whole graph (the "root set" is the graph itself; the
/// crawler applies it to its Collection).
pub fn hits(graph: &PageGraph, config: &HitsConfig) -> Result<HitsScores> {
    let n = graph.page_count();
    if n == 0 {
        return Ok(HitsScores::default());
    }
    let mut pages: Vec<PageId> = graph.pages().collect();
    pages.sort_unstable();
    let index: DenseMap<usize> =
        pages.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let resolve =
        |q: PageId| *index.get(q).expect("link endpoint is in the graph");
    let out_edges: Vec<Vec<usize>> = pages
        .iter()
        .map(|&p| graph.out_links(p).iter().map(|&q| resolve(q)).collect())
        .collect();
    let in_edges: Vec<Vec<usize>> = pages
        .iter()
        .map(|&p| graph.in_links(p).iter().map(|&q| resolve(q)).collect())
        .collect();

    let norm = |v: &mut [f64]| {
        let s: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if s > 0.0 {
            for x in v.iter_mut() {
                *x /= s;
            }
        }
    };

    let inv_sqrt_n = 1.0 / (n as f64).sqrt();
    let mut hub = vec![inv_sqrt_n; n];
    let mut auth = vec![inv_sqrt_n; n];
    for iteration in 1..=config.max_iterations {
        let mut new_auth = vec![0.0; n];
        for i in 0..n {
            new_auth[i] = in_edges[i].iter().map(|&j| hub[j]).sum();
        }
        norm(&mut new_auth);
        let mut new_hub = vec![0.0; n];
        for i in 0..n {
            new_hub[i] = out_edges[i].iter().map(|&j| new_auth[j]).sum();
        }
        norm(&mut new_hub);
        let delta: f64 = hub
            .iter()
            .zip(new_hub.iter())
            .chain(auth.iter().zip(new_auth.iter()))
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / (2.0 * n as f64);
        hub = new_hub;
        auth = new_auth;
        if delta < config.tolerance {
            return Ok(HitsScores {
                hubs: pages.iter().zip(hub.iter()).map(|(&p, &s)| (p, s)).collect(),
                authorities: pages.iter().zip(auth.iter()).map(|(&p, &s)| (p, s)).collect(),
                iterations: iteration,
            });
        }
    }
    Err(Error::NoConvergence { what: "hits", iterations: config.max_iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::SiteId;

    fn p(i: u64) -> PageId {
        PageId(i)
    }

    #[test]
    fn empty_graph() {
        let s = hits(&PageGraph::new(), &HitsConfig::default()).unwrap();
        assert_eq!(s.hub(p(0)), 0.0);
    }

    #[test]
    fn star_authority() {
        // Pages 1..5 all link to page 0: page 0 is the authority, 1..5 are
        // equal hubs.
        let mut g = PageGraph::new();
        for i in 0..6 {
            g.add_page(p(i), SiteId(0));
        }
        for i in 1..6 {
            g.add_link(p(i), p(0));
        }
        let s = hits(&g, &HitsConfig::default()).unwrap();
        assert_eq!(s.ranked_authorities()[0].0, p(0));
        assert!((s.authority(p(0)) - 1.0).abs() < 1e-8);
        for i in 1..6 {
            assert!(s.hub(p(i)) > 0.0);
            assert!((s.hub(p(i)) - s.hub(p(1))).abs() < 1e-8, "hubs equal");
        }
        assert!(s.hub(p(0)) < 1e-8);
    }

    #[test]
    fn vectors_are_l2_normalized() {
        let mut g = PageGraph::new();
        for i in 0..4 {
            g.add_page(p(i), SiteId(0));
        }
        g.add_link(p(0), p(1));
        g.add_link(p(1), p(2));
        g.add_link(p(2), p(3));
        g.add_link(p(3), p(0));
        let s = hits(&g, &HitsConfig::default()).unwrap();
        let hub_norm: f64 = (0..4).map(|i| s.hub(p(i)).powi(2)).sum::<f64>().sqrt();
        let auth_norm: f64 = (0..4).map(|i| s.authority(p(i)).powi(2)).sum::<f64>().sqrt();
        assert!((hub_norm - 1.0).abs() < 1e-8);
        assert!((auth_norm - 1.0).abs() < 1e-8);
    }

    #[test]
    fn bipartite_hubs_and_authorities_separate() {
        // Hubs 0,1 each link to authorities 10,11,12.
        let mut g = PageGraph::new();
        for i in [0u64, 1, 10, 11, 12] {
            g.add_page(p(i), SiteId(0));
        }
        for h in [0u64, 1] {
            for a in [10u64, 11, 12] {
                g.add_link(p(h), p(a));
            }
        }
        let s = hits(&g, &HitsConfig::default()).unwrap();
        for h in [0u64, 1] {
            assert!(s.hub(p(h)) > 0.5);
            assert!(s.authority(p(h)) < 1e-8);
        }
        for a in [10u64, 11, 12] {
            assert!(s.authority(p(a)) > 0.5);
            assert!(s.hub(p(a)) < 1e-8);
        }
    }
}
