//! Site-level popularity: the paper's modified PageRank for web sites.
//!
//! §2.2: *"we first construct a hypergraph, where the nodes correspond to
//! the web sites and the edges correspond to the links between the sites.
//! Then for this hypergraph, we can define PR value for each node (site)
//! using the same formula."* The site graph collapses every page-level link
//! `p → q` with `site(p) ≠ site(q)` into a site edge; multiple page links
//! between the same pair of sites collapse into one edge, mirroring how the
//! hypergraph abstracts away page multiplicity.

use crate::pagegraph::PageGraph;
use crate::pagerank::PageRankConfig;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use webevo_types::{Error, Result, SiteId};

/// A directed graph over sites, collapsed from a page graph. Adjacency is
/// kept in ordered maps so neighbor iteration is deterministic by
/// construction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SiteGraph {
    out: BTreeMap<SiteId, BTreeSet<SiteId>>,
    inc: BTreeMap<SiteId, BTreeSet<SiteId>>,
    sites: Vec<SiteId>,
}

impl SiteGraph {
    /// Collapse a page graph into its site hypergraph. Intra-site links are
    /// dropped; inter-site page links become (de-duplicated) site edges.
    pub fn from_page_graph(graph: &PageGraph) -> SiteGraph {
        let mut sg = SiteGraph::default();
        let mut seen: BTreeSet<SiteId> = BTreeSet::new();
        for p in graph.pages() {
            let s = graph.site_of(p).expect("iterating existing pages");
            if seen.insert(s) {
                sg.sites.push(s);
            }
        }
        sg.sites.sort_unstable();
        for (from, to) in graph.links() {
            let sf = graph.site_of(from).expect("link source exists");
            let st = graph.site_of(to).expect("link target exists");
            if sf != st {
                sg.out.entry(sf).or_default().insert(st);
                sg.inc.entry(st).or_default().insert(sf);
            }
        }
        sg
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of inter-site edges.
    pub fn edge_count(&self) -> usize {
        self.out.values().map(|s| s.len()).sum()
    }

    /// Sites in ascending id order.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Out-neighbors of a site.
    pub fn out_neighbors(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.out.get(&s).into_iter().flatten().copied()
    }

    /// In-neighbors of a site.
    pub fn in_neighbors(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.inc.get(&s).into_iter().flatten().copied()
    }

    /// Out-degree of a site.
    pub fn out_degree(&self, s: SiteId) -> usize {
        self.out.get(&s).map(|v| v.len()).unwrap_or(0)
    }
}

/// Site-level PageRank over the collapsed hypergraph — the popularity
/// measure the paper used to pick the 400 candidate sites.
///
/// Scores average to 1 across sites. Dangling sites redistribute uniformly.
pub fn site_pagerank(sg: &SiteGraph, config: &PageRankConfig) -> Result<BTreeMap<SiteId, f64>> {
    let n = sg.site_count();
    if n == 0 {
        return Ok(BTreeMap::new());
    }
    // `sites` is sorted, so a binary search replaces a site→slot map.
    let index = |q: SiteId| {
        sg.sites.binary_search(&q).expect("neighbor is a known site")
    };
    let out_degree: Vec<usize> = sg.sites.iter().map(|&s| sg.out_degree(s)).collect();
    let in_edges: Vec<Vec<usize>> = sg
        .sites
        .iter()
        .map(|&s| {
            let mut v: Vec<usize> = sg.in_neighbors(s).map(index).collect();
            v.sort_unstable();
            v
        })
        .collect();

    let n_f = n as f64;
    let teleport = 1.0 - config.follow;
    let mut rank = vec![1.0; n];
    let mut next = vec![0.0; n];
    for _iteration in 1..=config.max_iterations {
        let dangling: f64 = (0..n)
            .filter(|&i| out_degree[i] == 0)
            .map(|i| rank[i])
            .sum::<f64>()
            / n_f;
        for i in 0..n {
            let mass: f64 = in_edges[i]
                .iter()
                .map(|&j| rank[j] / out_degree[j] as f64)
                .sum();
            next[i] = teleport + config.follow * (mass + dangling);
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n_f;
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            return Ok(sg
                .sites
                .iter()
                .zip(rank.iter())
                .map(|(&s, &r)| (s, r))
                .collect());
        }
    }
    Err(Error::NoConvergence { what: "site pagerank", iterations: config.max_iterations })
}

/// Rank sites by popularity, descending (ties by id). This is the ordering
/// from which the paper took its "top 400 candidate sites".
pub fn rank_sites(scores: &BTreeMap<SiteId, f64>) -> Vec<(SiteId, f64)> {
    let mut v: Vec<(SiteId, f64)> = scores.iter().map(|(&s, &r)| (s, r)).collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::PageId;

    fn build_two_site_graph() -> PageGraph {
        // Site 0: pages 0,1.  Site 1: pages 10,11.
        // Inter-site: 0->10, 1->10 (collapse to one edge 0=>1), 10->0.
        let mut g = PageGraph::new();
        g.add_page(PageId(0), SiteId(0));
        g.add_page(PageId(1), SiteId(0));
        g.add_page(PageId(10), SiteId(1));
        g.add_page(PageId(11), SiteId(1));
        g.add_link(PageId(0), PageId(1)); // intra-site, dropped
        g.add_link(PageId(0), PageId(10));
        g.add_link(PageId(1), PageId(10));
        g.add_link(PageId(10), PageId(0));
        g
    }

    #[test]
    fn collapse_dedups_and_drops_intra_site() {
        let g = build_two_site_graph();
        let sg = SiteGraph::from_page_graph(&g);
        assert_eq!(sg.site_count(), 2);
        assert_eq!(sg.edge_count(), 2); // 0=>1 and 1=>0
        assert_eq!(sg.out_degree(SiteId(0)), 1);
        assert_eq!(sg.out_degree(SiteId(1)), 1);
    }

    #[test]
    fn site_rank_symmetric_cycle_is_uniform() {
        let g = build_two_site_graph();
        let sg = SiteGraph::from_page_graph(&g);
        let scores = site_pagerank(&sg, &PageRankConfig::conventional()).unwrap();
        assert!((scores[&SiteId(0)] - 1.0).abs() < 1e-8);
        assert!((scores[&SiteId(1)] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn popular_site_ranks_first() {
        // Three sites; sites 1 and 2 both link to site 0, site 0 links to 1.
        let mut g = PageGraph::new();
        for (page, site) in [(0u64, 0u32), (1, 1), (2, 2)] {
            g.add_page(PageId(page), SiteId(site));
        }
        g.add_link(PageId(1), PageId(0));
        g.add_link(PageId(2), PageId(0));
        g.add_link(PageId(0), PageId(1));
        let sg = SiteGraph::from_page_graph(&g);
        let scores = site_pagerank(&sg, &PageRankConfig::conventional()).unwrap();
        let ranked = rank_sites(&scores);
        assert_eq!(ranked[0].0, SiteId(0));
    }

    #[test]
    fn empty_site_graph() {
        let sg = SiteGraph::from_page_graph(&PageGraph::new());
        assert_eq!(sg.site_count(), 0);
        assert!(site_pagerank(&sg, &PageRankConfig::conventional())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scores_average_to_one() {
        let mut g = PageGraph::new();
        for (page, site) in [(0u64, 0u32), (1, 1), (2, 2), (3, 3)] {
            g.add_page(PageId(page), SiteId(site));
        }
        g.add_link(PageId(1), PageId(0));
        g.add_link(PageId(2), PageId(0));
        g.add_link(PageId(3), PageId(2));
        let sg = SiteGraph::from_page_graph(&g);
        let scores = site_pagerank(&sg, &PageRankConfig::paper_1999()).unwrap();
        let mean: f64 = scores.values().sum::<f64>() / scores.len() as f64;
        assert!((mean - 1.0).abs() < 1e-8, "mean={mean}");
    }
}
