//! Web-graph substrate for the `webevo` workspace.
//!
//! Three pieces of the paper need a link graph:
//!
//! * **Site selection** (§2.2): the 270 monitored sites were the most
//!   "popular" sites of a 25M-page snapshot, ranked by a *site-level*
//!   PageRank over the hypergraph whose nodes are sites ([`sitegraph`]).
//! * **The RankingModule** (§5.3): the incremental crawler constantly
//!   reevaluates page importance — PageRank [CGMP98, PB98] or Hub &
//!   Authority \[Kle98\] — over the link structure captured in the
//!   Collection ([`mod@pagerank`], [`mod@hits`]), including estimating the rank of
//!   pages *not yet crawled* from the in-links the Collection has seen
//!   (footnote 2 of the paper).
//! * **The simulator** generates realistic link structure to drive both.
//!
//! The [`PageGraph`] is mutable (pages and links appear and disappear as the
//! web evolves) and all ranking algorithms run on a point-in-time view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hits;
pub mod pagegraph;
pub mod pagerank;
pub mod sitegraph;

pub use hits::{hits, HitsConfig, HitsScores};
pub use pagegraph::PageGraph;
pub use pagerank::{pagerank, estimate_uncrawled, PageRankConfig, PageRankScores};
pub use sitegraph::{site_pagerank, SiteGraph};
