//! PageRank over a [`PageGraph`].
//!
//! The paper defines (§2.2):
//!
//! ```text
//! PR(P) = d + (1 − d)·[PR(P₁)/c₁ + … + PR(Pₙ)/cₙ]      (d = 0.9)
//! ```
//!
//! which normalizes so ranks average to 1 (the "start with all PR values
//! equal to 1, iterate" procedure). The more common formulation multiplies
//! the link term by the damping factor instead. Both are the same family up
//! to the substitution `d ↔ 1 − d` and a constant scale; we expose the
//! paper's exact form via [`PageRankConfig::paper_1999`] and the
//! conventional Brin–Page form via [`PageRankConfig::conventional`].
//!
//! Dangling pages (no out-links) redistribute their mass uniformly, the
//! standard fix, so total rank is conserved and the iteration converges on
//! every graph.

use crate::pagegraph::PageGraph;
use serde::{Deserialize, Serialize};
use webevo_types::{DenseMap, Error, PageId, Result};

/// Parameters for the PageRank iteration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PageRankConfig {
    /// Probability of following a link (the conventional damping factor).
    /// The teleport probability is `1 − follow`.
    pub follow: f64,
    /// Convergence threshold on the L1 change between iterations,
    /// normalized per page.
    pub tolerance: f64,
    /// Iteration cap; exceeding it is reported as [`Error::NoConvergence`].
    pub max_iterations: usize,
}

impl PageRankConfig {
    /// The paper's setup (§2.2): `PR(P) = d + (1−d)·Σ…` with `d = 0.9`,
    /// i.e. links are followed with probability 0.1.
    pub fn paper_1999() -> PageRankConfig {
        PageRankConfig { follow: 0.1, tolerance: 1e-10, max_iterations: 200 }
    }

    /// The conventional Brin–Page setup: follow links with probability 0.85.
    pub fn conventional() -> PageRankConfig {
        PageRankConfig { follow: 0.85, tolerance: 1e-10, max_iterations: 200 }
    }
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig::conventional()
    }
}

impl webevo_types::BinEncode for PageRankConfig {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.follow.bin_encode(out);
        self.tolerance.bin_encode(out);
        self.max_iterations.bin_encode(out);
    }
}

impl webevo_types::BinDecode for PageRankConfig {
    fn bin_decode(
        r: &mut webevo_types::BinReader<'_>,
    ) -> std::result::Result<PageRankConfig, webevo_types::BinError> {
        Ok(PageRankConfig {
            follow: f64::bin_decode(r)?,
            tolerance: f64::bin_decode(r)?,
            max_iterations: usize::bin_decode(r)?,
        })
    }
}

/// PageRank scores, normalized so they **average to 1** (the paper's
/// convention: iteration starts with all values 1 and the damping form
/// preserves the mean).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PageRankScores {
    scores: DenseMap<f64>,
    iterations: usize,
}

impl PageRankScores {
    /// Score of a page (0 for unknown pages).
    pub fn get(&self, p: PageId) -> f64 {
        self.scores.get(p).copied().unwrap_or(0.0)
    }

    /// Number of iterations the solve took.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// All `(page, score)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, f64)> + '_ {
        self.scores.iter().map(|(p, &s)| (p, s))
    }

    /// Pages sorted by descending score (ties broken by id for
    /// determinism).
    pub fn ranked(&self) -> Vec<(PageId, f64)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        v
    }

    /// The `k` highest-scored pages in descending score order, ties broken
    /// by ascending `PageId`. The ordering is total and input-order
    /// independent, so serving layers built on it return byte-identical
    /// top-k lists across runs.
    pub fn top_k(&self, k: usize) -> Vec<(PageId, f64)> {
        let mut v = self.ranked();
        v.truncate(k);
        v
    }

    /// The lowest-scored page, if any — the RankingModule's discard
    /// candidate (§5.2: "the discarded page should have the lowest
    /// importance in the collection").
    pub fn lowest(&self) -> Option<(PageId, f64)> {
        self.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)))
    }

    /// Number of scored pages.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True if no pages were scored.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Compute PageRank over the graph's current state.
///
/// Returns scores averaging 1. An empty graph yields empty scores.
pub fn pagerank(graph: &PageGraph, config: &PageRankConfig) -> Result<PageRankScores> {
    if !(0.0..=1.0).contains(&config.follow) {
        return Err(Error::invalid(format!(
            "follow probability must be in [0,1], got {}",
            config.follow
        )));
    }
    let n = graph.page_count();
    if n == 0 {
        return Ok(PageRankScores::default());
    }

    // Stable page order for deterministic iteration.
    let mut pages: Vec<PageId> = graph.pages().collect();
    pages.sort_unstable();
    let index: DenseMap<u32> =
        pages.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();

    let out_degree: Vec<usize> = pages.iter().map(|&p| graph.out_degree(p)).collect();
    // Pre-resolve in-link indices per page, CSR-style: one flat edge
    // array plus per-page offsets. A `Vec<Vec<usize>>` here means one
    // heap allocation per page — at a million pages that is a million
    // allocations per ranking pass, and the allocator's munmap churn
    // shows up as system time dwarfing the arithmetic.
    let mut in_offsets: Vec<usize> = Vec::with_capacity(n + 1);
    in_offsets.push(0);
    let mut in_edges: Vec<u32> = Vec::with_capacity(graph.link_count());
    for &p in &pages {
        in_edges.extend(
            graph
                .in_links(p)
                .iter()
                .map(|&q| *index.get(q).expect("in-link source is in the graph")),
        );
        in_offsets.push(in_edges.len());
    }
    let dangling_pages: Vec<usize> =
        (0..n).filter(|&i| out_degree[i] == 0).collect();

    let n_f = n as f64;
    let mut rank = vec![1.0; n];
    let mut next = vec![0.0; n];
    // Each page's outgoing contribution `rank / out_degree`, computed
    // once per iteration instead of once per edge. The per-edge terms
    // stay the exact division the naive loop performed (never a
    // multiply-by-reciprocal, which can differ in the last ulp), and
    // dangling pages never occur as in-link sources, so the `.max(1)`
    // guard changes no reachable value: scores are bit-identical to the
    // per-edge formulation.
    let mut contrib = vec![0.0; n];
    let teleport = 1.0 - config.follow;

    for iteration in 1..=config.max_iterations {
        // Mass parked on dangling pages is spread uniformly.
        let dangling: f64 =
            dangling_pages.iter().map(|&i| rank[i]).sum::<f64>() / n_f;
        for i in 0..n {
            contrib[i] = rank[i] / out_degree[i].max(1) as f64;
        }
        for i in 0..n {
            let link_mass: f64 = in_edges[in_offsets[i]..in_offsets[i + 1]]
                .iter()
                .map(|&j| contrib[j as usize])
                .sum();
            next[i] = teleport + config.follow * (link_mass + dangling);
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n_f;
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            let scores = pages
                .iter()
                .zip(rank.iter())
                .map(|(&p, &r)| (p, r))
                .collect();
            return Ok(PageRankScores { scores, iterations: iteration });
        }
    }
    Err(Error::NoConvergence { what: "pagerank", iterations: config.max_iterations })
}

/// Estimate the PageRank of a page that is **not** in the collection from
/// the in-links the collection has to it (paper footnote 2: *"even if a
/// page p does not exist in the Collection, the RankingModule can estimate
/// PageRank of p, based on how many pages in the Collection have a link to
/// p"*).
///
/// `in_link_sources` are collection pages known to link to the phantom
/// page. The estimate is one damping step of the PageRank equation using
/// the sources' current scores and out-degrees.
pub fn estimate_uncrawled(
    graph: &PageGraph,
    scores: &PageRankScores,
    in_link_sources: &[PageId],
    config: &PageRankConfig,
) -> f64 {
    let teleport = 1.0 - config.follow;
    let link_mass: f64 = in_link_sources
        .iter()
        .filter(|&&q| graph.contains(q))
        .map(|&q| {
            // The phantom page is one extra out-target of q.
            let d = graph.out_degree(q) + 1;
            scores.get(q) / d as f64
        })
        .sum();
    teleport + config.follow * link_mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::SiteId;

    fn p(i: u64) -> PageId {
        PageId(i)
    }

    fn cycle(n: u64) -> PageGraph {
        let mut g = PageGraph::new();
        for i in 0..n {
            g.add_page(p(i), SiteId(0));
        }
        for i in 0..n {
            g.add_link(p(i), p((i + 1) % n));
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = PageGraph::new();
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn cycle_is_uniform() {
        let g = cycle(5);
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        for i in 0..5 {
            assert!((s.get(p(i)) - 1.0).abs() < 1e-8, "score={}", s.get(p(i)));
        }
    }

    #[test]
    fn scores_average_to_one() {
        let mut g = cycle(4);
        g.add_page(p(10), SiteId(1));
        g.add_link(p(0), p(10));
        g.add_link(p(10), p(2));
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        let mean: f64 = s.iter().map(|(_, v)| v).sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 1e-8, "mean={mean}");
    }

    #[test]
    fn hub_receives_more_rank() {
        // star: everyone links to page 0; page 0 links back to 1.
        let mut g = PageGraph::new();
        for i in 0..6 {
            g.add_page(p(i), SiteId(0));
        }
        for i in 1..6 {
            g.add_link(p(i), p(0));
        }
        g.add_link(p(0), p(1));
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        let ranked = s.ranked();
        assert_eq!(ranked[0].0, p(0), "hub should rank first");
        assert!(s.get(p(0)) > s.get(p(2)) * 2.0);
        // Page 1 gets the hub's endorsement, beating 2..5.
        assert!(s.get(p(1)) > s.get(p(2)));
    }

    #[test]
    fn dangling_pages_converge() {
        let mut g = PageGraph::new();
        g.add_page(p(0), SiteId(0));
        g.add_page(p(1), SiteId(0));
        g.add_link(p(0), p(1)); // page 1 dangles
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        assert!(s.get(p(1)) > s.get(p(0)));
        let mean: f64 = s.iter().map(|(_, v)| v).sum::<f64>() / 2.0;
        assert!((mean - 1.0).abs() < 1e-8);
    }

    #[test]
    fn paper_form_matches_fixed_point() {
        // For the paper's form PR = d + (1-d)*sum, verify the computed
        // scores satisfy the equation on a small asymmetric graph.
        let mut g = cycle(3);
        g.add_link(p(0), p(2));
        let cfg = PageRankConfig::paper_1999();
        let s = pagerank(&g, &cfg).unwrap();
        let d = 0.9; // paper damping; follow = 1 - d
        for i in 0..3u64 {
            let sum: f64 = g
                .in_links(p(i))
                .iter()
                .map(|&q| s.get(q) / g.out_degree(q) as f64)
                .sum();
            let rhs = d + (1.0 - d) * sum;
            assert!((s.get(p(i)) - rhs).abs() < 1e-6, "page {i}");
        }
    }

    #[test]
    fn invalid_follow_rejected() {
        let g = cycle(3);
        let cfg = PageRankConfig { follow: 1.5, ..PageRankConfig::conventional() };
        assert!(pagerank(&g, &cfg).is_err());
    }

    #[test]
    fn lowest_is_discard_candidate() {
        let mut g = PageGraph::new();
        for i in 0..4 {
            g.add_page(p(i), SiteId(0));
        }
        g.add_link(p(1), p(0));
        g.add_link(p(2), p(0));
        g.add_link(p(3), p(0));
        g.add_link(p(0), p(1));
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        let (low, _) = s.lowest().unwrap();
        assert!(low == p(2) || low == p(3), "unlinked-to pages rank lowest, got {low}");
    }

    #[test]
    fn uncrawled_estimate_scales_with_inlinks() {
        let g = cycle(4);
        let cfg = PageRankConfig::conventional();
        let s = pagerank(&g, &cfg).unwrap();
        let none = estimate_uncrawled(&g, &s, &[], &cfg);
        let one = estimate_uncrawled(&g, &s, &[p(0)], &cfg);
        let two = estimate_uncrawled(&g, &s, &[p(0), p(1)], &cfg);
        assert!((none - 0.15).abs() < 1e-12); // teleport only
        assert!(one > none);
        assert!(two > one);
    }

    #[test]
    fn top_k_breaks_ties_by_ascending_page_id() {
        // A 6-cycle scores every page exactly 1.0: the ordering is decided
        // entirely by the tie-break, which must be ascending PageId no
        // matter how the backing map iterates.
        let g = cycle(6);
        let s = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        let top = s.top_k(4);
        assert_eq!(
            top.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            [p(0), p(1), p(2), p(3)]
        );
        // k past the population clamps; k = 0 is empty.
        assert_eq!(s.top_k(100).len(), 6);
        assert!(s.top_k(0).is_empty());
        // And the full ranked order equals top_k(len) — one ordering, not two.
        assert_eq!(s.ranked(), s.top_k(s.len()));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = cycle(7);
        let a = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        let b = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        for (p, v) in a.iter() {
            assert_eq!(v, b.get(p));
        }
    }
}
