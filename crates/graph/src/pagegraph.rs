//! A mutable directed page graph with site attribution.
//!
//! Pages are added and removed as the simulated web evolves and as the
//! crawler's Collection gains and sheds pages; links change whenever a page
//! changes content. The representation is a forward adjacency list plus a
//! reverse adjacency list, both kept in sync, so PageRank (needs in-links)
//! and link extraction (needs out-links) are both cheap.

use serde::{Deserialize, Serialize};
use webevo_types::{DenseMap, PageId, SiteId};

/// A node's adjacency record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct NodeLinks {
    out: Vec<PageId>,
    inc: Vec<PageId>,
    site: SiteId,
}

/// A mutable directed graph over pages, each attributed to a site.
///
/// Self-links are permitted (they occur on the real web); parallel edges are
/// collapsed (a second `add_link` with the same endpoints is a no-op), which
/// matches how link extraction de-duplicates URLs found in a page.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PageGraph {
    nodes: DenseMap<NodeLinks>,
    edge_count: usize,
}

impl PageGraph {
    /// An empty graph.
    pub fn new() -> PageGraph {
        PageGraph::default()
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (directed, de-duplicated) links.
    pub fn link_count(&self) -> usize {
        self.edge_count
    }

    /// True if the page is present.
    pub fn contains(&self, p: PageId) -> bool {
        self.nodes.contains(p)
    }

    /// Add a page attributed to `site`. Re-adding an existing page is a
    /// no-op that keeps its links (the page's site may not change).
    pub fn add_page(&mut self, p: PageId, site: SiteId) {
        match self.nodes.get(p) {
            Some(existing) => {
                debug_assert_eq!(existing.site, site, "a page cannot move between sites");
            }
            None => {
                self.nodes.insert(p, NodeLinks { out: Vec::new(), inc: Vec::new(), site });
            }
        }
    }

    /// Remove a page and every link touching it. Returns true if present.
    pub fn remove_page(&mut self, p: PageId) -> bool {
        let Some(node) = self.nodes.remove(p) else {
            return false;
        };
        // Detach forward links from their targets' in-lists.
        for target in &node.out {
            if *target == p {
                continue; // self-link, already removed with the node
            }
            if let Some(t) = self.nodes.get_mut(*target) {
                if let Some(pos) = t.inc.iter().position(|&q| q == p) {
                    t.inc.swap_remove(pos);
                }
            }
        }
        // Detach incoming links from their sources' out-lists.
        for source in &node.inc {
            if *source == p {
                continue;
            }
            if let Some(s) = self.nodes.get_mut(*source) {
                if let Some(pos) = s.out.iter().position(|&q| q == p) {
                    s.out.swap_remove(pos);
                }
            }
        }
        // Count removed edges: out-degree + in-degree, but a self-link
        // appears in both lists and is a single edge.
        let self_links = node.out.iter().filter(|&&q| q == p).count();
        self.edge_count -= node.out.len() + node.inc.len() - self_links;
        true
    }

    /// Add a directed link `from → to`. Both endpoints must exist. Returns
    /// true if the link was new.
    pub fn add_link(&mut self, from: PageId, to: PageId) -> bool {
        assert!(self.nodes.contains(from), "link source {from} not in graph");
        assert!(self.nodes.contains(to), "link target {to} not in graph");
        {
            let src = self.nodes.get_mut(from).expect("checked above");
            if src.out.contains(&to) {
                return false;
            }
            src.out.push(to);
        }
        self.nodes.get_mut(to).expect("checked above").inc.push(from);
        self.edge_count += 1;
        true
    }

    /// Remove a directed link. Returns true if it existed.
    pub fn remove_link(&mut self, from: PageId, to: PageId) -> bool {
        let Some(src) = self.nodes.get_mut(from) else {
            return false;
        };
        let Some(pos) = src.out.iter().position(|&q| q == to) else {
            return false;
        };
        src.out.swap_remove(pos);
        let dst = self.nodes.get_mut(to).expect("link invariant: target exists");
        let pos = dst
            .inc
            .iter()
            .position(|&q| q == from)
            .expect("link invariant: reverse edge exists");
        dst.inc.swap_remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Replace all outgoing links of `from` with `targets` (de-duplicated,
    /// unknown targets skipped). This is what happens when a changed page is
    /// re-crawled: its old link set is dropped and the new one installed.
    pub fn set_out_links(&mut self, from: PageId, targets: &[PageId]) {
        let old: Vec<PageId> = match self.nodes.get(from) {
            Some(n) => n.out.clone(),
            None => return,
        };
        for t in old {
            self.remove_link(from, t);
        }
        for &t in targets {
            if self.nodes.contains(t) {
                self.add_link(from, t);
            }
        }
    }

    /// Out-links of a page (empty if absent).
    pub fn out_links(&self, p: PageId) -> &[PageId] {
        self.nodes.get(p).map(|n| n.out.as_slice()).unwrap_or(&[])
    }

    /// In-links of a page (empty if absent).
    pub fn in_links(&self, p: PageId) -> &[PageId] {
        self.nodes.get(p).map(|n| n.inc.as_slice()).unwrap_or(&[])
    }

    /// Out-degree.
    pub fn out_degree(&self, p: PageId) -> usize {
        self.out_links(p).len()
    }

    /// In-degree.
    pub fn in_degree(&self, p: PageId) -> usize {
        self.in_links(p).len()
    }

    /// Owning site of a page.
    pub fn site_of(&self, p: PageId) -> Option<SiteId> {
        self.nodes.get(p).map(|n| n.site)
    }

    /// Iterate all pages in ascending id order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.nodes.keys()
    }

    /// Iterate all links as `(from, to)` pairs, ascending by source id.
    pub fn links(&self) -> impl Iterator<Item = (PageId, PageId)> + '_ {
        self.nodes
            .iter()
            .flat_map(|(p, n)| n.out.iter().map(move |&t| (p, t)))
    }

    /// Debug-check internal invariants (forward/reverse lists consistent,
    /// edge count correct). Used by property tests.
    pub fn check_invariants(&self) {
        let mut count = 0;
        for (p, n) in self.nodes.iter() {
            for &t in &n.out {
                count += 1;
                let target = self.nodes.get(t).expect("out-link target exists");
                assert!(
                    target.inc.contains(&p),
                    "missing reverse edge for {p}->{t}"
                );
            }
            for &s in &n.inc {
                let source = self.nodes.get(s).expect("in-link source exists");
                assert!(source.out.contains(&p), "missing forward edge for {s}->{p}");
            }
        }
        assert_eq!(count, self.edge_count, "edge count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    fn triangle() -> PageGraph {
        let mut g = PageGraph::new();
        g.add_page(p(0), s(0));
        g.add_page(p(1), s(0));
        g.add_page(p(2), s(1));
        g.add_link(p(0), p(1));
        g.add_link(p(1), p(2));
        g.add_link(p(2), p(0));
        g
    }

    #[test]
    fn add_and_count() {
        let g = triangle();
        assert_eq!(g.page_count(), 3);
        assert_eq!(g.link_count(), 3);
        assert_eq!(g.out_degree(p(0)), 1);
        assert_eq!(g.in_degree(p(0)), 1);
        g.check_invariants();
    }

    #[test]
    fn duplicate_links_collapse() {
        let mut g = triangle();
        assert!(!g.add_link(p(0), p(1)));
        assert_eq!(g.link_count(), 3);
        g.check_invariants();
    }

    #[test]
    fn remove_link() {
        let mut g = triangle();
        assert!(g.remove_link(p(0), p(1)));
        assert!(!g.remove_link(p(0), p(1)));
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.in_degree(p(1)), 0);
        g.check_invariants();
    }

    #[test]
    fn remove_page_detaches_all_edges() {
        let mut g = triangle();
        assert!(g.remove_page(p(1)));
        assert_eq!(g.page_count(), 2);
        assert_eq!(g.link_count(), 1); // only 2 -> 0 remains
        assert_eq!(g.out_degree(p(0)), 0);
        assert_eq!(g.in_degree(p(2)), 0);
        g.check_invariants();
        assert!(!g.remove_page(p(1)));
    }

    #[test]
    fn self_links_count_once() {
        let mut g = PageGraph::new();
        g.add_page(p(0), s(0));
        assert!(g.add_link(p(0), p(0)));
        assert_eq!(g.link_count(), 1);
        g.check_invariants();
        g.remove_page(p(0));
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.page_count(), 0);
    }

    #[test]
    fn set_out_links_replaces() {
        let mut g = triangle();
        g.set_out_links(p(0), &[p(2), p(2), PageId(99)]); // dup + unknown
        assert_eq!(g.out_links(p(0)), &[p(2)]);
        assert_eq!(g.in_degree(p(1)), 0);
        assert_eq!(g.link_count(), 3); // 0->2, 1->2, 2->0
        g.check_invariants();
    }

    #[test]
    fn site_attribution() {
        let g = triangle();
        assert_eq!(g.site_of(p(0)), Some(s(0)));
        assert_eq!(g.site_of(p(2)), Some(s(1)));
        assert_eq!(g.site_of(PageId(7)), None);
    }

    #[test]
    fn links_iterator_enumerates_all() {
        let g = triangle();
        let mut edges: Vec<_> = g.links().collect();
        edges.sort();
        assert_eq!(edges, vec![(p(0), p(1)), (p(1), p(2)), (p(2), p(0))]);
    }
}
