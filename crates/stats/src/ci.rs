//! Confidence intervals for proportions and Poisson change rates.
//!
//! Estimator **EP** (§5.3, \[CGM99a\]) records how many of `n` visits to a
//! page detected a change and derives "a confidence interval for the change
//! frequency of that page". With visits at a regular interval `Δ`, each
//! visit detects a change with probability `p = 1 − e^{−λΔ}` independently,
//! so a binomial CI on `p` maps monotonically onto a CI on `λ` via
//! `λ = −ln(1 − p)/Δ`. That transformation is implemented here; the Wilson
//! score interval is used for `p` because it behaves at the boundary counts
//! (0 or n detections) that dominate crawl histories.

use crate::special::normal_quantile;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval `[lo, hi]` with its nominal level.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// Wilson score interval for a binomial proportion: `successes` out of `n`
/// at confidence `level` (e.g. 0.95).
pub fn binomial_wilson(successes: u64, n: u64, level: f64) -> ConfidenceInterval {
    assert!(n > 0, "need at least one trial");
    assert!(successes <= n, "successes cannot exceed trials");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level must be in (0,1)");
    let z = normal_quantile(0.5 + level / 2.0);
    let n_f = n as f64;
    let p_hat = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p_hat + z2 / (2.0 * n_f)) / denom;
    let half = z * (p_hat * (1.0 - p_hat) / n_f + z2 / (4.0 * n_f * n_f)).sqrt() / denom;
    // Pin the boundary counts exactly: algebraically lo = 0 when successes
    // = 0 and hi = 1 when successes = n, but floating point can land at
    // ±1e-17, which downstream transforms (−ln(1−p)) must not see.
    let lo = if successes == 0 { 0.0 } else { (center - half).max(0.0) };
    let hi = if successes == n { 1.0 } else { (center + half).min(1.0) };
    ConfidenceInterval { lo, hi, level }
}

/// Confidence interval for a Poisson change rate λ (per day) from a
/// regular-access change history: `detections` changes detected over `n`
/// visits spaced `interval_days` apart.
///
/// Maps the Wilson interval on the per-visit detection probability through
/// `λ = −ln(1 − p)/Δ`. When the upper proportion bound reaches 1 (every
/// visit saw a change) the rate upper bound is unbounded — reported as
/// `f64::INFINITY` — which mirrors the paper's observation that daily
/// monitoring cannot distinguish "changes once a day" from "changes every
/// minute" (Figure 1(a)).
pub fn rate_ci_from_regular_access(
    detections: u64,
    n: u64,
    interval_days: f64,
    level: f64,
) -> ConfidenceInterval {
    assert!(interval_days > 0.0, "access interval must be positive");
    let p_ci = binomial_wilson(detections, n, level);
    let to_rate = |p: f64| {
        if p >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - p).ln() / interval_days
        }
    };
    ConfidenceInterval {
        lo: to_rate(p_ci.lo),
        hi: to_rate(p_ci.hi),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_known_value() {
        // Classic check: 8/10 at 95% → approx [0.490, 0.943].
        let ci = binomial_wilson(8, 10, 0.95);
        assert!((ci.lo - 0.490).abs() < 0.005, "lo={}", ci.lo);
        assert!((ci.hi - 0.943).abs() < 0.005, "hi={}", ci.hi);
        assert!(ci.contains(0.8));
    }

    #[test]
    fn wilson_zero_and_full() {
        let ci0 = binomial_wilson(0, 20, 0.95);
        assert_eq!(ci0.lo, 0.0);
        assert!(ci0.hi > 0.0 && ci0.hi < 0.25);
        let ci1 = binomial_wilson(20, 20, 0.95);
        assert_eq!(ci1.hi, 1.0);
        assert!(ci1.lo > 0.75);
    }

    #[test]
    fn wilson_narrows_with_n() {
        let narrow = binomial_wilson(50, 100, 0.95);
        let wide = binomial_wilson(5, 10, 0.95);
        assert!(narrow.width() < wide.width());
    }

    #[test]
    fn rate_ci_covers_truth() {
        // lambda = 0.1/day observed daily: p = 1 - e^-0.1 ≈ 0.0952.
        // With detections near expectation the CI should cover 0.1.
        let n = 100;
        let p = 1.0 - (-0.1f64).exp();
        let detections = (p * n as f64).round() as u64;
        let ci = rate_ci_from_regular_access(detections, n, 1.0, 0.95);
        assert!(ci.contains(0.1), "ci=[{}, {}]", ci.lo, ci.hi);
    }

    #[test]
    fn rate_ci_every_visit_changed_is_unbounded() {
        let ci = rate_ci_from_regular_access(30, 30, 1.0, 0.95);
        assert!(ci.hi.is_infinite());
        assert!(ci.lo > 1.0, "lo={}", ci.lo); // definitely faster than 1/day
    }

    #[test]
    fn rate_ci_never_changed_starts_at_zero() {
        let ci = rate_ci_from_regular_access(0, 120, 1.0, 0.95);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi < 0.05, "hi={}", ci.hi);
    }

    #[test]
    fn wilson_coverage_simulation() {
        // Empirical coverage of the 95% Wilson interval should be near 95%.
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(17);
        let p = 0.3;
        let n = 50;
        let trials = 2000;
        let mut covered = 0;
        for _ in 0..trials {
            let successes = (0..n).filter(|_| rng.bernoulli(p)).count() as u64;
            if binomial_wilson(successes, n as u64, 0.95).contains(p) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        assert!(coverage > 0.92 && coverage <= 1.0, "coverage={coverage}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_zero_trials() {
        let _ = binomial_wilson(0, 0, 0.95);
    }
}
