//! Histograms, including the paper's categorical interval bins.
//!
//! Figure 2 buckets average change intervals into `≤1day`, `1day–1week`,
//! `1week–1month`, `1month–4months`, `>4months`; Figure 4 buckets visible
//! lifespans into `≤1week`, `1week–1month`, `1month–4months`, `>4months`.
//! Those exact binnings are first-class types here so every consumer agrees
//! on the edges.

use crate::summary::Summary;
use serde::{Deserialize, Serialize};
use std::fmt;

use webevo_types::time::{FOUR_MONTHS, MONTH, WEEK};

/// The five change-interval bins of Figure 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IntervalBin {
    /// Average change interval of one day or less (the paper's "changed
    /// every time we visited" bucket — >20% of all pages, >40% of com).
    UpToDay,
    /// More than a day, up to a week.
    DayToWeek,
    /// More than a week, up to a month.
    WeekToMonth,
    /// More than a month, up to four months.
    MonthToFourMonths,
    /// Longer than four months (never observed to change during the
    /// experiment).
    OverFourMonths,
}

impl IntervalBin {
    /// All bins in Figure 2's left-to-right order.
    pub const ALL: [IntervalBin; 5] = [
        IntervalBin::UpToDay,
        IntervalBin::DayToWeek,
        IntervalBin::WeekToMonth,
        IntervalBin::MonthToFourMonths,
        IntervalBin::OverFourMonths,
    ];

    /// Classify an average change interval in days.
    pub fn classify(interval_days: f64) -> IntervalBin {
        if interval_days <= 1.0 {
            IntervalBin::UpToDay
        } else if interval_days <= WEEK {
            IntervalBin::DayToWeek
        } else if interval_days <= MONTH {
            IntervalBin::WeekToMonth
        } else if interval_days <= FOUR_MONTHS {
            IntervalBin::MonthToFourMonths
        } else {
            IntervalBin::OverFourMonths
        }
    }

    /// Figure 2's axis label for the bin.
    pub const fn label(self) -> &'static str {
        match self {
            IntervalBin::UpToDay => "<=1day",
            IntervalBin::DayToWeek => ">1day,<=1week",
            IntervalBin::WeekToMonth => ">1week,<=1month",
            IntervalBin::MonthToFourMonths => ">1month,<=4months",
            IntervalBin::OverFourMonths => ">4months",
        }
    }

    /// Stable index 0..5 in display order.
    pub const fn index(self) -> usize {
        match self {
            IntervalBin::UpToDay => 0,
            IntervalBin::DayToWeek => 1,
            IntervalBin::WeekToMonth => 2,
            IntervalBin::MonthToFourMonths => 3,
            IntervalBin::OverFourMonths => 4,
        }
    }
}

impl fmt::Display for IntervalBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counts per change-interval bin; renders Figure 2 rows.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalHistogram {
    counts: [u64; 5],
}

impl IntervalHistogram {
    /// Record one page's average change interval.
    pub fn record(&mut self, interval_days: f64) {
        self.counts[IntervalBin::classify(interval_days).index()] += 1;
    }

    /// Record a page directly into a bin (used when the interval is censored
    /// and only its bin is known, e.g. "never changed in 4 months").
    pub fn record_bin(&mut self, bin: IntervalBin) {
        self.counts[bin.index()] += 1;
    }

    /// Count in a bin.
    pub fn count(&self, bin: IntervalBin) -> u64 {
        self.counts[bin.index()]
    }

    /// Total pages recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of pages in a bin (0 when empty).
    pub fn fraction(&self, bin: IntervalBin) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bin) as f64 / total as f64
        }
    }

    /// All fractions in display order.
    pub fn fractions(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        for (i, b) in IntervalBin::ALL.iter().enumerate() {
            out[i] = self.fraction(*b);
        }
        out
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &IntervalHistogram) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
    }
}

/// The four visible-lifespan bins of Figure 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LifespanBin {
    /// Visible lifespan of one week or less.
    UpToWeek,
    /// More than a week, up to a month.
    WeekToMonth,
    /// More than a month, up to four months.
    MonthToFourMonths,
    /// Longer than four months.
    OverFourMonths,
}

impl LifespanBin {
    /// All bins in Figure 4's left-to-right order.
    pub const ALL: [LifespanBin; 4] = [
        LifespanBin::UpToWeek,
        LifespanBin::WeekToMonth,
        LifespanBin::MonthToFourMonths,
        LifespanBin::OverFourMonths,
    ];

    /// Classify a lifespan in days.
    pub fn classify(lifespan_days: f64) -> LifespanBin {
        if lifespan_days <= WEEK {
            LifespanBin::UpToWeek
        } else if lifespan_days <= MONTH {
            LifespanBin::WeekToMonth
        } else if lifespan_days <= FOUR_MONTHS {
            LifespanBin::MonthToFourMonths
        } else {
            LifespanBin::OverFourMonths
        }
    }

    /// Figure 4's axis label.
    pub const fn label(self) -> &'static str {
        match self {
            LifespanBin::UpToWeek => "<=1week",
            LifespanBin::WeekToMonth => ">1week,<=1month",
            LifespanBin::MonthToFourMonths => ">1month,<=4months",
            LifespanBin::OverFourMonths => ">4months",
        }
    }

    /// Stable index 0..4 in display order.
    pub const fn index(self) -> usize {
        match self {
            LifespanBin::UpToWeek => 0,
            LifespanBin::WeekToMonth => 1,
            LifespanBin::MonthToFourMonths => 2,
            LifespanBin::OverFourMonths => 3,
        }
    }
}

impl fmt::Display for LifespanBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counts per lifespan bin; renders Figure 4 rows.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LifespanHistogram {
    counts: [u64; 4],
}

impl LifespanHistogram {
    /// Record one page's visible lifespan in days.
    pub fn record(&mut self, lifespan_days: f64) {
        self.counts[LifespanBin::classify(lifespan_days).index()] += 1;
    }

    /// Count in a bin.
    pub fn count(&self, bin: LifespanBin) -> u64 {
        self.counts[bin.index()]
    }

    /// Total pages recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of pages in a bin (0 when empty).
    pub fn fraction(&self, bin: LifespanBin) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bin) as f64 / total as f64
        }
    }

    /// All fractions in display order.
    pub fn fractions(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (i, b) in LifespanBin::ALL.iter().enumerate() {
            out[i] = self.fraction(*b);
        }
        out
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LifespanHistogram) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
        }
    }
}

/// A general equal-width histogram over `[lo, hi)` with `n` bins, used for
/// Figure 6's change-interval distributions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` / at-or-above `hi`.
    underflow: u64,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// Create with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            summary: Summary::default(),
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.summary.record(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Fraction of in-range samples in bin `i` (Figure 6's vertical axis is
    /// "fraction of changes with that interval").
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// Probability-density estimate in bin `i` (fraction / bin width).
    pub fn density(&self, i: usize) -> f64 {
        self.fraction(i) / self.bin_width()
    }

    /// Summary statistics of everything recorded.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_bins_match_figure2_edges() {
        assert_eq!(IntervalBin::classify(0.5), IntervalBin::UpToDay);
        assert_eq!(IntervalBin::classify(1.0), IntervalBin::UpToDay);
        assert_eq!(IntervalBin::classify(1.01), IntervalBin::DayToWeek);
        assert_eq!(IntervalBin::classify(7.0), IntervalBin::DayToWeek);
        assert_eq!(IntervalBin::classify(7.5), IntervalBin::WeekToMonth);
        assert_eq!(IntervalBin::classify(30.0), IntervalBin::WeekToMonth);
        assert_eq!(IntervalBin::classify(30.5), IntervalBin::MonthToFourMonths);
        assert_eq!(IntervalBin::classify(120.0), IntervalBin::MonthToFourMonths);
        assert_eq!(IntervalBin::classify(121.0), IntervalBin::OverFourMonths);
        assert_eq!(IntervalBin::classify(f64::INFINITY), IntervalBin::OverFourMonths);
    }

    #[test]
    fn lifespan_bins_match_figure4_edges() {
        assert_eq!(LifespanBin::classify(3.0), LifespanBin::UpToWeek);
        assert_eq!(LifespanBin::classify(7.0), LifespanBin::UpToWeek);
        assert_eq!(LifespanBin::classify(10.0), LifespanBin::WeekToMonth);
        assert_eq!(LifespanBin::classify(30.0), LifespanBin::WeekToMonth);
        assert_eq!(LifespanBin::classify(100.0), LifespanBin::MonthToFourMonths);
        assert_eq!(LifespanBin::classify(121.0), LifespanBin::OverFourMonths);
    }

    #[test]
    fn interval_histogram_fractions_sum_to_one() {
        let mut h = IntervalHistogram::default();
        for &d in &[0.5, 2.0, 9.0, 45.0, 200.0, 200.0] {
            h.record(d);
        }
        assert_eq!(h.total(), 6);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.count(IntervalBin::OverFourMonths), 2);
    }

    #[test]
    fn interval_histogram_merge() {
        let mut a = IntervalHistogram::default();
        a.record(0.5);
        let mut b = IntervalHistogram::default();
        b.record(0.7);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(IntervalBin::UpToDay), 2);
    }

    #[test]
    fn general_histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 9.99, -1.0, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 2); // 0.0, 0.5
        assert_eq!(h.counts()[1], 1); // 1.0
        assert_eq!(h.counts()[9], 1); // 9.99
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_fraction_and_density() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        assert!((h.fraction(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.density(1) - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn labels_are_paper_axis_labels() {
        assert_eq!(IntervalBin::UpToDay.label(), "<=1day");
        assert_eq!(LifespanBin::OverFourMonths.label(), ">4months");
    }
}
