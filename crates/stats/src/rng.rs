//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`] that
//! is constructed from an explicit `u64` seed. Sub-streams are forked with
//! [`SimRng::fork`] so that adding a new consumer of randomness does not
//! perturb existing streams — a requirement for reproducible experiments and
//! for the simulator's per-page schedules.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The workspace RNG: a seeded [`SmallRng`] plus the base seed it was built
/// from, kept so sub-streams can be forked order-independently.
#[derive(Clone, Debug)]
pub struct SimRng {
    base: u64,
    inner: SmallRng,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { base: seed, inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent sub-stream identified by `stream`.
    ///
    /// The derivation hashes `(base seed, stream)` rather than drawing from
    /// `self`, so forking is order-independent: `fork(a)` yields the same
    /// stream no matter how many other forks happened first or how much the
    /// parent has been used.
    pub fn fork(&self, stream: u64) -> SimRng {
        let derived = splitmix(self.base ^ splitmix(stream));
        SimRng { base: derived, inner: SmallRng::seed_from_u64(derived) }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// Raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draw an index from a discrete distribution given by `weights`
    /// (need not be normalized; all must be non-negative, sum positive).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: return the last positive-weight slot.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("positive total implies a positive weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_is_order_independent() {
        let root = SimRng::seed_from_u64(7);
        let mut f1 = root.fork(10);
        let root2 = SimRng::seed_from_u64(7);
        let _unrelated = root2.fork(99);
        let mut f2 = root2.fork(10);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn fork_unaffected_by_parent_use() {
        let mut root = SimRng::seed_from_u64(7);
        let mut f1 = root.fork(10);
        let _ = root.next_u64();
        let _ = root.next_u64();
        let mut f2 = root.fork(10);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_are_distinct() {
        let root = SimRng::seed_from_u64(7);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let same = (0..32).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
            let y = r.uniform_range(5.0, 6.0);
            assert!((5.0..6.0).contains(&y));
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "should actually move items");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from_u64(11);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0={frac0}");
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_index_rejects_zero_total() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.weighted_index(&[0.0, 0.0]);
    }
}
