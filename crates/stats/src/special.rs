//! Special functions backing confidence intervals and goodness-of-fit tests.
//!
//! Implemented from standard numerical recipes (Lanczos ln-gamma, series /
//! continued-fraction regularized incomplete gamma, Abramowitz–Stegun erf),
//! accurate to well beyond what hypothesis testing on crawl data needs.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Valid for `x > 0`; relative error below 1e-13 over the tested range.
// Published coefficient tables (Lanczos g=7, Acklam quantile) are kept
// verbatim even where they exceed f64 precision.
#[allow(clippy::excessive_precision)]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// The error function, via the regularized incomplete gamma:
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// CDF of the standard normal distribution.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Inverse CDF (quantile) of the standard normal, Acklam's rational
/// approximation refined with one Halley step. |error| < 1e-9 over (0,1).
#[allow(clippy::excessive_precision)]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires 0 < p < 1, got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // One Halley refinement using the normal pdf.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Survival function of the chi-square distribution with `k` degrees of
/// freedom evaluated at `x` — i.e. the p-value of a chi-square statistic.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_is_exponential_cdf_for_a1() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let expect = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-9);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        for &z in &[0.5, 1.0, 1.96, 3.0] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-12);
        }
        assert!((normal_cdf(1.96) - 0.975_002_104_85).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-9, "p={p}, z={z}");
        }
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // With 1 dof, P(X > 3.841) ≈ 0.05.
        assert!((chi_square_sf(3.841_458_820_694_124, 1.0) - 0.05).abs() < 1e-9);
        // With 5 dof, P(X > 11.0705) ≈ 0.05.
        assert!((chi_square_sf(11.070_497_693_516_351, 5.0) - 0.05).abs() < 1e-9);
        assert_eq!(chi_square_sf(0.0, 3.0), 1.0);
    }
}
