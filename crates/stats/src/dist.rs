//! Elementary distributions: exponential inter-arrival times and Poisson
//! counts.
//!
//! Theorem 1 of the paper: for a Poisson process with rate λ, the time to
//! the next event has density `λ e^{−λt}`. All change schedules in the
//! simulator and all analytic freshness results build on this.

use crate::rng::SimRng;

/// Sample an exponential variate with rate `lambda` (mean `1/lambda`).
///
/// Uses inversion: `−ln(1−U)/λ` with `U ~ Uniform[0,1)`; `1−U ∈ (0,1]` so
/// the logarithm is finite.
#[inline]
pub fn sample_exponential(rng: &mut SimRng, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive, got {lambda}");
    let u = rng.uniform();
    -(-u).ln_1p() / lambda
}

/// Sample a Poisson count with mean `mu`.
///
/// Knuth's product method for small means; for `mu > 30` a normal
/// approximation with continuity correction (adequate for the simulator's
/// workload-sizing uses, never used in the estimation-theory paths where
/// exactness matters).
pub fn sample_poisson_count(rng: &mut SimRng, mu: f64) -> u64 {
    assert!(mu >= 0.0 && mu.is_finite(), "Poisson mean must be finite and >= 0");
    if mu == 0.0 {
        return 0;
    }
    if mu <= 30.0 {
        let limit = (-mu).exp();
        let mut product = rng.uniform();
        let mut count = 0u64;
        while product > limit {
            product *= rng.uniform();
            count += 1;
        }
        count
    } else {
        // Box–Muller normal approximation N(mu, mu).
        let u1 = rng.uniform().max(f64::MIN_POSITIVE);
        let u2 = rng.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = mu + mu.sqrt() * z;
        if x < 0.0 {
            0
        } else {
            x.round() as u64
        }
    }
}

/// Sample from a log-uniform distribution on `[lo, hi]` (both positive).
///
/// Used by the simulator to spread per-page change rates *within* a
/// change-interval band of Figure 2: rates inside a band like
/// "1 week – 1 month" plausibly span the band multiplicatively rather than
/// additively.
pub fn sample_log_uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "log-uniform needs 0 < lo <= hi");
    let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
    rng.uniform_range(ln_lo, ln_hi).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = SimRng::seed_from_u64(1);
        let lambda = 0.25;
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = sample_exponential(&mut rng, lambda);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn exponential_memoryless_tail() {
        // P(X > 2/lambda) should be e^{-2} ≈ 0.1353.
        let mut rng = SimRng::seed_from_u64(2);
        let lambda = 1.0;
        let n = 50_000;
        let tail = (0..n)
            .filter(|_| sample_exponential(&mut rng, lambda) > 2.0)
            .count() as f64
            / n as f64;
        assert!((tail - (-2.0f64).exp()).abs() < 0.01, "tail={tail}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        let mu = 2.5;
        let n = 50_000;
        let mut sum = 0u64;
        let mut sq = 0.0;
        for _ in 0..n {
            let k = sample_poisson_count(&mut rng, mu);
            sum += k;
            sq += (k as f64) * (k as f64);
        }
        let mean = sum as f64 / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - mu).abs() < 0.05, "mean={mean}");
        assert!((var - mu).abs() < 0.15, "var={var}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(sample_poisson_count(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn poisson_large_mean_approximation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mu = 400.0;
        let n = 20_000;
        let mean = (0..n).map(|_| sample_poisson_count(&mut rng, mu) as f64).sum::<f64>()
            / n as f64;
        assert!((mean - mu).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn log_uniform_bounds_and_median() {
        let mut rng = SimRng::seed_from_u64(6);
        let (lo, hi) = (0.01f64, 100.0f64);
        let n = 50_000;
        let mut below_geo_mean = 0usize;
        let geo_mean = (lo * hi).sqrt();
        for _ in 0..n {
            let x = sample_log_uniform(&mut rng, lo, hi);
            assert!((lo..=hi).contains(&x));
            if x < geo_mean {
                below_geo_mean += 1;
            }
        }
        let frac = below_geo_mean as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median should be geometric mean, frac={frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let _ = sample_exponential(&mut rng, 0.0);
    }
}
