//! Statistics substrate for the `webevo` workspace.
//!
//! The paper's measurement study (§3) and its Poisson-model analysis (§3.4,
//! §4) need a small but complete statistics toolkit:
//!
//! * deterministic, seedable random sampling ([`rng`]),
//! * exponential / Poisson distributions and Poisson-process event streams
//!   ([`dist`], [`process`]) — Theorem 1 of the paper,
//! * histograms, including the paper's change-interval bins ([`histogram`]),
//! * empirical CDFs and survival curves for Figure 5 ([`ecdf`]),
//! * binomial and rate confidence intervals for estimator EP ([`ci`]),
//! * special functions backing the above ([`special`]),
//! * chi-square and Kolmogorov–Smirnov goodness-of-fit tests used to verify
//!   the Poisson model the way Figure 6 does ([`gof`]),
//! * streaming summary statistics ([`summary`]).
//!
//! Everything is deterministic given a seed; nothing here touches wall-clock
//! time or global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod dist;
pub mod ecdf;
pub mod gof;
pub mod histogram;
pub mod process;
pub mod rng;
pub mod special;
pub mod summary;

pub use ci::{binomial_wilson, rate_ci_from_regular_access, ConfidenceInterval};
pub use dist::{sample_exponential, sample_poisson_count};
pub use ecdf::{Ecdf, SurvivalCurve};
pub use gof::{chi_square_exponential_fit, ks_test_exponential, GofResult};
pub use histogram::{Histogram, IntervalBin, IntervalHistogram, LifespanBin, LifespanHistogram};
pub use process::{event_slice, generate_poisson_into, PoissonProcess};
pub use rng::SimRng;
pub use summary::Summary;
