//! Poisson-process event schedules.
//!
//! The simulator materializes, for every page, the sorted list of change
//! times over the simulation horizon. A materialized schedule makes the
//! ground truth exactly queryable — "did this page change between my last
//! visit and now?" is a binary search — which is what the estimator- and
//! freshness-evaluation layers are judged against.

use crate::dist::sample_exponential;
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A realized Poisson process: sorted event times within `[0, horizon)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    events: Vec<f64>,
    horizon: f64,
}

impl PoissonProcess {
    /// Generate a realization with rate `lambda` (events/day) on
    /// `[0, horizon)` days. A rate of zero yields no events.
    pub fn generate(rng: &mut SimRng, lambda: f64, horizon: f64) -> PoissonProcess {
        assert!(lambda >= 0.0 && lambda.is_finite(), "rate must be finite and >= 0");
        assert!(horizon >= 0.0 && horizon.is_finite(), "horizon must be finite and >= 0");
        let mut events = Vec::new();
        if lambda > 0.0 {
            // Expected count is lambda * horizon; reserve with some headroom.
            events.reserve((lambda * horizon * 1.2) as usize + 4);
            let mut t = sample_exponential(rng, lambda);
            while t < horizon {
                events.push(t);
                t += sample_exponential(rng, lambda);
            }
        }
        PoissonProcess { events, horizon }
    }

    /// Build directly from pre-sorted event times (used in tests and by
    /// deterministic fixtures). Panics if the events are unsorted or outside
    /// `[0, horizon)`.
    pub fn from_sorted_events(events: Vec<f64>, horizon: f64) -> PoissonProcess {
        assert!(
            events.windows(2).all(|w| w[0] <= w[1]),
            "event times must be sorted"
        );
        if let (Some(&first), Some(&last)) = (events.first(), events.last()) {
            assert!(first >= 0.0 && last < horizon, "events must lie in [0, horizon)");
        }
        PoissonProcess { events, horizon }
    }

    /// The generation horizon in days.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// All event times, sorted ascending.
    #[inline]
    pub fn events(&self) -> &[f64] {
        &self.events
    }

    /// Total number of events.
    #[inline]
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// Number of events in `[a, b)`.
    pub fn count_in(&self, a: f64, b: f64) -> usize {
        if b <= a {
            return 0;
        }
        let lo = self.events.partition_point(|&t| t < a);
        let hi = self.events.partition_point(|&t| t < b);
        hi - lo
    }

    /// True if at least one event falls in `[a, b)`.
    #[inline]
    pub fn any_in(&self, a: f64, b: f64) -> bool {
        self.count_in(a, b) > 0
    }

    /// The time of the last event at or before `t`, if any.
    pub fn last_event_at_or_before(&self, t: f64) -> Option<f64> {
        let idx = self.events.partition_point(|&e| e <= t);
        if idx == 0 {
            None
        } else {
            Some(self.events[idx - 1])
        }
    }

    /// The time of the first event strictly after `t`, if any.
    pub fn first_event_after(&self, t: f64) -> Option<f64> {
        let idx = self.events.partition_point(|&e| e <= t);
        self.events.get(idx).copied()
    }

    /// Number of events at or before `t` — i.e. the page's version at `t`
    /// (version 0 before the first change).
    pub fn version_at(&self, t: f64) -> u64 {
        self.events.partition_point(|&e| e <= t) as u64
    }

    /// Inter-event intervals (length `count() - 1` when `count() >= 2`).
    pub fn intervals(&self) -> Vec<f64> {
        self.events.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Append a realization with rate `lambda` (events/day) on `[0, horizon)`,
/// with each event shifted by `offset`, to `out`.
///
/// Draw-for-draw and rounding-for-rounding identical to
/// [`PoissonProcess::generate`] followed by an `e + offset` shift — the
/// building block for arena-based schedules that pack every page's events
/// into one shared buffer instead of a `Vec` per page.
pub fn generate_poisson_into(
    rng: &mut SimRng,
    lambda: f64,
    horizon: f64,
    offset: f64,
    out: &mut Vec<f64>,
) {
    assert!(lambda >= 0.0 && lambda.is_finite(), "rate must be finite and >= 0");
    assert!(horizon >= 0.0 && horizon.is_finite(), "horizon must be finite and >= 0");
    if lambda > 0.0 {
        out.reserve((lambda * horizon * 1.2) as usize + 4);
        let mut t = sample_exponential(rng, lambda);
        while t < horizon {
            out.push(t + offset);
            t += sample_exponential(rng, lambda);
        }
    }
}

/// Binary-search queries over a sorted event slice — the arena-backed
/// equivalents of the [`PoissonProcess`] accessors, for callers that hold
/// event times as a range of a shared buffer rather than an owned process.
/// Semantics (half-open intervals, inclusive `<= t` version counting) are
/// pinned against the owned implementation by the equivalence tests in
/// `webevo-sim`.
pub mod event_slice {
    /// Number of events in `[a, b)`.
    pub fn count_in(events: &[f64], a: f64, b: f64) -> usize {
        if b <= a {
            return 0;
        }
        let lo = events.partition_point(|&t| t < a);
        let hi = events.partition_point(|&t| t < b);
        hi - lo
    }

    /// True if at least one event falls in `[a, b)`.
    #[inline]
    pub fn any_in(events: &[f64], a: f64, b: f64) -> bool {
        count_in(events, a, b) > 0
    }

    /// The time of the last event at or before `t`, if any.
    pub fn last_at_or_before(events: &[f64], t: f64) -> Option<f64> {
        let idx = events.partition_point(|&e| e <= t);
        if idx == 0 {
            None
        } else {
            Some(events[idx - 1])
        }
    }

    /// The time of the first event strictly after `t`, if any.
    pub fn first_after(events: &[f64], t: f64) -> Option<f64> {
        let idx = events.partition_point(|&e| e <= t);
        events.get(idx).copied()
    }

    /// Number of events at or before `t` — the version at `t`.
    pub fn version_at(events: &[f64], t: f64) -> u64 {
        events.partition_point(|&e| e <= t) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> PoissonProcess {
        PoissonProcess::from_sorted_events(vec![1.0, 2.5, 2.5, 7.0], 10.0)
    }

    #[test]
    fn count_in_half_open() {
        let p = fixture();
        assert_eq!(p.count_in(0.0, 1.0), 0);
        assert_eq!(p.count_in(0.0, 1.0001), 1);
        assert_eq!(p.count_in(1.0, 2.5), 1);
        assert_eq!(p.count_in(2.5, 2.6), 2);
        assert_eq!(p.count_in(0.0, 10.0), 4);
        assert_eq!(p.count_in(5.0, 5.0), 0);
        assert_eq!(p.count_in(9.0, 1.0), 0);
    }

    #[test]
    fn version_counts_events_inclusive() {
        let p = fixture();
        assert_eq!(p.version_at(0.0), 0);
        assert_eq!(p.version_at(1.0), 1);
        assert_eq!(p.version_at(2.5), 3);
        assert_eq!(p.version_at(100.0), 4);
    }

    #[test]
    fn neighbors() {
        let p = fixture();
        assert_eq!(p.last_event_at_or_before(0.5), None);
        assert_eq!(p.last_event_at_or_before(1.0), Some(1.0));
        assert_eq!(p.last_event_at_or_before(6.0), Some(2.5));
        assert_eq!(p.first_event_after(2.5), Some(7.0));
        assert_eq!(p.first_event_after(7.0), None);
    }

    #[test]
    fn generated_count_matches_rate() {
        let mut rng = SimRng::seed_from_u64(8);
        let lambda = 0.5;
        let horizon = 200.0;
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            let p = PoissonProcess::generate(&mut rng, lambda, horizon);
            assert!(p.events().windows(2).all(|w| w[0] <= w[1]));
            assert!(p.events().iter().all(|&t| (0.0..horizon).contains(&t)));
            total += p.count();
        }
        let mean = total as f64 / trials as f64;
        let expect = lambda * horizon;
        assert!((mean - expect).abs() < 0.05 * expect, "mean={mean}, expect={expect}");
    }

    #[test]
    fn zero_rate_has_no_events() {
        let mut rng = SimRng::seed_from_u64(9);
        let p = PoissonProcess::generate(&mut rng, 0.0, 100.0);
        assert_eq!(p.count(), 0);
        assert!(!p.any_in(0.0, 100.0));
    }

    #[test]
    fn intervals_are_differences() {
        let p = fixture();
        assert_eq!(p.intervals(), vec![1.5, 0.0, 4.5]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_fixture() {
        let _ = PoissonProcess::from_sorted_events(vec![2.0, 1.0], 10.0);
    }

    #[test]
    fn intervals_look_exponential() {
        // Mean inter-arrival should be ~1/lambda.
        let mut rng = SimRng::seed_from_u64(10);
        let lambda = 2.0;
        let p = PoissonProcess::generate(&mut rng, lambda, 10_000.0);
        let intervals = p.intervals();
        let mean: f64 = intervals.iter().sum::<f64>() / intervals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
