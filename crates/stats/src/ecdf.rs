//! Empirical CDFs and survival curves.
//!
//! Figure 5 plots "the fraction of pages that were unchanged by the given
//! day" — a survival curve over days. [`SurvivalCurve`] holds such a series
//! sampled at day granularity; [`Ecdf`] is the general empirical CDF used by
//! the Kolmogorov–Smirnov test in [`crate::gof`].

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over a finite sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (need not be sorted; NaNs rejected).
    pub fn new(mut sample: Vec<f64>) -> Ecdf {
        assert!(sample.iter().all(|x| !x.is_nan()), "ECDF sample must not contain NaN");
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: sample }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` = fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Sorted access to the underlying sample.
    pub fn sorted_sample(&self) -> &[f64] {
        &self.sorted
    }

    /// The largest absolute difference `sup |F_n(x) − F(x)|` against a
    /// reference CDF, evaluated at the sample points (both one-sided jumps).
    pub fn ks_distance(&self, cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            let upper = (i as f64 + 1.0) / n as f64 - f;
            let lower = f - i as f64 / n as f64;
            d = d.max(upper.abs()).max(lower.abs());
        }
        d
    }
}

/// A survival curve sampled on a uniform day grid: `value[k]` is the
/// fraction of the population still "alive" (unchanged, or present) at the
/// end of day `k`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurvivalCurve {
    values: Vec<f64>,
}

impl SurvivalCurve {
    /// Build from a per-day series of surviving fractions. Values must be in
    /// `[0, 1]` and non-increasing (a survival function cannot rise).
    pub fn new(values: Vec<f64>) -> SurvivalCurve {
        assert!(
            values.iter().all(|v| (0.0..=1.0).contains(v)),
            "survival values must be fractions"
        );
        assert!(
            values.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "survival curve must be non-increasing"
        );
        SurvivalCurve { values }
    }

    /// Number of days covered.
    pub fn days(&self) -> usize {
        self.values.len()
    }

    /// Fraction surviving at the end of day `k` (clamps past the end).
    pub fn at_day(&self, k: usize) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        let k = k.min(self.values.len() - 1);
        self.values[k]
    }

    /// The raw series.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// First day on which the surviving fraction drops to `threshold` or
    /// below — e.g. `half_life = first_day_below(0.5)` answers the paper's
    /// "how long does it take for 50% of the web to change?" (§3.3).
    pub fn first_day_at_or_below(&self, threshold: f64) -> Option<usize> {
        self.values.iter().position(|&v| v <= threshold)
    }

    /// Convenience: the 50% crossing day (the paper reports ~50 days overall,
    /// ~11 days for com, ~4 months for gov).
    pub fn half_life_days(&self) -> Option<usize> {
        self.first_day_at_or_below(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.ks_distance(|_| 0.5), 0.0);
    }

    #[test]
    fn ks_distance_of_perfect_fit_is_small() {
        // Sample = exact quantiles of U[0,1]; KS distance must be <= 1/(2n)+eps.
        let n = 100;
        let sample: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::new(sample);
        let d = e.ks_distance(|x| x.clamp(0.0, 1.0));
        assert!(d <= 0.5 / n as f64 + 1e-9, "d={d}");
    }

    #[test]
    fn ks_distance_detects_mismatch() {
        let sample: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let e = Ecdf::new(sample);
        // Reference: point mass far away → distance near 1.
        let d = e.ks_distance(|x| if x < 10.0 { 0.0 } else { 1.0 });
        assert!(d > 0.99);
    }

    #[test]
    fn survival_half_life() {
        let s = SurvivalCurve::new(vec![1.0, 0.9, 0.7, 0.5, 0.2]);
        assert_eq!(s.half_life_days(), Some(3));
        assert_eq!(s.first_day_at_or_below(0.95), Some(1));
        assert_eq!(s.first_day_at_or_below(0.1), None);
        assert_eq!(s.at_day(2), 0.7);
        assert_eq!(s.at_day(99), 0.2);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn survival_rejects_rising_curve() {
        let _ = SurvivalCurve::new(vec![0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn survival_rejects_out_of_range() {
        let _ = SurvivalCurve::new(vec![1.5]);
    }
}
