//! Streaming summary statistics (Welford) and batch quantiles.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance plus min/max.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Record many samples.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    /// Build from an iterator.
    pub fn of<I: IntoIterator<Item = f64>>(xs: I) -> Summary {
        let mut s = Summary::default();
        s.record_all(xs);
        s
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw accumulator state `(n, mean, m2, min, max)` — the binary
    /// snapshot codec's view of the summary.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild from [`Summary::raw_parts`] output.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Summary {
        Summary { n, mean, m2, min, max }
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Quantile of a sample by linear interpolation (type-7, the numpy default).
/// `q` in `[0, 1]`. Returns NaN for empty input.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median convenience wrapper over [`quantile`].
pub fn median(sorted: &[f64]) -> f64 {
    quantile(sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn known_mean_variance() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: sum((x-5)^2)=32, /7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut a = Summary::of(xs[..40].iter().copied());
        let b = Summary::of(xs[40..].iter().copied());
        a.merge(&b);
        let all = Summary::of(xs.iter().copied());
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::of([1.0, 2.0]);
        a.merge(&Summary::default());
        assert_eq!(a.count(), 2);
        let mut e = Summary::default();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(quantile(&[7.0], 0.9), 7.0);
    }
}
