//! Goodness-of-fit tests against the exponential distribution.
//!
//! §3.4 verifies the Poisson model by plotting change-interval distributions
//! of pages with a common mean interval against `e^{−λt}` on a log scale
//! (Figure 6) and eyeballing the fit. We make the verification quantitative:
//! a chi-square test on binned intervals and a Kolmogorov–Smirnov test on
//! the raw intervals, both against the exponential with the sample's rate.

use crate::ecdf::Ecdf;
use crate::histogram::Histogram;
use crate::special::chi_square_sf;
use serde::{Deserialize, Serialize};

/// Outcome of a goodness-of-fit test.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GofResult {
    /// The test statistic (chi-square value or KS distance).
    pub statistic: f64,
    /// The p-value: probability of a statistic at least this extreme under
    /// the null hypothesis that the data is exponential.
    pub p_value: f64,
    /// Sample size the test was computed on.
    pub n: usize,
}

impl GofResult {
    /// Conventional rejection check.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square test of exponentiality for a sample of intervals.
///
/// The rate is estimated as `1/mean` (MLE for the exponential); intervals
/// are binned into `bins` equal-probability bins under the fitted
/// exponential, so every bin has expected count `n/bins`. One degree of
/// freedom is consumed by the rate estimate: dof = bins − 2.
pub fn chi_square_exponential_fit(intervals: &[f64], bins: usize) -> GofResult {
    assert!(bins >= 3, "need at least 3 bins for a meaningful test");
    assert!(
        intervals.iter().all(|&x| x >= 0.0 && x.is_finite()),
        "intervals must be finite and non-negative"
    );
    let n = intervals.len();
    if n < bins * 5 {
        // Too small for the asymptotic to mean anything: be conservative.
        return GofResult { statistic: 0.0, p_value: 1.0, n };
    }
    let mean: f64 = intervals.iter().sum::<f64>() / n as f64;
    assert!(mean > 0.0, "intervals cannot all be zero");
    let lambda = 1.0 / mean;

    // Equal-probability bin edges under Exp(lambda): F^{-1}(k/bins).
    let mut counts = vec![0u64; bins];
    for &x in intervals {
        let u = 1.0 - (-lambda * x).exp(); // CDF value in [0,1)
        let k = ((u * bins as f64) as usize).min(bins - 1);
        counts[k] += 1;
    }
    let expected = n as f64 / bins as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = (bins - 2) as f64;
    GofResult { statistic, p_value: chi_square_sf(statistic, dof), n }
}

/// Kolmogorov–Smirnov test of exponentiality.
///
/// Computes `D = sup |F_n(x) − (1 − e^{−λx})|` with `λ = 1/mean`, and the
/// asymptotic Kolmogorov p-value with the Lilliefors-style small-sample
/// correction `D·(√n + 0.12 + 0.11/√n)`. Because λ is estimated from the
/// same data the p-value is approximate (slightly anti-conservative);
/// adequate for the paper's "does a Poisson process predict the data"
/// question.
pub fn ks_test_exponential(intervals: &[f64]) -> GofResult {
    assert!(
        intervals.iter().all(|&x| x >= 0.0 && x.is_finite()),
        "intervals must be finite and non-negative"
    );
    let n = intervals.len();
    if n == 0 {
        return GofResult { statistic: 0.0, p_value: 1.0, n };
    }
    let mean: f64 = intervals.iter().sum::<f64>() / n as f64;
    assert!(mean > 0.0, "intervals cannot all be zero");
    let lambda = 1.0 / mean;
    let ecdf = Ecdf::new(intervals.to_vec());
    let d = ecdf.ks_distance(|x| 1.0 - (-lambda * x).exp());
    let sqrt_n = (n as f64).sqrt();
    let t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
    GofResult { statistic: d, p_value: kolmogorov_sf(t), n }
}

/// Chi-square test that integer day-intervals follow the **geometric**
/// distribution — the exact law of *detected* change intervals when a
/// Poisson page is observed once per day (Figure 1(a)'s channel): each
/// daily visit independently detects a change with `p = 1 − e^{−λ}`, so
/// the gap between detections is `P(k) = (1−p)^{k−1} p`.
///
/// Testing Figure 6 data against the continuous exponential would reject
/// on large samples purely because of the 1-day granularity; this is the
/// discretization-aware version.
pub fn chi_square_geometric_fit(intervals_days: &[f64]) -> GofResult {
    let n = intervals_days.len();
    assert!(
        intervals_days.iter().all(|&x| x >= 1.0 && x.is_finite()),
        "detected intervals are whole days >= 1"
    );
    if n < 30 {
        return GofResult { statistic: 0.0, p_value: 1.0, n };
    }
    let mean: f64 = intervals_days.iter().sum::<f64>() / n as f64;
    let p = (1.0 / mean).clamp(1e-9, 1.0 - 1e-9); // geometric MLE
    // Bins: k = 1..K individually, then a lumped tail, chosen so every
    // bin's expected count is >= 5.
    let mut k_max = 1usize;
    while n as f64 * (1.0 - p).powi(k_max as i32) * p >= 5.0 && k_max < 200 {
        k_max += 1;
    }
    let bins = k_max + 1; // 1..=k_max plus tail
    if bins < 3 {
        return GofResult { statistic: 0.0, p_value: 1.0, n };
    }
    let mut counts = vec![0u64; bins];
    for &x in intervals_days {
        let k = x.round() as usize;
        let idx = if k >= 1 && k <= k_max { k - 1 } else { bins - 1 };
        counts[idx] += 1;
    }
    let mut statistic = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let prob = if i < k_max {
            (1.0 - p).powi(i as i32) * p
        } else {
            (1.0 - p).powi(k_max as i32) // tail: k > k_max
        };
        let expected = n as f64 * prob;
        if expected > 0.0 {
            let d = c as f64 - expected;
            statistic += d * d / expected;
        }
    }
    let dof = (bins - 2) as f64;
    GofResult { statistic, p_value: chi_square_sf(statistic, dof), n }
}

/// Survival function of the Kolmogorov distribution:
/// `Q(t) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²t²}`.
fn kolmogorov_sf(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * t * t).exp();
        if term < 1e-16 {
            break;
        }
        sum += if k % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Build Figure 6's plot data: the observed fraction of intervals in each
/// day-bin alongside the Poisson model's prediction for the same bin.
///
/// Returns `(bin_center_days, observed_fraction, predicted_fraction)` rows.
/// The prediction integrates the exponential density over each bin:
/// `e^{−λ·lo} − e^{−λ·hi}`.
pub fn figure6_series(
    intervals: &[f64],
    max_days: f64,
    bins: usize,
) -> Vec<(f64, f64, f64)> {
    assert!(max_days > 0.0 && bins > 0);
    let mut hist = Histogram::new(0.0, max_days, bins);
    for &x in intervals {
        hist.record(x);
    }
    let n = intervals.len();
    if n == 0 {
        return Vec::new();
    }
    let mean: f64 = intervals.iter().sum::<f64>() / n as f64;
    let lambda = if mean > 0.0 { 1.0 / mean } else { 0.0 };
    let w = hist.bin_width();
    (0..bins)
        .map(|i| {
            let lo = i as f64 * w;
            let hi = lo + w;
            let predicted = (-lambda * lo).exp() - (-lambda * hi).exp();
            (hist.bin_center(i), hist.fraction(i), predicted)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_exponential;
    use crate::rng::SimRng;

    fn exponential_sample(seed: u64, lambda: f64, n: usize) -> Vec<f64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| sample_exponential(&mut rng, lambda)).collect()
    }

    #[test]
    fn chi_square_accepts_exponential() {
        let xs = exponential_sample(1, 0.1, 5000);
        let r = chi_square_exponential_fit(&xs, 10);
        assert!(!r.rejects_at(0.01), "p={}", r.p_value);
    }

    #[test]
    fn chi_square_rejects_uniform() {
        // Uniform[0, 20] has the same mean as Exp(0.1) but is far from it.
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..5000).map(|_| rng.uniform_range(0.0, 20.0)).collect();
        let r = chi_square_exponential_fit(&xs, 10);
        assert!(r.rejects_at(0.001), "p={}", r.p_value);
    }

    #[test]
    fn ks_accepts_exponential() {
        let xs = exponential_sample(3, 0.5, 2000);
        let r = ks_test_exponential(&xs);
        assert!(!r.rejects_at(0.01), "D={}, p={}", r.statistic, r.p_value);
    }

    #[test]
    fn ks_rejects_constant_intervals() {
        // Perfectly periodic changes are maximally non-Poisson.
        let xs = vec![10.0; 500];
        let r = ks_test_exponential(&xs);
        assert!(r.rejects_at(0.001), "p={}", r.p_value);
    }

    #[test]
    fn small_samples_are_conservative() {
        let r = chi_square_exponential_fit(&[1.0, 2.0, 3.0], 3);
        assert_eq!(r.p_value, 1.0);
        let r = ks_test_exponential(&[]);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn figure6_prediction_matches_observation_for_exponential_data() {
        let xs = exponential_sample(4, 0.1, 50_000); // 10-day mean interval
        let rows = figure6_series(&xs, 80.0, 16);
        assert_eq!(rows.len(), 16);
        // Observed and predicted fractions should track closely bin by bin.
        for (center, obs, pred) in rows {
            assert!(
                (obs - pred).abs() < 0.01,
                "bin at {center}: obs={obs}, pred={pred}"
            );
        }
    }

    #[test]
    fn figure6_fractions_decay_exponentially() {
        // 500k samples: the 70–80-day bin holds only ~6e-4 of the mass,
        // and the adjacent-bin ratio needs a few hundred samples there to
        // sit within the 0.15 tolerance.
        let xs = exponential_sample(5, 0.1, 500_000);
        let rows = figure6_series(&xs, 80.0, 8);
        // log-fractions should be roughly linear: ratio between adjacent
        // bins approximately constant.
        let ratios: Vec<f64> = rows.windows(2).map(|w| w[1].1 / w[0].1).collect();
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        for r in &ratios {
            assert!((r - mean_ratio).abs() < 0.15, "ratio {r} vs mean {mean_ratio}");
        }
    }

    #[test]
    fn geometric_fit_accepts_daily_sampled_poisson() {
        // Simulate daily detection of a Poisson page and check the
        // detected gaps pass the geometric test.
        let mut rng = SimRng::seed_from_u64(21);
        let lambda = 0.12f64;
        let p = 1.0 - (-lambda).exp();
        let mut gaps = Vec::new();
        let mut gap = 0u32;
        for _ in 0..40_000 {
            gap += 1;
            if rng.bernoulli(p) {
                gaps.push(gap as f64);
                gap = 0;
            }
        }
        let r = chi_square_geometric_fit(&gaps);
        assert!(!r.rejects_at(0.01), "p={}", r.p_value);
    }

    #[test]
    fn geometric_fit_rejects_constant_gaps() {
        let gaps = vec![10.0; 2000];
        let r = chi_square_geometric_fit(&gaps);
        assert!(r.rejects_at(0.001), "p={}", r.p_value);
    }

    #[test]
    fn geometric_fit_small_sample_conservative() {
        let r = chi_square_geometric_fit(&[1.0, 2.0, 3.0]);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn kolmogorov_sf_known_point() {
        // Q(0.83) ≈ 0.5 (median of Kolmogorov distribution ~0.828).
        assert!((kolmogorov_sf(0.8276) - 0.5).abs() < 0.01);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }
}
