//! The versioned snapshot codec. See the crate docs for the on-disk
//! layout.

use std::fmt;
use webevo_core::CrawlerState;

/// Magic token opening every snapshot header.
pub const SNAPSHOT_MAGIC: &str = "WEBEVO-SNAPSHOT";
/// The snapshot format version this build reads and writes.
///
/// Version history:
/// * 1 — the original incremental/threaded layout (`workers` as a state
///   field, `config` as a bare `IncrementalConfig`).
/// * 2 — the unified-engine layout: `config` is the `EngineConfig` enum,
///   `EngineKind::Threaded` carries its worker count, and the periodic
///   engine's cycle/shadow state rides in a `periodic` payload.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a snapshot or WAL could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the expected magic/header shape.
    NotASnapshot,
    /// The format version is one this build does not understand.
    UnsupportedVersion(u32),
    /// The payload checksum does not match the header (torn write or
    /// corruption).
    ChecksumMismatch,
    /// The payload failed to parse as a `CrawlerState`.
    Malformed(String),
    /// Reading the checkpoint files failed before any decoding happened —
    /// a permissions or I/O problem, *not* corruption; the lineage on disk
    /// may be perfectly fine.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotASnapshot => write!(f, "not a webevo snapshot"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            StoreError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            StoreError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            StoreError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a over a byte slice: the integrity checksum for snapshot payloads
/// and WAL lines. Not cryptographic — it detects torn writes and rot, not
/// adversaries. Delegates to the workspace's one FNV implementation.
pub fn fnv64(bytes: &[u8]) -> u64 {
    webevo_types::Checksum::of_bytes(bytes).0
}

/// Encode a full engine state as a snapshot document (header line +
/// payload line).
pub fn encode_snapshot(state: &CrawlerState) -> String {
    let payload = serde_json::to_string(state).expect("engine state always serializes");
    let checksum = fnv64(payload.as_bytes());
    format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} {checksum:016x}\n{payload}\n")
}

/// Decode a snapshot document, verifying version and checksum.
pub fn decode_snapshot(text: &str) -> Result<CrawlerState, StoreError> {
    let (header, payload) = text.split_once('\n').ok_or(StoreError::NotASnapshot)?;
    let mut parts = header.split(' ');
    if parts.next() != Some(SNAPSHOT_MAGIC) {
        return Err(StoreError::NotASnapshot);
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(StoreError::NotASnapshot)?;
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let checksum = parts
        .next()
        .and_then(|c| u64::from_str_radix(c, 16).ok())
        .ok_or(StoreError::NotASnapshot)?;
    let payload = payload.strip_suffix('\n').unwrap_or(payload);
    if fnv64(payload.as_bytes()) != checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    serde_json::from_str(payload).map_err(|e| StoreError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_core::{CrawlEngine, IncrementalConfig, IncrementalCrawler, NoopHook};
    use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};

    fn sample_state() -> CrawlerState {
        let u = WebUniverse::generate(UniverseConfig::test_scale(11));
        let mut crawler = IncrementalCrawler::new(IncrementalConfig {
            capacity: 30,
            crawl_rate_per_day: 6.0,
            ..IncrementalConfig::monthly(30)
        });
        let mut fetcher = SimFetcher::new(&u);
        crawler.drive(&u, &mut fetcher, &mut NoopHook, 10.0).expect("drive");
        let mut state = crawler.export_state();
        state.fetcher = webevo_sim::Fetcher::export_state(&fetcher);
        state
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let state = sample_state();
        let doc = encode_snapshot(&state);
        let back = decode_snapshot(&doc).expect("clean snapshot decodes");
        // Re-encoding the decoded state must reproduce the exact bytes:
        // every float survived, every set kept its canonical order.
        assert_eq!(encode_snapshot(&back), doc);
    }

    #[test]
    fn version_and_checksum_are_enforced() {
        let state = sample_state();
        let doc = encode_snapshot(&state);
        let future = doc.replacen(
            &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION}"),
            &format!("{SNAPSHOT_MAGIC} 9"),
            1,
        );
        assert_eq!(
            decode_snapshot(&future).unwrap_err(),
            StoreError::UnsupportedVersion(9)
        );
        // Flip one payload byte: the checksum must catch it.
        let mut corrupt = doc.clone();
        let flip_at = corrupt.rfind("\"seeded\"").expect("payload has fields") + 1;
        corrupt.replace_range(flip_at..flip_at + 1, "x");
        assert_eq!(decode_snapshot(&corrupt).unwrap_err(), StoreError::ChecksumMismatch);
        assert_eq!(
            decode_snapshot("hello\nworld").unwrap_err(),
            StoreError::NotASnapshot
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err: Box<dyn std::error::Error> = Box::new(StoreError::UnsupportedVersion(3));
        assert!(err.to_string().contains("version 3"));
        assert!(StoreError::ChecksumMismatch.to_string().contains("checksum"));
    }
}
