//! The versioned snapshot codec. See the crate docs for the on-disk
//! layout.
//!
//! Version 3 is binary: a one-line text header (magic, version, fnv64 of
//! the payload) followed by the [`CrawlerState`] in the `webevo-types`
//! binary wire format ([`webevo_types::BinEncode`]) — length-prefixed
//! fields, varint integers, floats as raw IEEE-754 bits. Decoding sniffs
//! the header version, so version-2 JSON snapshots written by earlier
//! builds still recover through [`decode_snapshot`].

use std::fmt;
use webevo_core::CrawlerState;
use webevo_types::binio::{BinDecode, BinEncode, BinReader};

/// Magic token opening every snapshot header.
pub const SNAPSHOT_MAGIC: &str = "WEBEVO-SNAPSHOT";
/// The snapshot format version this build writes.
///
/// Version history:
/// * 1 — the original incremental/threaded JSON layout (`workers` as a
///   state field, `config` as a bare `IncrementalConfig`).
/// * 2 — the unified-engine JSON layout: `config` is the `EngineConfig`
///   enum, `EngineKind::Threaded` carries its worker count, and the
///   periodic engine's cycle/shadow state rides in a `periodic` payload.
///   Still decoded by this build.
/// * 3 — the same logical layout in the binary wire format (current).
pub const SNAPSHOT_VERSION: u32 = 3;
/// The newest JSON snapshot version, still decoded for migration.
pub const SNAPSHOT_VERSION_JSON: u32 = 2;

/// Why a snapshot or WAL could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the expected magic/header shape.
    NotASnapshot,
    /// The format version is one this build does not understand.
    UnsupportedVersion(u32),
    /// The payload checksum does not match the header (torn write or
    /// corruption).
    ChecksumMismatch,
    /// The payload failed to parse as a `CrawlerState`.
    Malformed(String),
    /// Reading the checkpoint files failed before any decoding happened —
    /// a permissions or I/O problem, *not* corruption; the lineage on disk
    /// may be perfectly fine.
    Io(String),
    /// The directory holds a write-ahead log with committed records but no
    /// snapshot: durable work exists that cannot be replayed without its
    /// base. Surfaced as an error so no caller ever silently truncates the
    /// log and discards that work. (Current builds always write a base
    /// snapshot when a lineage starts, so this marks either a directory
    /// written by an older build that crashed between its first WAL flush
    /// and its first snapshot, or a hand-deleted snapshot file.)
    WalWithoutSnapshot {
        /// Committed records stranded in the log.
        committed_records: usize,
    },
    /// A shard checkpoint was written under a different partition plan
    /// than the fleet manifest now records — e.g. a pre-rebalance shard
    /// directory restored next to a post-rebalance manifest, or a
    /// checkpoint from before the routing era (no recorded scope at all).
    /// Resuming it would route sites to the wrong shards.
    ShardPlanMismatch {
        /// The shard whose checkpoint disagrees with the manifest.
        shard: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotASnapshot => write!(f, "not a webevo snapshot"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads \
                     {SNAPSHOT_VERSION_JSON} and {SNAPSHOT_VERSION})"
                )
            }
            StoreError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            StoreError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            StoreError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            StoreError::WalWithoutSnapshot { committed_records } => write!(
                f,
                "write-ahead log holds {committed_records} committed record(s) but no \
                 snapshot exists to replay them onto; refusing to discard durable work"
            ),
            StoreError::ShardPlanMismatch { shard } => write!(
                f,
                "shard {shard}'s checkpoint was written under a different shard plan \
                 than the fleet manifest records; resuming it here would route sites \
                 to the wrong shards"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a over a byte slice: the integrity checksum for snapshot payloads
/// and WAL frames. Not cryptographic — it detects torn writes and rot, not
/// adversaries. Delegates to the workspace's one FNV implementation.
pub fn fnv64(bytes: &[u8]) -> u64 {
    webevo_types::Checksum::of_bytes(bytes).0
}

/// Encode a full engine state as a version-3 binary snapshot document
/// (text header line + binary payload).
pub fn encode_snapshot(state: &CrawlerState) -> Vec<u8> {
    // The header is fixed-width (magic + one version digit + 16 hex
    // digits), so encode the payload straight into the document after a
    // placeholder header and patch the checksum in afterwards — no second
    // buffer, no final copy of a multi-megabyte payload.
    let placeholder = format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} {:016x}\n", 0);
    let header_len = placeholder.len();
    let mut doc = Vec::with_capacity(256 * 1024);
    doc.extend_from_slice(placeholder.as_bytes());
    state.bin_encode(&mut doc);
    let checksum = fnv64(&doc[header_len..]);
    let header = format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} {checksum:016x}\n");
    debug_assert_eq!(header.len(), header_len);
    doc[..header_len].copy_from_slice(header.as_bytes());
    doc
}

/// Encode a full engine state as a version-2 JSON snapshot document — the
/// legacy text format, kept as the measured baseline for the codec benches
/// and to manufacture migration fixtures in tests. [`decode_snapshot`]
/// reads both.
pub fn encode_snapshot_json(state: &CrawlerState) -> String {
    let payload = serde_json::to_string(state).expect("engine state always serializes");
    let checksum = fnv64(payload.as_bytes());
    format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION_JSON} {checksum:016x}\n{payload}\n")
}

/// Decode a snapshot document of any supported version, verifying the
/// checksum. Version sniffing happens on the header line: version 3 reads
/// the binary payload, version 2 the legacy JSON payload.
pub fn decode_snapshot(doc: &[u8]) -> Result<CrawlerState, StoreError> {
    let newline = doc
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(StoreError::NotASnapshot)?;
    let header =
        std::str::from_utf8(&doc[..newline]).map_err(|_| StoreError::NotASnapshot)?;
    let mut parts = header.split(' ');
    if parts.next() != Some(SNAPSHOT_MAGIC) {
        return Err(StoreError::NotASnapshot);
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(StoreError::NotASnapshot)?;
    let checksum = parts
        .next()
        .and_then(|c| u64::from_str_radix(c, 16).ok())
        .ok_or(StoreError::NotASnapshot)?;
    let payload = &doc[newline + 1..];
    match version {
        SNAPSHOT_VERSION => {
            if fnv64(payload) != checksum {
                return Err(StoreError::ChecksumMismatch);
            }
            let mut reader = BinReader::new(payload);
            let state = CrawlerState::bin_decode(&mut reader)
                .map_err(|e| StoreError::Malformed(e.to_string()))?;
            if !reader.is_exhausted() {
                return Err(StoreError::Malformed(format!(
                    "{} trailing bytes after the engine state",
                    reader.remaining()
                )));
            }
            Ok(state)
        }
        SNAPSHOT_VERSION_JSON => {
            let text =
                std::str::from_utf8(payload).map_err(|_| StoreError::NotASnapshot)?;
            let text = text.strip_suffix('\n').unwrap_or(text);
            if fnv64(text.as_bytes()) != checksum {
                return Err(StoreError::ChecksumMismatch);
            }
            serde_json::from_str(text).map_err(|e| StoreError::Malformed(e.to_string()))
        }
        other => Err(StoreError::UnsupportedVersion(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_core::{CrawlEngine, IncrementalConfig, IncrementalCrawler, NoopHook};
    use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};

    fn sample_state() -> CrawlerState {
        let u = WebUniverse::generate(UniverseConfig::test_scale(11));
        let mut crawler = IncrementalCrawler::new(IncrementalConfig {
            capacity: 30,
            crawl_rate_per_day: 6.0,
            ..IncrementalConfig::monthly(30)
        });
        let mut fetcher = SimFetcher::new(&u);
        crawler.drive(&u, &mut fetcher, &mut NoopHook, 10.0).expect("drive");
        let mut state = crawler.export_state();
        state.fetcher = webevo_sim::Fetcher::export_state(&fetcher);
        state
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let state = sample_state();
        let doc = encode_snapshot(&state);
        let back = decode_snapshot(&doc).expect("clean snapshot decodes");
        // Re-encoding the decoded state must reproduce the exact bytes:
        // every float survived, every container kept its canonical order.
        assert_eq!(encode_snapshot(&back), doc);
    }

    #[test]
    fn json_snapshot_still_decodes_to_the_same_state() {
        let state = sample_state();
        let json_doc = encode_snapshot_json(&state);
        let from_json = decode_snapshot(json_doc.as_bytes()).expect("v2 decodes");
        // The two formats must agree on the logical state: re-encode both
        // through the binary codec and compare bytes.
        assert_eq!(encode_snapshot(&from_json), encode_snapshot(&state));
        // And the JSON writer stays canonical for fixture manufacturing.
        assert_eq!(encode_snapshot_json(&from_json), json_doc);
    }

    #[test]
    fn binary_beats_json_on_size() {
        let state = sample_state();
        let binary = encode_snapshot(&state);
        let json = encode_snapshot_json(&state);
        assert!(
            binary.len() * 2 < json.len(),
            "binary {} bytes vs JSON {} bytes",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn version_and_checksum_are_enforced() {
        let state = sample_state();
        let doc = encode_snapshot(&state);
        let header_len = doc.iter().position(|&b| b == b'\n').unwrap() + 1;
        let header = String::from_utf8(doc[..header_len].to_vec()).unwrap();
        let future = [
            header
                .replacen(
                    &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION}"),
                    &format!("{SNAPSHOT_MAGIC} 9"),
                    1,
                )
                .into_bytes(),
            doc[header_len..].to_vec(),
        ]
        .concat();
        assert_eq!(
            decode_snapshot(&future).unwrap_err(),
            StoreError::UnsupportedVersion(9)
        );
        // Flip one payload byte: the checksum must catch it.
        let mut corrupt = doc.clone();
        let flip_at = header_len + (doc.len() - header_len) / 2;
        corrupt[flip_at] ^= 0x01;
        assert_eq!(decode_snapshot(&corrupt).unwrap_err(), StoreError::ChecksumMismatch);
        assert_eq!(
            decode_snapshot(b"hello\nworld").unwrap_err(),
            StoreError::NotASnapshot
        );
        assert_eq!(
            decode_snapshot(b"no newline at all").unwrap_err(),
            StoreError::NotASnapshot
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err: Box<dyn std::error::Error> = Box::new(StoreError::UnsupportedVersion(9));
        assert!(err.to_string().contains("version 9"));
        assert!(StoreError::ChecksumMismatch.to_string().contains("checksum"));
    }
}
