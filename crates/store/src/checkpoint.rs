//! The [`Checkpointer`]: a [`CrawlHook`] that turns engine pass
//! boundaries into durable snapshots and WAL flushes, plus [`recover`],
//! the crash-side counterpart.
//!
//! Lifecycle of a checkpoint directory:
//!
//! 1. [`Checkpointer::create`] starts a fresh lineage (any previous
//!    snapshot/WAL in the directory is superseded) and immediately writes
//!    a **base snapshot** of the initial engine state, so the WAL is never
//!    without a snapshot to replay onto — a run killed before its first
//!    cadence snapshot recovers from `day-0 snapshot + whole WAL`.
//! 2. During the run, [`CrawlHook::on_fetch`] buffers records in memory;
//!    [`CrawlHook::on_pass_boundary`] appends the buffer to the WAL under
//!    one commit marker, and writes a snapshot whenever
//!    [`CheckpointConfig::snapshot_every_days`] simulated days have passed
//!    since the last one. Snapshot writes are atomic (temp file + rename)
//!    and reset the WAL.
//! 3. After a crash, [`recover`] returns the newest snapshot and the
//!    committed WAL tail; the caller rebuilds the engine
//!    (`webevo_core::engine::restore` → `replay` → `drive`) and creates
//!    the follow-up checkpointer with [`Checkpointer::continue_from`],
//!    which re-snapshots the recovered state so the old lineage is never
//!    needed twice. `CrawlSession::resume` packages all of this.
//!
//! I/O failures inside the hook panic: the hook signature is infallible by
//! design (the engines cannot meaningfully continue a run whose durability
//! contract just broke), and every panic message names the failing path.
//!
//! # Off-thread snapshot encoding
//!
//! Cadence snapshots taken at pass boundaries do **not** block the crawl
//! thread on encode + fsync. The boundary exports an owned
//! [`CrawlerState`] (the immutable pass-boundary view) and hands it to a
//! background encoder thread, which performs the same atomic
//! temp-file + rename + directory-sync sequence as the synchronous path.
//! The WAL reset that makes the snapshot authoritative is **deferred to
//! the join** — the start of the next boundary (or an exchange barrier,
//! or drop), before anything new is flushed — because the log must keep
//! covering the old lineage until the rename has durably landed. The
//! crash-consistency argument is unchanged: between spawn and join the
//! directory holds either the previous snapshot plus a WAL that replays
//! past it, or the new snapshot plus a WAL whose records recovery skips
//! by sequence number. [`Checkpointer::barrier_snapshot`] stays
//! synchronous: the fleet's exchange protocol needs the snapshot on disk
//! before the barrier releases.

use crate::codec::{decode_snapshot, encode_snapshot, StoreError};
use crate::wal::{read_wal, WalWriter};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use webevo_core::{CrawlHook, CrawlerState, FetchRecord, RoutedBatch, WalEvent};
use webevo_obs::{LogicalClock, ObsSink, Stage};

/// Snapshot file name within a checkpoint directory.
pub const SNAPSHOT_FILE: &str = "snapshot.wsnap";
/// WAL file name within a checkpoint directory.
pub const WAL_FILE: &str = "wal.wlog";

/// Where and how often to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding `snapshot.wsnap` and `wal.wlog`.
    pub dir: PathBuf,
    /// Full-snapshot cadence in simulated days; between snapshots only WAL
    /// appends happen. The first pass boundary always snapshots.
    pub snapshot_every_days: f64,
}

impl CheckpointConfig {
    /// Checkpoint into `dir`, snapshotting every `snapshot_every_days`.
    pub fn new(dir: impl Into<PathBuf>, snapshot_every_days: f64) -> CheckpointConfig {
        assert!(snapshot_every_days > 0.0, "snapshot cadence must be positive");
        CheckpointConfig { dir: dir.into(), snapshot_every_days }
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }
}

/// Durability counters (for benches and observability).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Fetch records buffered so far (lifetime total).
    pub records_logged: u64,
    /// Routed-link batches buffered so far (fleet exchange deliveries).
    pub routed_logged: u64,
    /// WAL flushes performed (= pass boundaries observed).
    pub flushes: u64,
    /// Full snapshots written.
    pub snapshots: u64,
}

/// The engine-facing checkpointing hook. See the module docs.
#[derive(Debug)]
pub struct Checkpointer {
    config: CheckpointConfig,
    buffer: Vec<WalEvent>,
    wal: WalWriter,
    last_snapshot_t: Option<f64>,
    last_seq: u64,
    stats: CheckpointStats,
    /// When set, pass boundaries only flush; cadence snapshots are taken
    /// exclusively through [`Checkpointer::barrier_snapshot`]. The fleet
    /// coordinator runs shards in this mode so that no shard's snapshot
    /// ever absorbs a link exchange its peers still hold only as a
    /// trailing WAL record — the invariant that lets recovery roll any
    /// single shard's torn tail back across the newest exchange.
    barrier_only: bool,
    /// Observability sink. Write-only: spans and counters recorded here
    /// never feed back into what gets snapshotted or when, so a traced
    /// lineage stays byte-identical to an untraced one.
    obs: ObsSink,
    /// WAL fsyncs already reported to `obs` (delta tracking, so the
    /// `wal_fsyncs_total` counter mirrors [`WalWriter::fsyncs`] exactly).
    fsyncs_seen: u64,
    /// Simulated day of the most recent hook callback — the logical-clock
    /// stamp for WAL-flush and snapshot spans.
    clock_t: f64,
    /// In-flight background snapshot encoder, if any. Invariant: while a
    /// snapshot is pending, nothing is flushed to the WAL — the pending
    /// snapshot therefore covers every record the log holds, which is
    /// what makes the deferred [`WalWriter::reset`] at the join safe.
    pending: Option<std::thread::JoinHandle<io::Result<u64>>>,
}

impl Checkpointer {
    /// Start a fresh checkpoint lineage in `config.dir` (created if
    /// missing; an existing snapshot/WAL there is superseded): write a
    /// base snapshot of `initial` — the engine state the run starts from —
    /// and an empty WAL. The base snapshot guarantees every WAL the
    /// lineage ever holds has a snapshot to replay onto, even when the
    /// process dies before the first cadence snapshot.
    pub fn create(config: CheckpointConfig, initial: &CrawlerState) -> io::Result<Checkpointer> {
        fs::create_dir_all(&config.dir)?;
        // Truncate the previous lineage's WAL *before* the base snapshot
        // lands: a crash between the two steps then leaves the old
        // snapshot with an empty log (a consistent, merely older lineage)
        // — never a fresh day-0 snapshot paired with the old run's
        // records, which replay could not tell apart from its own.
        let wal = WalWriter::create(&config.wal_path())?;
        write_snapshot_atomically(&config, initial)?;
        Ok(Checkpointer {
            last_snapshot_t: Some(initial.clock.t),
            last_seq: initial.fetch_seq,
            clock_t: initial.clock.t,
            config,
            buffer: Vec::new(),
            wal,
            stats: CheckpointStats { snapshots: 1, ..CheckpointStats::default() },
            barrier_only: false,
            obs: ObsSink::noop(),
            fsyncs_seen: 0,
            pending: None,
        })
    }

    /// Continue checkpointing after a recovery: immediately snapshot the
    /// recovered (replayed) `state` and reset the WAL, so the directory
    /// again holds exactly one consistent lineage.
    pub fn continue_from(
        config: CheckpointConfig,
        state: &CrawlerState,
    ) -> io::Result<Checkpointer> {
        fs::create_dir_all(&config.dir)?;
        write_snapshot_atomically(&config, state)?;
        let wal = WalWriter::create(&config.wal_path())?;
        Ok(Checkpointer {
            last_snapshot_t: Some(state.clock.t),
            last_seq: state.fetch_seq,
            clock_t: state.clock.t,
            config,
            buffer: Vec::new(),
            wal,
            stats: CheckpointStats { snapshots: 1, ..CheckpointStats::default() },
            barrier_only: false,
            obs: ObsSink::noop(),
            fsyncs_seen: 0,
            pending: None,
        })
    }

    /// Restrict cadence snapshots to explicit
    /// [`Checkpointer::barrier_snapshot`] calls; pass boundaries keep
    /// flushing the WAL but never snapshot on their own. See the field
    /// docs for why the fleet needs this.
    pub fn snapshot_at_barriers_only(&mut self) {
        self.barrier_only = true;
    }

    /// Install an observability sink. Spans (WAL flush, snapshot encode)
    /// and counters (`wal_appends_total`, `wal_bytes_total`,
    /// `wal_fsyncs_total`, `snapshots_total`) flow into it from every
    /// subsequent flush and snapshot; the base snapshot written by
    /// [`Checkpointer::create`] predates the sink and is not traced.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Take the cadence snapshot at an exchange barrier, if one is due:
    /// flush the buffered leg, then — when `snapshot_every_days` have
    /// passed since the last snapshot — write `state` and reset the WAL.
    /// The fleet calls this with the shard's *pre-injection* state, so the
    /// exchange delivered right after always lands in the fresh WAL, never
    /// inside the snapshot.
    pub fn barrier_snapshot(&mut self, t: f64, state: &CrawlerState) -> io::Result<()> {
        self.clock_t = t;
        self.join_pending_snapshot()?;
        self.flush()?;
        let snapshot_due = match self.last_snapshot_t {
            None => true,
            Some(last) => t - last >= self.config.snapshot_every_days,
        };
        if snapshot_due {
            self.traced_snapshot(state)?;
            self.wal.reset()?;
            self.sync_fsync_counter();
            self.last_snapshot_t = Some(t);
            self.stats.snapshots += 1;
        }
        Ok(())
    }

    /// Durability counters so far.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Buffer a routed-batch delivery (the fleet exchange's WAL record).
    /// The batch consumed a sequence number from the engine's unified
    /// counter, so it advances `last_seq` exactly like a fetch.
    pub fn append_routed(&mut self, batch: &RoutedBatch) {
        self.last_seq = batch.seq;
        self.buffer.push(WalEvent::Routed(batch.clone()));
        self.stats.routed_logged += 1;
    }

    /// Flush the buffered events to the WAL under one commit marker
    /// without taking a snapshot — the fleet coordinator calls this right
    /// after delivering an exchange, so a shard killed after the barrier
    /// replays the injection it already absorbed.
    pub fn flush(&mut self) -> io::Result<()> {
        let _span = self.obs.span(Stage::WalFlush, LogicalClock::new(self.clock_t, self.last_seq));
        self.obs.observe("wal_flush_records", self.buffer.len() as f64);
        let bytes = self.wal.append_committed(&self.buffer, self.last_seq)?;
        self.buffer.clear();
        self.stats.flushes += 1;
        self.obs.add("wal_appends_total", 1);
        self.obs.add("wal_bytes_total", bytes);
        self.sync_fsync_counter();
        Ok(())
    }

    /// Take `state`'s snapshot under a [`Stage::SnapshotEncode`] span and
    /// record its size. Used by the synchronous barrier path.
    fn traced_snapshot(&mut self, state: &CrawlerState) -> io::Result<u64> {
        let _span =
            self.obs.span(Stage::SnapshotEncode, LogicalClock::new(self.clock_t, self.last_seq));
        let bytes = write_snapshot_atomically(&self.config, state)?;
        self.obs.add("snapshots_total", 1);
        self.obs.observe("snapshot_bytes", bytes as f64);
        Ok(bytes)
    }

    /// Hand `state` to a background encoder thread. The caller must have
    /// flushed already and must not flush again until the join; see the
    /// `pending` field invariant.
    fn spawn_snapshot(&mut self, state: CrawlerState) {
        debug_assert!(self.pending.is_none(), "at most one snapshot in flight");
        let config = self.config.clone();
        let obs = self.obs.clone();
        let clock = LogicalClock::new(self.clock_t, self.last_seq);
        self.pending = Some(std::thread::spawn(move || {
            let _span = obs.span(Stage::SnapshotEncode, clock);
            write_snapshot_atomically(&config, &state)
        }));
    }

    /// Wait for the in-flight snapshot (if any) to land, then perform the
    /// bookkeeping the synchronous path did right after its rename: reset
    /// the WAL — every record it holds is at or below the snapshot's
    /// `fetch_seq`, so recovery would skip them anyway — and count the
    /// snapshot. A panic on the encoder thread is propagated.
    fn join_pending_snapshot(&mut self) -> io::Result<()> {
        let Some(handle) = self.pending.take() else { return Ok(()) };
        let bytes = match handle.join() {
            Ok(result) => result?,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        self.wal.reset()?;
        self.sync_fsync_counter();
        self.stats.snapshots += 1;
        self.obs.add("snapshots_total", 1);
        self.obs.observe("snapshot_bytes", bytes as f64);
        Ok(())
    }

    /// Report WAL fsyncs accrued since the last report, so the registry's
    /// `wal_fsyncs_total` counter tracks [`WalWriter::fsyncs`] exactly —
    /// including the header sync from [`WalWriter::create`] and the sync
    /// inside each [`WalWriter::reset`].
    fn sync_fsync_counter(&mut self) {
        let fsyncs = self.wal.fsyncs();
        if fsyncs > self.fsyncs_seen {
            self.obs.add("wal_fsyncs_total", fsyncs - self.fsyncs_seen);
            self.fsyncs_seen = fsyncs;
        }
    }
}

impl CrawlHook for Checkpointer {
    fn on_fetch(&mut self, record: &FetchRecord) {
        self.last_seq = record.seq;
        self.buffer.push(WalEvent::Fetch(record.clone()));
        self.stats.records_logged += 1;
    }

    fn on_pass_boundary(&mut self, t: f64, export: &mut dyn FnMut() -> CrawlerState) {
        self.clock_t = t;
        // Join the previous boundary's encoder before anything else: its
        // WAL reset must precede this boundary's flush, or the reset
        // would discard records the snapshot does not cover.
        self.join_pending_snapshot().unwrap_or_else(|e| {
            panic!("background snapshot write to {:?} failed: {e}", self.config.snapshot_path())
        });
        // Flush next: should the pending snapshot below tear, the WAL
        // still carries everything up to this boundary on top of the
        // previous snapshot.
        self.flush()
            .unwrap_or_else(|e| panic!("WAL append to {:?} failed: {e}", self.wal.path()));
        let snapshot_due = !self.barrier_only
            && match self.last_snapshot_t {
                None => true, // defensive: create/continue_from always seed one
                Some(last) => t - last >= self.config.snapshot_every_days,
            };
        if snapshot_due {
            // Export the immutable boundary view and encode it off-thread;
            // the crawl thread resumes immediately. `last_snapshot_t`
            // advances now (cadence is measured from the state's time, not
            // the encoder's completion), `stats.snapshots` at the join.
            let state = export();
            self.last_snapshot_t = Some(t);
            self.spawn_snapshot(state);
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Best effort while unwinding: wait for the encoder so its
            // file I/O cannot race whatever comes next, but never
            // double-panic.
            if let Some(handle) = self.pending.take() {
                let _ = handle.join();
            }
            return;
        }
        self.join_pending_snapshot().unwrap_or_else(|e| {
            panic!("background snapshot write to {:?} failed: {e}", self.config.snapshot_path())
        });
    }
}

fn write_snapshot_atomically(config: &CheckpointConfig, state: &CrawlerState) -> io::Result<u64> {
    use std::io::Write;
    let tmp = config.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let mut file = fs::File::create(&tmp)?;
    let doc = encode_snapshot(state);
    file.write_all(&doc)?;
    // Sync before the rename so the directory entry can never point at a
    // half-written file after a machine crash; sync the directory after so
    // the rename itself is durable.
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, config.snapshot_path())?;
    fs::File::open(&config.dir)?.sync_all()?;
    Ok(doc.len() as u64)
}

/// What [`recover`] found in a checkpoint directory.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// The decoded snapshot.
    pub state: CrawlerState,
    /// The committed WAL tail — fetches and routed batches alike (it may
    /// include events the snapshot already covers; the engines' `replay`
    /// skips them by sequence number).
    pub wal: Vec<WalEvent>,
}

/// Load the newest consistent crawl state from a checkpoint directory:
/// `Ok(None)` when the directory holds no checkpoint at all (nothing to
/// resume), the decoded snapshot plus committed WAL tail otherwise.
/// Corrupt snapshots surface as [`StoreError`], and so does a WAL with
/// committed records but no snapshot to replay them onto
/// ([`StoreError::WalWithoutSnapshot`]) — durable work is never silently
/// discarded. A corrupt or torn WAL *tail* silently shrinks to its last
/// committed boundary, which is exactly the guarantee the engines need.
///
/// A stale `snapshot.wsnap.tmp` — the residue of a crash between the
/// snapshot temp-file write and its atomic rename — is removed here: the
/// rename never happened, so the file is not part of any lineage, and
/// leaving it would shadow nothing but clutter the directory forever.
pub fn recover(dir: &Path) -> Result<Option<Recovered>, StoreError> {
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    match fs::remove_file(&tmp) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::Io(format!("removing stale {tmp:?}: {e}"))),
    }
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    let doc = match fs::read(&snapshot_path) {
        Ok(doc) => doc,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            // No snapshot: fine when the log is empty too (a directory
            // that never checkpointed), an error when committed work
            // would be orphaned.
            let wal = read_wal(&dir.join(WAL_FILE))
                .map_err(|e| StoreError::Io(format!("reading WAL: {e}")))?;
            return if wal.is_empty() {
                Ok(None)
            } else {
                Err(StoreError::WalWithoutSnapshot { committed_records: wal.len() })
            };
        }
        Err(e) => return Err(StoreError::Io(format!("reading {snapshot_path:?}: {e}"))),
    };
    let state = decode_snapshot(&doc)?;
    let wal = read_wal(&dir.join(WAL_FILE))
        .map_err(|e| StoreError::Io(format!("reading WAL: {e}")))?;
    Ok(Some(Recovered { state, wal }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_core::{
        engine, CrawlEngine, IncrementalConfig, IncrementalCrawler, NoopHook,
    };
    use webevo_sim::{Fetcher, SimFetcher, UniverseConfig, WebUniverse};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "webevo-ckpt-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(capacity: usize) -> IncrementalConfig {
        IncrementalConfig {
            capacity,
            crawl_rate_per_day: capacity as f64 / 5.0,
            ..IncrementalConfig::monthly(capacity)
        }
    }

    #[test]
    fn checkpoint_and_recover_incremental() {
        let dir = temp_dir("inc");
        let u = WebUniverse::generate(UniverseConfig::test_scale(21));
        // Killed run: crawl to day 20 under the checkpointer, then drop
        // everything in memory.
        let mut killed = IncrementalCrawler::new(config(40));
        let mut ckpt =
            Checkpointer::create(CheckpointConfig::new(&dir, 3.0), &killed.export_state())
                .expect("create checkpointer");
        let mut killed_fetcher = SimFetcher::new(&u);
        killed.drive(&u, &mut killed_fetcher, &mut ckpt, 20.0).expect("drive");
        assert!(ckpt.stats().snapshots >= 2, "stats={:?}", ckpt.stats());
        assert!(ckpt.stats().flushes > ckpt.stats().snapshots);
        drop(killed);
        drop(ckpt);

        // Recover from disk and continue to day 30 — through the engine
        // trait, exactly as `CrawlSession::resume` does.
        let recovered = recover(&dir).expect("clean dir decodes").expect("snapshot exists");
        let (mut restored, fetcher_state) = engine::restore(recovered.state).expect("restores");
        let mut fetcher2 = SimFetcher::new(&u);
        fetcher2.restore_state(fetcher_state.expect("sim fetcher state persisted"));
        restored.replay(&u, &mut fetcher2, &recovered.wal).expect("replay");
        restored.drive(&u, &mut fetcher2, &mut NoopHook, 30.0).expect("drive");

        // Reference: one uninterrupted run to day 30. Every metric channel
        // must agree bit-for-bit.
        let mut reference = IncrementalCrawler::new(config(40));
        let mut ref_fetcher = SimFetcher::new(&u);
        reference.drive(&u, &mut ref_fetcher, &mut NoopHook, 30.0).expect("drive");
        assert_eq!(reference.metrics().fetches, restored.metrics().fetches);
        let a: Vec<(f64, f64)> = reference.metrics().freshness.rows().collect();
        let b: Vec<(f64, f64)> = restored.metrics().freshness.rows().collect();
        assert_eq!(a, b);
        assert_eq!(
            Fetcher::export_state(&ref_fetcher),
            Fetcher::export_state(&fetcher2),
            "fetcher state must also converge"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_on_empty_dir_is_none() {
        let dir = temp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(recover(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_seeds_a_base_snapshot() {
        // The lineage must be recoverable from the instant it opens: a
        // kill before any pass boundary finds the day-0 snapshot and an
        // empty WAL, not an empty directory.
        let dir = temp_dir("base");
        let crawler = IncrementalCrawler::new(config(25));
        let ckpt = Checkpointer::create(CheckpointConfig::new(&dir, 5.0), &crawler.export_state())
            .expect("create checkpointer");
        assert_eq!(ckpt.stats().snapshots, 1, "the base snapshot counts");
        drop(ckpt);
        let recovered = recover(&dir).expect("decodes").expect("base snapshot exists");
        assert!(!recovered.state.seeded, "day-0 state predates seeding");
        assert_eq!(recovered.state.fetch_seq, 0);
        assert!(recovered.wal.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_without_snapshot_is_an_error_not_silent_loss() {
        // The pre-fix failure mode: committed WAL frames with no snapshot
        // (an old-build crash between the first WAL flush and the first
        // snapshot, or a hand-deleted snapshot). `recover` must refuse,
        // not report "nothing to resume" and let a fresh `create` truncate
        // the log.
        let dir = temp_dir("orphan-wal");
        let u = WebUniverse::generate(UniverseConfig::test_scale(23));
        let mut crawler = IncrementalCrawler::new(config(30));
        let mut ckpt =
            Checkpointer::create(CheckpointConfig::new(&dir, 50.0), &crawler.export_state())
                .unwrap();
        let mut fetcher = SimFetcher::new(&u);
        crawler.drive(&u, &mut fetcher, &mut ckpt, 6.0).expect("drive");
        drop(ckpt);
        fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
        match recover(&dir) {
            Err(StoreError::WalWithoutSnapshot { committed_records }) => {
                assert!(committed_records > 0)
            }
            other => panic!("expected WalWithoutSnapshot, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_snapshot_tmp_is_removed_and_overwritten() {
        // A crash between the snapshot temp-file write and the atomic
        // rename leaves `snapshot.wsnap.tmp` behind. `recover` must clean
        // it up, recovery must be unaffected, and the next snapshot must
        // succeed over the residue.
        let dir = temp_dir("stale-tmp");
        let u = WebUniverse::generate(UniverseConfig::test_scale(24));
        let mut crawler = IncrementalCrawler::new(config(30));
        let cfg = CheckpointConfig::new(&dir, 2.0);
        let mut ckpt = Checkpointer::create(cfg.clone(), &crawler.export_state()).unwrap();
        let mut fetcher = SimFetcher::new(&u);
        crawler.drive(&u, &mut fetcher, &mut ckpt, 8.0).expect("drive");
        drop(ckpt);
        // Plant a partial temp file, as a mid-write crash would.
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        fs::write(&tmp, b"WEBEVO-SNAPSHOT 3 torn-mid-wr").unwrap();

        let recovered = recover(&dir).expect("stale tmp must not break recovery");
        let recovered = recovered.expect("real snapshot still recovers");
        assert!(recovered.state.seeded);
        assert!(!tmp.exists(), "recover removes the stale temp file");

        // The next snapshot (here: the post-recovery re-snapshot) lands
        // cleanly even with a fresh stale tmp planted again.
        fs::write(&tmp, b"garbage").unwrap();
        let (mut restored, fstate) = engine::restore(recovered.state).expect("restores");
        let mut fetcher2 = SimFetcher::new(&u);
        fetcher2.restore_state(fstate.unwrap());
        restored.replay(&u, &mut fetcher2, &recovered.wal).expect("replay");
        let mut state = restored.export_state();
        state.fetcher = Fetcher::export_state(&fetcher2);
        let ckpt2 = Checkpointer::continue_from(cfg, &state).expect("snapshot over stale tmp");
        assert_eq!(ckpt2.stats().snapshots, 1);
        let again = recover(&dir).expect("decodes").expect("snapshot exists");
        assert_eq!(again.state.fetch_seq, state.fetch_seq);
        assert!(!tmp.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn continue_from_resnapshots() {
        let dir = temp_dir("cont");
        let u = WebUniverse::generate(UniverseConfig::test_scale(22));
        let mut crawler = IncrementalCrawler::new(config(30));
        let mut ckpt =
            Checkpointer::create(CheckpointConfig::new(&dir, 2.0), &crawler.export_state())
                .unwrap();
        let mut fetcher = SimFetcher::new(&u);
        crawler.drive(&u, &mut fetcher, &mut ckpt, 10.0).expect("drive");

        let recovered = recover(&dir).unwrap().unwrap();
        let (mut restored, fstate) = engine::restore(recovered.state).expect("restores");
        let mut fetcher2 = SimFetcher::new(&u);
        fetcher2.restore_state(fstate.unwrap());
        restored.replay(&u, &mut fetcher2, &recovered.wal).expect("replay");
        let mut state = restored.export_state();
        state.fetcher = Fetcher::export_state(&fetcher2);
        let ckpt2 =
            Checkpointer::continue_from(CheckpointConfig::new(&dir, 2.0), &state).unwrap();
        assert_eq!(ckpt2.stats().snapshots, 1);
        // The new lineage stands alone: recovery now yields the replayed
        // state with an empty WAL tail.
        let again = recover(&dir).unwrap().unwrap();
        assert!(again.wal.is_empty());
        assert_eq!(again.state.fetch_seq, state.fetch_seq);
        fs::remove_dir_all(&dir).unwrap();
    }
}
