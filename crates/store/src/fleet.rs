//! [`FleetSession`]: a sharded crawl fleet — many [`CrawlSession`]s, one
//! result.
//!
//! The paper's incremental crawler is explicitly a web-scale system: §2
//! monitors 270 sites / 720,000 pages daily, and §4–5 argue the real
//! crawler must spread that work across many concurrent crawl units. The
//! fleet is that horizontal layer. A [`ShardPlan`] deterministically
//! partitions the universe's sites across `N` shards; each shard runs as a
//! scoped [`CrawlSession`] — its own engine instance, its own checkpoint
//! directory — on a worker thread.
//!
//! # The link-exchange protocol
//!
//! Shards are *scoped*, not blind: a shard's engine knows the plan, skips
//! seeds on foreign sites, and diverts every foreign link it discovers
//! into its routing **outbox** instead of burning a fetch on a URL another
//! shard owns (the site-filtered [`ShardedFetcher`] remains as a residual
//! backstop, and [`ShardReport::foreign_rejects`] counts its hits — zero
//! in a healthy fleet). The fleet drives all shards in lockstep between
//! **exchange barriers** at `T(b) = b · interval` (the ranking interval
//! for incremental shards, the cycle length for periodic ones). At each
//! barrier the coordinator:
//!
//! 1. reads *every* shard's outbox (before injecting into any shard —
//!    injection clears the receiving shard's own outbox);
//! 2. merges the links per destination shard in `(source ShardId, seq)`
//!    order ([`route_exchange`]), so the batches are a pure function of
//!    the outbox contents, independent of thread scheduling;
//! 3. injects each shard's batch into its engine frontier (consuming one
//!    sequence number) and logs the applied batch as a routed record in
//!    the shard's write-ahead log;
//! 4. syncs every shard's log, so the exchange is durable before any
//!    shard crawls past the barrier.
//!
//! Every shard receives a batch at every barrier — an empty one if
//! nothing routed its way — so the applied-exchange counter stays uniform
//! across the fleet, which is what lets recovery detect and align a kill
//! that landed mid-exchange. The merged fleet result is byte-identical
//! across runs and across [`FleetSessionBuilder::concurrency`] values:
//! thread scheduling decides only *when* a shard's numbers are produced,
//! never what they are.
//!
//! # On-disk layout
//!
//! With checkpointing configured, the fleet directory holds one manifest
//! plus one checkpoint directory per shard:
//!
//! ```text
//! fleet-dir/
//! ├── fleet.manifest     # shard count, partition fn, engine kind, seed
//! ├── shard-0/           # a normal CrawlSession checkpoint dir:
//! │   ├── snapshot.wsnap #   base snapshot at lineage start, then cadence
//! │   └── wal.wlog       #   committed per-fetch deltas, interleaved with
//! │                      #   routed-batch records (frame tag 'X') at each
//! │                      #   exchange barrier
//! ├── shard-1/
//! │   └── …
//! └── shard-N-1/
//! ```
//!
//! [`FleetSession::resume`] validates the manifest against the builder's
//! configuration (shard count, partition function, engine kind, and
//! universe seed must match — a fleet must never resume under a different
//! routing) and each shard's recorded scope against the manifest plan (a
//! shard checkpointed under another plan is a typed
//! `StoreError::ShardPlanMismatch`). A kill can land mid-exchange, with
//! some shards' logs holding a routed batch their peers never received;
//! recovery *aligns* the fleet by dropping those trailing batches down to
//! the fleet-wide minimum exchange count — every shard then sits exactly
//! at the barrier with its outbox intact — and re-runs the exchange from
//! the live outboxes, which reproduces the dropped batches byte for byte.
//! The resumed trajectory therefore equals an uninterrupted run
//! (`tests/determinism.rs`).
//!
//! # Rebalancing
//!
//! [`FleetSession::rebalance`] migrates a checkpointed incremental fleet
//! onto a new [`ShardPlan`] (same shard count — e.g. hash → balanced to
//! fix ownership skew) between passes: it recovers every shard, performs
//! one final exchange so no outbox holds links routed under the old plan,
//! moves pages, URL evidence, revisit-queue entries, and admissions to
//! their new owners at the state level, re-apportions collection capacity
//! to the new ownership, writes a fresh snapshot lineage per shard, and
//! atomically rewrites the manifest. Resuming afterwards continues under
//! the new plan; resuming a stale pre-rebalance shard directory against
//! the rewritten manifest is the `ShardPlanMismatch` error above.
//!
//! Any [`EngineKind`] runs per shard, including the threaded engine:
//! its seq-tagged deterministic coordinator enforces the shard scope at
//! its dispatch queue (workers never see a foreign URL) and speaks the
//! same outbox/exchange protocol as the single-threaded engines, so
//! worker parallelism composes with sharding. The one restriction is
//! [`FleetSessionBuilder::failure_rate`], which needs the session
//! fetcher the threaded engine does not use.
//!
//! ```
//! use webevo_core::engine::{CrawlBudget, EngineKind};
//! use webevo_sim::{UniverseConfig, WebUniverse};
//! use webevo_store::FleetSession;
//!
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(11));
//! let mut fleet = FleetSession::builder()
//!     .shards(2)
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(40).with_cycle_days(8.0))
//!     .universe(&universe)
//!     .build()
//!     .expect("a valid fleet");
//! let results = fleet.run(10.0).expect("the fleet runs");
//! assert_eq!(results.shards.len(), 2);
//! assert!(results.merged.fetches > 0);
//! // Every fetch the fleet performed happened on exactly one shard.
//! let per_shard: u64 = results.shards.iter().map(|s| s.metrics.fetches).sum();
//! assert_eq!(results.merged.fetches, per_shard);
//! // Foreign discoveries route between shards instead of burning fetches.
//! assert!(results.shards.iter().all(|s| s.foreign_rejects == 0));
//! let routed: u64 = results.shards.iter().map(|s| s.routed_links).sum();
//! assert!(routed > 0, "cross-shard links were exchanged");
//! ```

use crate::checkpoint::{recover, CheckpointConfig, Checkpointer, Recovered};
use crate::codec::StoreError;
use crate::session::CrawlSession;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use webevo_core::engine::{CrawlBudget, EngineKind};
use webevo_core::{rebalance_states, route_exchange, CrawlMetrics, RoutedLink, ShardScope, WalEvent};
use webevo_obs::{LogicalClock, ObsSink, Stage};
use webevo_serve::{FleetViewCollector, QueryService, ServeHandle};
use webevo_sim::{ShardedFetcher, SimFetcher, WebUniverse};
use webevo_types::{ShardFn, ShardId, ShardPlan, WebEvoError};

/// Manifest file name within a fleet directory.
pub const MANIFEST_FILE: &str = "fleet.manifest";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// The name of shard `k`'s checkpoint directory under the fleet dir.
pub fn shard_dir_name(shard: ShardId) -> String {
    format!("shard-{}", shard.0)
}

/// The durable identity of a fleet — the routing-relevant fields
/// (`version`, `plan`, `engine`, `seed`) that `resume` verifies before it
/// re-routes sites to shards — plus the snapshot cadence, recorded for
/// operators but deliberately *not* validated (resuming under a new
/// cadence is legitimate tuning, exactly as it is for a single
/// `CrawlSession`). Serialized as one JSON object in [`MANIFEST_FILE`].
/// [`FleetSession::rebalance`] rewrites it atomically when the plan
/// changes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest {
    /// Manifest format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// The site partition: shard count, total sites, and partition
    /// function. Resuming under a different plan would route sites to
    /// different shards and tear every shard's deterministic schedule.
    pub plan: ShardPlan,
    /// The per-shard engine kind.
    pub engine: EngineKind,
    /// The universe seed the fleet crawled (the whole synthetic web
    /// derives from it, so it identifies the crawl target).
    pub seed: u64,
    /// Full-snapshot cadence of every shard's checkpointer when the
    /// manifest was written (informational; see the struct docs).
    pub snapshot_every_days: f64,
}

/// One shard's share of a fleet result.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Which shard.
    pub shard: ShardId,
    /// The shard's collection capacity (its weight in the merge).
    pub capacity: usize,
    /// Sites the plan assigns to this shard.
    pub sites: usize,
    /// Pages the shard's engine holds user-visible at the horizon.
    pub collection_len: usize,
    /// Fetch attempts the shard's fetcher rejected as foreign. With link
    /// routing in force this is a residual backstop — engines divert
    /// foreign discoveries into the outbox and never schedule a foreign
    /// fetch, so a nonzero count indicates a routing bug.
    pub foreign_rejects: u64,
    /// Links delivered *to* this shard by exchange barriers during the
    /// run: foreign discoveries other shards routed here instead of
    /// burning fetches on them.
    pub routed_links: u64,
    /// The shard's own metrics.
    pub metrics: CrawlMetrics,
}

/// A fleet run's outcome: the order-independent merged view plus every
/// shard's own report (ascending shard order).
#[derive(Clone, Debug)]
pub struct FleetMetrics {
    /// Fleet-level metrics, merged in ascending shard order (see
    /// [`CrawlMetrics::merge_weighted`] for per-channel semantics).
    pub merged: CrawlMetrics,
    /// Per-shard reports, index = shard id.
    pub shards: Vec<ShardReport>,
}

impl FleetMetrics {
    /// Total pages user-visible across the fleet.
    pub fn collection_len(&self) -> usize {
        self.shards.iter().map(|s| s.collection_len).sum()
    }

    /// Total links delivered across all exchange barriers.
    pub fn routed_links(&self) -> u64 {
        self.shards.iter().map(|s| s.routed_links).sum()
    }
}

/// Builder for a [`FleetSession`]. Obtain via [`FleetSession::builder`].
pub struct FleetSessionBuilder<'a> {
    universe: Option<&'a WebUniverse>,
    engine: EngineKind,
    budget: Option<CrawlBudget>,
    shards: u32,
    function: ShardFn,
    checkpoint: Option<(PathBuf, f64)>,
    concurrency: Option<usize>,
    failure_rate: f64,
    obs: ObsSink,
}

impl<'a> FleetSessionBuilder<'a> {
    fn new() -> FleetSessionBuilder<'a> {
        FleetSessionBuilder {
            universe: None,
            engine: EngineKind::Incremental,
            budget: None,
            shards: 1,
            function: ShardFn::Hash,
            checkpoint: None,
            concurrency: None,
            failure_rate: 0.0,
            obs: ObsSink::noop(),
        }
    }

    /// How many shards to partition the sites across (required; ≥ 1).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// The partition-function family (default: [`ShardFn::Hash`]).
    /// [`ShardFn::Balanced`] round-robins sites by id, which keeps
    /// per-shard ownership within one site of even — the skew-free choice
    /// when sites carry comparable weight.
    pub fn partition(mut self, function: ShardFn) -> Self {
        self.function = function;
        self
    }

    /// The per-shard engine kind (default: incremental). The threaded
    /// engine composes with sharding — each shard runs its own worker
    /// pool, scoped at the coordinator's dispatch queue — but cannot be
    /// combined with [`FleetSessionBuilder::failure_rate`].
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// The *fleet-wide* fetch budget (required): capacity and crawl rate
    /// are split across the shards — equal rate per shard, capacity
    /// apportioned by owned sites — so N shards together are granted
    /// exactly the one-engine budget.
    pub fn budget(mut self, budget: CrawlBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The synthetic web to crawl (required). All shards share it
    /// read-only; the [`ShardPlan`] decides who fetches what.
    pub fn universe(mut self, universe: &'a WebUniverse) -> Self {
        self.universe = Some(universe);
        self
    }

    /// Checkpoint every shard under `dir/shard-K/`, with a fleet manifest
    /// at `dir/fleet.manifest`. Also the directory [`FleetSession::resume`]
    /// recovers from.
    pub fn checkpoint(mut self, dir: impl AsRef<Path>, snapshot_every_days: f64) -> Self {
        self.checkpoint = Some((dir.as_ref().to_path_buf(), snapshot_every_days));
        self
    }

    /// Cap on concurrently running shard threads (default: one thread per
    /// shard). The outcome is byte-identical for every value ≥ 1 — shards
    /// advance in lockstep between exchange barriers and the merge order
    /// is fixed — so this only trades memory/core pressure against
    /// wall-clock time.
    pub fn concurrency(mut self, threads: usize) -> Self {
        self.concurrency = Some(threads);
        self
    }

    /// Inject transient fetch failures at this rate into every shard's
    /// fetcher (deterministic per shard; useful for recovery testing).
    pub fn failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate;
        self
    }

    /// Observe the fleet through `sink`: each shard's session gets a
    /// shard-labelled view of it (see [`ObsSink::for_shard`]), the
    /// coordinator stamps exchange barriers and rebalances, and
    /// [`ObsSink::merged_registry`] afterwards folds the per-shard
    /// histograms into one fleet-wide view. The default [`ObsSink::noop`]
    /// records nothing; tracing never changes what the fleet crawls.
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.obs = sink;
        self
    }

    /// Validate the configuration and construct the fleet. All failure
    /// modes are typed [`WebEvoError`]s.
    pub fn build(self) -> Result<FleetSession<'a>, WebEvoError> {
        let universe = self.universe.ok_or_else(|| {
            WebEvoError::invalid("no universe supplied: call .universe(&universe)")
        })?;
        let budget = self
            .budget
            .ok_or_else(|| WebEvoError::invalid("a fleet needs .budget(…)"))?;
        if self.shards == 0 {
            return Err(WebEvoError::invalid("a fleet needs at least one shard"));
        }
        if matches!(self.engine, EngineKind::Threaded { .. }) && self.failure_rate > 0.0 {
            return Err(WebEvoError::invalid(
                "failure injection needs the session fetcher, but the threaded engine's \
                 workers spawn their own — use EngineKind::Incremental or \
                 EngineKind::Periodic to combine a fleet with .failure_rate(…)",
            ));
        }
        if budget.capacity < self.shards as usize {
            return Err(WebEvoError::invalid(format!(
                "budget capacity {} cannot be split across {} shards (every shard needs \
                 at least one page)",
                budget.capacity, self.shards
            )));
        }
        if let Some(threads) = self.concurrency {
            if threads == 0 {
                return Err(WebEvoError::invalid(
                    "fleet concurrency must be at least one thread",
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.failure_rate) {
            return Err(WebEvoError::invalid(format!(
                "failure rate must lie in [0, 1], got {}",
                self.failure_rate
            )));
        }
        if let Some((dir, every)) = &self.checkpoint {
            if !(*every > 0.0 && every.is_finite()) {
                return Err(WebEvoError::invalid(format!(
                    "snapshot cadence must be positive, got {every}"
                )));
            }
            std::fs::create_dir_all(dir).map_err(|e| {
                WebEvoError::invalid(format!("fleet dir {dir:?} cannot be created: {e}"))
            })?;
        }
        let plan = ShardPlan::new(self.function, self.shards, universe.site_count() as u32);
        let site_counts = owned_site_counts(&plan, universe);
        let capacities = apportion_capacity(budget.capacity, &site_counts);
        Ok(FleetSession {
            universe,
            engine: self.engine,
            budget,
            plan,
            site_counts,
            capacities,
            checkpoint: self.checkpoint,
            concurrency: self.concurrency,
            failure_rate: self.failure_rate,
            obs: self.obs,
            serve: None,
            results: None,
        })
    }
}

/// Sites each shard owns under `plan`, index = shard id.
fn owned_site_counts(plan: &ShardPlan, universe: &WebUniverse) -> Vec<usize> {
    plan.shard_ids()
        .map(|k| universe.sites().iter().filter(|s| plan.owns(k, s.id)).count())
        .collect()
}

/// Split the fleet's collection capacity across shards **proportionally
/// to the sites each shard owns** (largest-remainder apportionment, ties
/// to the lower shard id), with a floor of one page per shard so every
/// shard remains a valid session. Sizing by owned sites keeps capacity
/// where the reachable pages are — an even split would strand budget on
/// small shards that can never fill it, and bias the capacity-weighted
/// metrics merge. The result is a pure function of `(capacity,
/// site_counts)`, so it is identical on every run and resume.
fn apportion_capacity(capacity: usize, site_counts: &[usize]) -> Vec<usize> {
    let shards = site_counts.len();
    let total_sites: usize = site_counts.iter().sum();
    if total_sites == 0 {
        // Degenerate (siteless universe): fall back to an even split.
        return (0..shards)
            .map(|k| capacity / shards + usize::from(k < capacity % shards))
            .collect();
    }
    let mut caps: Vec<usize> = site_counts
        .iter()
        .map(|&s| capacity * s / total_sites)
        .collect();
    // Hand the rounding remainder to the largest fractional parts.
    let assigned: usize = caps.iter().sum();
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&k| {
        // Descending fractional remainder; ascending shard id on ties.
        (std::cmp::Reverse(capacity * site_counts[k] % total_sites), k)
    });
    for &k in order.iter().take(capacity - assigned) {
        caps[k] += 1;
    }
    // Floor of 1 (a zero-capacity shard is not a valid session): borrow
    // from the largest allocations, largest first.
    while caps.contains(&0) {
        let donor = (0..shards).max_by_key(|&k| (caps[k], std::cmp::Reverse(k))).expect("nonempty");
        if caps[donor] <= 1 {
            break; // capacity == shards: everyone has exactly one
        }
        let recipient = caps.iter().position(|&c| c == 0).expect("a zero exists");
        caps[donor] -= 1;
        caps[recipient] += 1;
    }
    caps
}

/// The exchanges a shard's durable state absorbs once its committed WAL
/// tail replays: the snapshot's counter plus every routed record in the
/// tail the snapshot does not already cover.
fn replayed_exchanges(recovered: &Recovered) -> u64 {
    let base_seq = recovered.state.fetch_seq;
    recovered.state.routing.exchanges
        + recovered
            .wal
            .iter()
            .filter(|e| matches!(e, WalEvent::Routed(_)) && e.seq() > base_seq)
            .count() as u64
}

/// Align a shard's recovery to `target` exchanges by dropping trailing
/// routed records from its WAL tail. A kill mid-exchange leaves some
/// shards' logs holding a batch their peers never received; by protocol
/// those surplus batches sit at the very end of the log (no shard crawls
/// past a barrier until every shard's batch is durable), so dropping them
/// rolls the shard back to the barrier with its outbox intact, and the
/// re-run exchange reproduces the dropped batches byte for byte.
fn align_exchanges(recovered: &mut Recovered, target: u64) -> Result<(), WebEvoError> {
    let mut e = replayed_exchanges(recovered);
    while e > target {
        match recovered.wal.last() {
            Some(WalEvent::Routed(batch)) if batch.seq > recovered.state.fetch_seq => {
                recovered.wal.pop();
                e -= 1;
            }
            _ => {
                return Err(WebEvoError::InvalidState(format!(
                    "checkpoint holds {e} applied exchange(s) inside its snapshot but the \
                     fleet minimum is {target}; the shards' histories have diverged"
                )))
            }
        }
    }
    Ok(())
}

/// Drive every session whose clock lies short of `until` up to `until`,
/// on a pool of `threads` scoped workers. Which thread drives which shard
/// is scheduling noise; each shard's trajectory is deterministic.
///
/// A recovered shard whose replayed clock already sits at `until` (its
/// interrupted drive completed this leg) is not re-driven, but it still
/// records the closing metrics sample the interrupted drive ended with —
/// see [`CrawlSession::close_sample`] — so every shard's sampling grid
/// stays identical to an uninterrupted fleet's.
fn drive_all(
    sessions: &mut [CrawlSession<'_>],
    until: f64,
    threads: usize,
) -> Result<(), WebEvoError> {
    let shard_count = sessions.len();
    let work: Mutex<Vec<(usize, &mut CrawlSession<'_>)>> =
        Mutex::new(sessions.iter_mut().enumerate().collect());
    let slots: Vec<Mutex<Option<WebEvoError>>> =
        (0..shard_count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let item = work.lock().expect("no worker poisoned the queue").pop();
                let Some((k, session)) = item else { break };
                if until > session.clock().t {
                    if let Err(e) = session.run(until) {
                        *slots[k].lock().expect("no worker poisoned this slot") = Some(e);
                    }
                } else {
                    session.close_sample(until);
                }
            });
        }
    });
    for (k, slot) in slots.into_iter().enumerate() {
        if let Some(e) = slot.into_inner().expect("no worker poisoned this slot") {
            return Err(WebEvoError::InvalidState(format!("shard#{k}: {e}")));
        }
    }
    Ok(())
}

/// A sharded crawl fleet over one universe. Built by
/// [`FleetSession::builder`]; see the module docs.
pub struct FleetSession<'a> {
    universe: &'a WebUniverse,
    engine: EngineKind,
    budget: CrawlBudget,
    plan: ShardPlan,
    /// Sites each shard owns under `plan`, index = shard id.
    site_counts: Vec<usize>,
    /// Collection capacity per shard (see [`apportion_capacity`]).
    capacities: Vec<usize>,
    checkpoint: Option<(PathBuf, f64)>,
    concurrency: Option<usize>,
    failure_rate: f64,
    /// Fleet-level observability sink; shard sessions receive
    /// shard-labelled views of it.
    obs: ObsSink,
    /// The fleet's view collector, once [`FleetSession::serve`] created
    /// one: each shard's engine stages boundary views into it, and the
    /// coordinator merges them into one fleet view at exchange barriers.
    serve: Option<Arc<FleetViewCollector>>,
    results: Option<FleetMetrics>,
}

impl<'a> FleetSession<'a> {
    /// Start building a fleet.
    pub fn builder() -> FleetSessionBuilder<'a> {
        FleetSessionBuilder::new()
    }

    /// The site partition in force (after a [`FleetSession::rebalance`],
    /// the new plan).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The fleet manifest this configuration implies (what `run` writes).
    pub fn manifest(&self) -> FleetManifest {
        FleetManifest {
            version: MANIFEST_VERSION,
            plan: self.plan,
            engine: self.engine,
            seed: self.universe.config().seed,
            snapshot_every_days: self.checkpoint.as_ref().map(|(_, e)| *e).unwrap_or(0.0),
        }
    }

    /// The most recent run's results.
    pub fn results(&self) -> Option<&FleetMetrics> {
        self.results.as_ref()
    }

    /// Attach the serving layer to the fleet: each shard's engine stages
    /// an immutable view of its collection at every pass boundary, and
    /// the coordinator merges the staged shard views into **one fleet
    /// view** at every exchange barrier (and once more after the final
    /// drive) — shards own disjoint `PageId` sets, so the merge restores
    /// global page order and pools metrics with the same capacity weights
    /// the end-of-run merge uses. The returned
    /// [`QueryService`] serves that merged view to any number of reader
    /// threads while the fleet crawls. Readers see the empty epoch-0 view
    /// until the first barrier. Serving is free: a served fleet's
    /// checkpoints and metrics are byte-identical to an unserved one's
    /// (`tests/determinism.rs` pins this).
    ///
    /// Repeated calls share one epoch lineage, which also survives
    /// [`FleetSession::resume`].
    pub fn serve(&mut self) -> QueryService {
        let collector = match &self.serve {
            Some(collector) => Arc::clone(collector),
            None => {
                let weights = self.capacities.iter().map(|&c| c as f64).collect();
                let collector =
                    FleetViewCollector::new(ServeHandle::new(self.obs.clone()), weights);
                self.serve = Some(Arc::clone(&collector));
                collector
            }
        };
        collector.service()
    }

    /// Run every shard from day 0 to day `days` in lockstep (exchange
    /// barriers between segments; see the module docs) and merge. With
    /// checkpointing configured, writes the fleet manifest and starts a
    /// fresh snapshot+WAL lineage per shard.
    pub fn run(&mut self, days: f64) -> Result<&FleetMetrics, WebEvoError> {
        if let Some((dir, _)) = &self.checkpoint {
            write_manifest(dir, &self.manifest())?;
        }
        self.execute(days, false)
    }

    /// Recover every shard from the fleet directory and continue to day
    /// `days`: validate the manifest against this configuration and every
    /// shard's recorded scope against the manifest plan, align the
    /// shards' exchange counters (a kill mid-exchange leaves them one
    /// apart; see `align_exchanges`), then continue the lockstep drive.
    pub fn resume(&mut self, days: f64) -> Result<&FleetMetrics, WebEvoError> {
        let Some((dir, _)) = self.checkpoint.clone() else {
            return Err(WebEvoError::InvalidState(
                "resume requires .checkpoint(dir, every) on the builder".into(),
            ));
        };
        self.validate_manifest(&dir)?;
        self.execute(days, true)
    }

    fn validate_manifest(&self, dir: &Path) -> Result<(), WebEvoError> {
        let manifest = read_manifest(dir)?;
        let expected = self.manifest();
        if manifest.version != MANIFEST_VERSION {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest version {} is not understood (this build reads {})",
                manifest.version, MANIFEST_VERSION
            )));
        }
        if manifest.plan != expected.plan {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest partitions {} sites across {} shards by {}, but this \
                 session is configured for {} sites across {} shards by {} — resuming \
                 would re-route sites between shards",
                manifest.plan.total_sites(),
                manifest.plan.shards(),
                manifest.plan.function(),
                expected.plan.total_sites(),
                expected.plan.shards(),
                expected.plan.function(),
            )));
        }
        if !manifest.engine.same_family(&expected.engine) {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest was written by {} shards, but this session is configured \
                 for {} shards",
                manifest.engine.name(),
                expected.engine.name()
            )));
        }
        if manifest.seed != expected.seed {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest was written against universe seed {}, but this session's \
                 universe has seed {}",
                manifest.seed, expected.seed
            )));
        }
        Ok(())
    }

    /// Days between exchange barriers: the engines' natural pass cadence,
    /// so injection always lands at a quiescent boundary.
    fn barrier_interval(&self) -> f64 {
        match self.engine {
            EngineKind::Periodic => self.budget.periodic_config().cycle_days,
            _ => self.budget.incremental_config().ranking_interval_days,
        }
    }

    /// Recover every shard's checkpoint, validate its recorded scope
    /// against the current plan, and align the fleet to its minimum
    /// exchange count. `None` entries are shards with no durable state at
    /// all — legal only before the first exchange (they restart fresh);
    /// afterwards the batches delivered to them are gone and the fleet
    /// refuses to guess.
    fn recover_aligned(&self, dir: &Path) -> Result<Vec<Option<Recovered>>, WebEvoError> {
        let _span = self.obs.span(Stage::SnapshotDecode, LogicalClock::new(0.0, 0));
        let shard_count = self.plan.shards() as usize;
        let mut recoveries: Vec<Option<Recovered>> = Vec::with_capacity(shard_count);
        for k in 0..shard_count {
            let shard_dir = dir.join(shard_dir_name(ShardId(k as u32)));
            let rec = recover(&shard_dir).map_err(|e| {
                WebEvoError::InvalidState(format!(
                    "shard#{k}: checkpoint dir {shard_dir:?} cannot be recovered: {e}"
                ))
            })?;
            recoveries.push(rec);
        }
        let counts: Vec<u64> = recoveries
            .iter()
            .flatten()
            .map(replayed_exchanges)
            .collect();
        let e_min = counts.iter().copied().min().unwrap_or(0);
        let e_max = counts.iter().copied().max().unwrap_or(0);
        if e_max > e_min + 1 {
            return Err(WebEvoError::InvalidState(format!(
                "shard checkpoints disagree by more than one exchange ({e_min}..{e_max}); \
                 they are not one fleet's lineage"
            )));
        }
        if e_max > 0 {
            if let Some(k) = recoveries.iter().position(Option::is_none) {
                return Err(WebEvoError::InvalidState(format!(
                    "shard#{k} has no checkpoint, but the fleet has completed link \
                     exchanges — the batches delivered to it cannot be reconstructed; \
                     restore its checkpoint directory"
                )));
            }
        }
        for (k, rec) in recoveries.iter_mut().enumerate() {
            if let Some(rec) = rec {
                let expected = ShardScope { plan: self.plan, shard: ShardId(k as u32) };
                if rec.state.routing.scope != Some(expected) {
                    return Err(WebEvoError::InvalidState(format!(
                        "shard#{k}: {}",
                        StoreError::ShardPlanMismatch { shard: k as u32 }
                    )));
                }
                align_exchanges(rec, e_min)?;
            }
        }
        Ok(recoveries)
    }

    /// Build shard `k`'s scoped session over `fetcher`.
    fn shard_session<'s>(
        &self,
        shard: ShardId,
        fetcher: &'s mut ShardedFetcher<'a>,
    ) -> Result<CrawlSession<'s>, WebEvoError>
    where
        'a: 's,
    {
        let capacity = self.capacities[shard.index()];
        let mut builder = CrawlSession::builder()
            .engine(self.engine)
            .universe(self.universe)
            .scope(self.plan, shard);
        // The threaded engine spawns its own worker fetchers (scoping is
        // enforced at its coordinator's dispatch queue); handing it the
        // session fetcher is a build error.
        if !matches!(self.engine, EngineKind::Threaded { .. }) {
            builder = builder.fetcher(fetcher);
        }
        builder = match self.engine {
            EngineKind::Periodic => {
                let mut config = self.budget.periodic_config();
                config.capacity = capacity;
                builder.periodic(config)
            }
            _ => {
                let mut config = self.budget.incremental_config();
                let total: usize = self.capacities.iter().sum();
                config.capacity = capacity;
                // The fleet's aggregate rate, apportioned like the
                // capacity: a shard that owns a third of the pages gets a
                // third of the fetch slots. An even split would leave
                // large shards unable to cover their sites within the
                // horizon while small shards burn slots on early
                // revisits — the collection deficit the routing protocol
                // exists to close. Rates differ per shard, so metrics
                // sampling is pinned to the shared grid (see
                // `IncrementalCrawler::advance`), keeping the per-shard
                // series mergeable.
                config.crawl_rate_per_day =
                    self.budget.steady_rate() * capacity as f64 / total.max(1) as f64;
                builder.incremental(config)
            }
        };
        if let Some((dir, every)) = &self.checkpoint {
            builder = builder.checkpoint(dir.join(shard_dir_name(shard)), *every);
        }
        if self.obs.enabled() {
            builder = builder.obs(self.obs.for_shard(shard));
        }
        builder.build()
    }

    /// One exchange barrier: read every outbox, merge per destination in
    /// `(ShardId, seq)` order, inject each shard's batch (logging it to
    /// the shard's WAL), then sync every shard so the exchange is durable
    /// before anyone crawls on. Returns links delivered per shard.
    fn exchange(&self, sessions: &mut [CrawlSession<'_>]) -> Result<Vec<u64>, WebEvoError> {
        let barrier_t = sessions.first().map(|s| s.clock().t).unwrap_or(0.0);
        let _span = self.obs.span(Stage::ExchangeBarrier, LogicalClock::new(barrier_t, 0));
        // Read all outboxes before injecting into any shard: injection
        // clears the receiving shard's own outbox.
        let parts: Vec<(ShardId, Vec<RoutedLink>)> = sessions
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let outbox = s.routing().map(|r| r.outbox.clone()).unwrap_or_default();
                if self.obs.enabled() {
                    self.obs
                        .for_shard(ShardId(k as u32))
                        .observe("outbox_depth", outbox.len() as f64);
                }
                (ShardId(k as u32), outbox)
            })
            .collect();
        let batches = route_exchange(&self.plan, &parts);
        let mut delivered = vec![0u64; sessions.len()];
        for (k, (session, links)) in sessions.iter_mut().zip(batches).enumerate() {
            delivered[k] = links.len() as u64;
            if self.obs.enabled() {
                self.obs
                    .for_shard(ShardId(k as u32))
                    .observe("routed_batch_size", links.len() as f64);
            }
            session
                .inject_routed(links)
                .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?;
        }
        for (k, session) in sessions.iter_mut().enumerate() {
            session
                .sync()
                .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?;
        }
        Ok(delivered)
    }

    /// Drive all shards in lockstep to day `days`, exchanging at every
    /// barrier strictly inside the horizon, and merge in ascending shard
    /// order.
    fn execute(&mut self, days: f64, resume: bool) -> Result<&FleetMetrics, WebEvoError> {
        let shard_count = self.plan.shards() as usize;
        let threads = self.concurrency.unwrap_or(shard_count).min(shard_count);
        let mut fetchers: Vec<ShardedFetcher<'a>> = self
            .plan
            .shard_ids()
            .map(|k| {
                ShardedFetcher::new(
                    SimFetcher::new(self.universe).with_failure_rate(self.failure_rate),
                    self.plan,
                    k,
                )
            })
            .collect();
        let mut sessions: Vec<CrawlSession<'_>> = Vec::with_capacity(shard_count);
        for (k, fetcher) in fetchers.iter_mut().enumerate() {
            let mut session = self
                .shard_session(ShardId(k as u32), fetcher)
                .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?;
            // Fleet snapshot discipline: cadence snapshots fire only at
            // exchange barriers, pre-injection, so no shard's snapshot
            // ever absorbs an exchange a peer still holds only as a
            // trailing WAL record — the invariant that keeps any single
            // shard's torn WAL tail recoverable (see `align_exchanges`).
            session.snapshot_at_barriers_only();
            sessions.push(session);
        }
        if resume {
            let (dir, _) = self.checkpoint.clone().expect("resume checked checkpointing");
            let recoveries = self.recover_aligned(&dir)?;
            for (k, rec) in recoveries.into_iter().enumerate() {
                if let Some(rec) = rec {
                    sessions[k]
                        .adopt(rec)
                        .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?;
                }
                // A shard with no durable state (legal only before the
                // first exchange) simply starts fresh from day 0 below.
            }
        }
        if let Some(collector) = &self.serve {
            // Serving: every shard's engine stages its boundary views into
            // the collector; the coordinator merges at barriers below.
            for (k, session) in sessions.iter_mut().enumerate() {
                let collector = Arc::clone(collector);
                session.install_view_publisher(Box::new(move || {
                    collector.publisher_for(ShardId(k as u32))
                }));
            }
        }
        // Lockstep: segments end at exchange barriers T(b) = b·interval.
        // The next barrier index always equals the applied-exchange
        // counter + 1 — recovery aligned the counters, so one number
        // schedules the whole fleet.
        let interval = self.barrier_interval();
        let mut routed = vec![0u64; shard_count];
        let mut exchanges = sessions
            .first()
            .and_then(|s| s.routing())
            .map(|r| r.exchanges)
            .unwrap_or(0);
        loop {
            let barrier = (exchanges + 1) as f64 * interval;
            if barrier >= days {
                break;
            }
            drive_all(&mut sessions, barrier, threads)?;
            // Cadence snapshots happen here, before the injection below,
            // so the exchange always lands in every shard's fresh WAL.
            for (k, session) in sessions.iter_mut().enumerate() {
                session
                    .snapshot_if_due()
                    .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?;
            }
            let delivered = self.exchange(&mut sessions)?;
            for (k, n) in delivered.into_iter().enumerate() {
                routed[k] += n;
            }
            self.merge_views(barrier)?;
            exchanges += 1;
        }
        drive_all(&mut sessions, days, threads)?;
        self.merge_views(days)?;
        let outcomes: Vec<(CrawlMetrics, usize)> = sessions
            .iter()
            .map(|s| (s.metrics().clone(), s.collection_len()))
            .collect();
        drop(sessions);
        let mut shards = Vec::with_capacity(shard_count);
        for (k, ((metrics, collection_len), fetcher)) in
            outcomes.into_iter().zip(&fetchers).enumerate()
        {
            shards.push(ShardReport {
                shard: ShardId(k as u32),
                capacity: self.capacities[k],
                sites: self.site_counts[k],
                collection_len,
                foreign_rejects: fetcher.foreign_rejects(),
                routed_links: routed[k],
                metrics,
            });
        }
        let parts: Vec<(f64, &CrawlMetrics)> = shards
            .iter()
            .map(|s| (s.capacity as f64, &s.metrics))
            .collect();
        let merged = CrawlMetrics::merge_weighted(&parts)?;
        self.results = Some(FleetMetrics { merged, shards });
        Ok(self.results.as_ref().expect("just stored"))
    }

    /// Merge the staged shard views into one fleet view and publish it
    /// as the next epoch (no-op until [`FleetSession::serve`] attached a
    /// collector, or until every shard has staged a boundary).
    fn merge_views(&self, t: f64) -> Result<(), WebEvoError> {
        let Some(collector) = &self.serve else {
            return Ok(());
        };
        let _span = self.obs.span(Stage::ViewSwap, LogicalClock::new(t, 0));
        collector.merge_and_publish()?;
        Ok(())
    }

    /// The collection capacity shard `k` gets: the budget's capacity
    /// apportioned proportionally to the sites the shard owns (floor of
    /// one page; see `apportion_capacity`), so capacity sits where the
    /// reachable pages are even under a skewed hash partition.
    pub fn shard_capacity(&self, shard: ShardId) -> usize {
        self.capacities[shard.index()]
    }

    /// Migrate a checkpointed incremental fleet onto `new_plan` between
    /// passes. Recovers every shard, performs one final exchange so no
    /// outbox holds links routed under the old plan, moves pages, URL
    /// evidence, revisit-queue entries, and admissions to their new
    /// owners, re-apportions collection capacity to the new ownership,
    /// writes a fresh snapshot lineage per shard, and atomically rewrites
    /// the fleet manifest. Afterwards [`FleetSession::resume`] continues
    /// under `new_plan`; a stale pre-rebalance shard directory fails it
    /// with a typed shard-plan mismatch.
    ///
    /// The shard *count* cannot change (capacity and crawl rate were
    /// split at build time), and only the incremental engine migrates —
    /// the periodic engine's mid-cycle shadow state has no stable home in
    /// a different partition.
    pub fn rebalance(&mut self, new_plan: ShardPlan) -> Result<(), WebEvoError> {
        let Some((dir, every)) = self.checkpoint.clone() else {
            return Err(WebEvoError::InvalidState(
                "rebalance requires .checkpoint(dir, every) on the builder".into(),
            ));
        };
        if !matches!(self.engine, EngineKind::Incremental) {
            return Err(WebEvoError::InvalidState(format!(
                "only incremental fleets rebalance; this fleet runs the {} engine",
                self.engine.name()
            )));
        }
        if new_plan.shards() != self.plan.shards() {
            return Err(WebEvoError::InvalidState(format!(
                "rebalance cannot change the shard count ({} -> {}); it re-routes sites \
                 across the existing shards",
                self.plan.shards(),
                new_plan.shards()
            )));
        }
        if new_plan.total_sites() != self.plan.total_sites() {
            return Err(WebEvoError::InvalidState(format!(
                "the new plan covers {} sites but the fleet crawls {}",
                new_plan.total_sites(),
                self.plan.total_sites()
            )));
        }
        self.validate_manifest(&dir)?;
        let shard_count = self.plan.shards() as usize;
        let _span = self.obs.span(Stage::Rebalance, LogicalClock::new(0.0, 0));

        // Materialize every shard at its last committed boundary (aligned,
        // under the *old* plan).
        let recoveries = self.recover_aligned(&dir)?;
        if let Some(k) = recoveries.iter().position(Option::is_none) {
            return Err(WebEvoError::InvalidState(format!(
                "shard#{k} has no checkpoint; run the fleet before rebalancing"
            )));
        }
        let mut fetchers: Vec<ShardedFetcher<'a>> = self
            .plan
            .shard_ids()
            .map(|k| {
                ShardedFetcher::new(
                    SimFetcher::new(self.universe).with_failure_rate(self.failure_rate),
                    self.plan,
                    k,
                )
            })
            .collect();
        let mut sessions: Vec<CrawlSession<'_>> = Vec::with_capacity(shard_count);
        for (k, fetcher) in fetchers.iter_mut().enumerate() {
            sessions.push(
                self.shard_session(ShardId(k as u32), fetcher)
                    .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?,
            );
        }
        for (k, rec) in recoveries.into_iter().enumerate() {
            let rec = rec.expect("checked above");
            sessions[k]
                .adopt(rec)
                .map_err(|e| WebEvoError::InvalidState(format!("shard#{k}: {e}")))?;
        }
        // Final exchange under the old plan: migration must not find links
        // in any outbox that were routed by the partition being retired.
        self.exchange(&mut sessions)?;
        let mut states: Vec<_> = sessions.iter_mut().map(|s| s.export_state()).collect();
        drop(sessions);

        // Re-apportion capacity to the new ownership and migrate.
        let site_counts = owned_site_counts(&new_plan, self.universe);
        let capacities = apportion_capacity(self.budget.capacity, &site_counts);
        rebalance_states(&mut states, &new_plan, &capacities)?;

        // Fresh snapshot lineage per shard, then the new manifest — the
        // manifest rename is the atomic commit point of the rebalance.
        for (k, state) in states.iter().enumerate() {
            let shard_dir = dir.join(shard_dir_name(ShardId(k as u32)));
            let config = CheckpointConfig::new(shard_dir.clone(), every);
            Checkpointer::continue_from(config, state).map_err(|e| {
                WebEvoError::InvalidState(format!(
                    "shard#{k}: checkpoint dir {shard_dir:?} is not writable: {e}"
                ))
            })?;
        }
        self.plan = new_plan;
        self.site_counts = site_counts;
        self.capacities = capacities;
        self.results = None;
        write_manifest(&dir, &self.manifest())
    }
}

/// Write the manifest atomically (temp file + rename), mirroring the
/// snapshot discipline: a crash mid-write never leaves a torn manifest.
fn write_manifest(dir: &Path, manifest: &FleetManifest) -> Result<(), WebEvoError> {
    let json = serde_json::to_string(manifest)
        .map_err(|e| WebEvoError::InvalidState(format!("manifest does not encode: {e}")))?;
    let path = dir.join(MANIFEST_FILE);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    std::fs::write(&tmp, json.as_bytes())
        .and_then(|()| std::fs::rename(&tmp, &path))
        .map_err(|e| {
            WebEvoError::invalid(format!("fleet manifest {path:?} cannot be written: {e}"))
        })
}

/// Read and decode the manifest of a fleet directory. A stale
/// `fleet.manifest.tmp` — the residue of a crash between the temp write
/// and the rename in `write_manifest` — is removed here, mirroring the
/// snapshot-tmp cleanup in [`crate::checkpoint::recover`]: the rename
/// never happened, so the file belongs to no lineage.
pub fn read_manifest(dir: &Path) -> Result<FleetManifest, WebEvoError> {
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    match std::fs::remove_file(&tmp) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(WebEvoError::InvalidState(format!(
                "removing stale {tmp:?}: {e}"
            )))
        }
    }
    let path = dir.join(MANIFEST_FILE);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        WebEvoError::InvalidState(format!(
            "nothing to resume: fleet manifest {path:?} cannot be read: {e}"
        ))
    })?;
    serde_json::from_str(&json).map_err(|e| {
        WebEvoError::InvalidState(format!("fleet manifest {path:?} does not decode: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::UniverseConfig;

    fn universe(seed: u64) -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(seed))
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("webevo-fleet-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn capacity_apportioned_by_owned_sites() {
        // test_scale universes have 10 sites; Range over 3 shards owns
        // 4/3/3, so a 32-page budget splits ~12.8/9.6/9.6 → 13/10/9 or
        // 13/9/10 by largest remainder. Check the invariants rather than
        // one rounding outcome: exact sum, ≥1 each, monotone in sites.
        let u = universe(51);
        let fleet = FleetSession::builder()
            .shards(3)
            .partition(ShardFn::Range)
            .budget(CrawlBudget::paper_monthly(32))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let caps: Vec<usize> = (0..3).map(|k| fleet.shard_capacity(ShardId(k))).collect();
        assert_eq!(caps.iter().sum::<usize>(), 32);
        assert!(caps.iter().all(|&c| c >= 1));
        assert!(caps[0] > caps[1], "the 4-site shard outweighs the 3-site ones: {caps:?}");
    }

    #[test]
    fn apportionment_is_exact_proportional_and_floored() {
        // Skewed ownership: capacity follows the sites, sums exactly, and
        // a siteless shard still gets its floor of one page.
        assert_eq!(apportion_capacity(100, &[50, 30, 20]), vec![50, 30, 20]);
        assert_eq!(apportion_capacity(10, &[7, 2, 1]), vec![7, 2, 1]);
        let skewed = apportion_capacity(100, &[97, 2, 1, 0]);
        assert_eq!(skewed.iter().sum::<usize>(), 100);
        assert!(skewed[3] >= 1, "siteless shard floored: {skewed:?}");
        assert!(skewed[0] > 90, "dominant shard keeps its share: {skewed:?}");
        // capacity == shards: everyone gets exactly one.
        assert_eq!(apportion_capacity(3, &[5, 0, 0]), vec![1, 1, 1]);
        // Degenerate siteless universe: even split.
        assert_eq!(apportion_capacity(7, &[0, 0, 0]), vec![3, 2, 2]);
    }

    #[test]
    fn balanced_partition_owns_evenly() {
        let u = universe(60);
        let fleet = FleetSession::builder()
            .shards(3)
            .partition(ShardFn::Balanced)
            .budget(CrawlBudget::paper_monthly(30))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let counts: Vec<usize> = (0..3).map(|k| fleet.site_counts[k]).collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "balanced ownership within one site: {counts:?}");
    }

    #[test]
    fn stale_manifest_tmp_is_removed_on_read() {
        let dir = temp_dir("manifest-tmp");
        let u = universe(59);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(CrawlBudget::paper_monthly(20).with_cycle_days(5.0))
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        fleet.run(6.0).expect("runs");
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, b"{ torn mid-wr").unwrap();
        let manifest = read_manifest(&dir).expect("stale tmp must not break reads");
        assert_eq!(manifest, fleet.manifest());
        assert!(!tmp.exists(), "read_manifest removes the stale temp file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_partition_the_work() {
        let u = universe(52);
        let mut fleet = FleetSession::builder()
            .shards(3)
            .partition(ShardFn::Range)
            .budget(CrawlBudget::paper_monthly(30).with_cycle_days(5.0))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let results = fleet.run(12.0).expect("runs");
        assert_eq!(results.shards.len(), 3);
        let sites: usize = results.shards.iter().map(|s| s.sites).sum();
        assert_eq!(sites, u.site_count(), "every site belongs to exactly one shard");
        for report in &results.shards {
            assert!(report.metrics.fetches > 0, "{} idle", report.shard);
            assert!(report.collection_len <= report.capacity);
        }
        // Routing replaced rejection: no shard ever burned a fetch on a
        // foreign URL, and the boundary traffic flowed through exchanges.
        let rejects: u64 = results.shards.iter().map(|s| s.foreign_rejects).sum();
        assert_eq!(rejects, 0, "the routing layer must keep fetches on owned sites");
        assert!(results.routed_links() > 0, "cross-shard links were exchanged");
        assert_eq!(
            results.merged.fetches,
            results.shards.iter().map(|s| s.metrics.fetches).sum::<u64>()
        );
        assert!(results.collection_len() > 0);
    }

    #[test]
    fn concurrency_does_not_change_the_result() {
        let u = universe(61);
        let run_with = |threads: usize| {
            let mut fleet = FleetSession::builder()
                .shards(3)
                .budget(CrawlBudget::paper_monthly(30).with_cycle_days(5.0))
                .universe(&u)
                .concurrency(threads)
                .build()
                .expect("valid fleet");
            let r = fleet.run(9.0).expect("runs").clone();
            (
                r.merged.fetches,
                r.routed_links(),
                r.shards.iter().map(|s| s.collection_len).collect::<Vec<_>>(),
            )
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2));
        assert_eq!(one, run_with(3));
    }

    #[test]
    fn periodic_fleet_runs_and_merges() {
        let u = universe(53);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Periodic)
            .budget(CrawlBudget::paper_monthly(40).with_cycle_days(10.0))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let results = fleet.run(25.0).expect("runs");
        assert!(results.merged.fetches > 0);
        assert!(!results.merged.freshness.is_empty());
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let u = universe(54);
        let budget = CrawlBudget::paper_monthly(10);
        let invalid = |b: FleetSessionBuilder| b.build().err().expect("must be rejected");
        invalid(FleetSession::builder().budget(budget).universe(&u).shards(0));
        invalid(FleetSession::builder().budget(budget).universe(&u).shards(11));
        invalid(
            FleetSession::builder()
                .budget(budget)
                .universe(&u)
                .shards(2)
                .engine(EngineKind::Threaded { workers: 2 })
                .failure_rate(0.1),
        );
        invalid(
            FleetSession::builder()
                .budget(budget)
                .universe(&u)
                .shards(2)
                .concurrency(0),
        );
        invalid(
            FleetSession::builder()
                .budget(budget)
                .universe(&u)
                .shards(2)
                .failure_rate(1.5),
        );
        invalid(FleetSession::builder().universe(&u).shards(2));
        invalid(FleetSession::builder().budget(budget).shards(2));
    }

    #[test]
    fn manifest_roundtrips_and_mismatches_are_typed() {
        let dir = temp_dir("manifest");
        let u = universe(55);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        fleet.run(8.0).expect("runs");
        let on_disk = read_manifest(&dir).expect("manifest written");
        assert_eq!(on_disk, fleet.manifest());

        // Wrong shard count.
        let mut wrong_shards = FleetSession::builder()
            .shards(3)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_shards.resume(12.0).is_err());
        // Wrong partition function.
        let mut wrong_fn = FleetSession::builder()
            .shards(2)
            .partition(ShardFn::Range)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_fn.resume(12.0).is_err());
        // Wrong engine family.
        let mut wrong_engine = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Periodic)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_engine.resume(12.0).is_err());
        // Wrong universe seed.
        let other = universe(56);
        let mut wrong_seed = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&other)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_seed.resume(12.0).is_err());
        // The matching configuration resumes fine.
        let mut matching = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        matching.resume(12.0).expect("matching fleet resumes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_exchange_shard_loss_restarts_fresh() {
        // Before the first exchange barrier, shards hold no routed state —
        // a shard that lost its checkpoint can restart from day 0 and the
        // fleet still merges to the exact uninterrupted trajectory. (The
        // default ranking interval is 1 day, so stop short of day 1.)
        let dir = temp_dir("pre-exchange-loss");
        let u = universe(58);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let build = |checkpoint: bool| {
            let mut b = FleetSession::builder()
                .shards(3)
                .budget(budget)
                .universe(&u)
                .failure_rate(0.1);
            if checkpoint {
                b = b.checkpoint(&dir, 4.0);
            }
            b.build().expect("valid fleet")
        };
        let mut killed = build(true);
        killed.run(0.75).expect("runs");
        drop(killed);
        std::fs::remove_dir_all(dir.join(shard_dir_name(ShardId(1)))).expect("dir exists");

        let mut resumed = build(true);
        let recovered = resumed.resume(12.0).expect("fleet resumes").clone();
        let mut reference = build(false);
        let uninterrupted = reference.run(12.0).expect("runs").clone();
        assert_eq!(recovered.merged.fetches, uninterrupted.merged.fetches);
        assert_eq!(recovered.routed_links(), uninterrupted.routed_links());
        let a: Vec<(f64, f64)> = recovered.merged.freshness.rows().collect();
        let b: Vec<(f64, f64)> = uninterrupted.merged.freshness.rows().collect();
        assert_eq!(a, b, "merged trajectory must survive the missing shard");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn post_exchange_shard_loss_is_typed() {
        // After a barrier, the batches delivered to a shard exist only in
        // its own checkpoint; losing it wholesale is unrecoverable and
        // must say so instead of silently restarting the shard (which
        // would lose the routed pages forever).
        let dir = temp_dir("post-exchange-loss");
        let u = universe(62);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let mut fleet = FleetSession::builder()
            .shards(3)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 4.0)
            .build()
            .expect("valid fleet");
        fleet.run(6.0).expect("runs");
        drop(fleet);
        std::fs::remove_dir_all(dir.join(shard_dir_name(ShardId(1)))).expect("dir exists");
        let mut resumed = FleetSession::builder()
            .shards(3)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 4.0)
            .build()
            .expect("valid fleet");
        let err = resumed.resume(12.0).map(|_| ()).expect_err("must refuse");
        assert!(err.to_string().contains("no checkpoint"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebalance_migrates_and_rewrites_the_manifest() {
        let dir = temp_dir("rebalance");
        let u = universe(63);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 4.0)
            .build()
            .expect("valid fleet");
        let before = fleet.run(6.0).expect("runs").clone();
        let total_before = before.collection_len();

        let new_plan = ShardPlan::new(ShardFn::Balanced, 2, u.site_count() as u32);
        fleet.rebalance(new_plan).expect("rebalances");
        assert_eq!(*fleet.plan(), new_plan);
        assert_eq!(read_manifest(&dir).expect("manifest").plan, new_plan);

        // The migrated fleet resumes under the new plan and keeps crawling.
        let after = fleet.resume(12.0).expect("resumes post-rebalance").clone();
        assert!(after.merged.fetches >= before.merged.fetches);
        assert!(after.collection_len() >= total_before.saturating_sub(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_pre_rebalance_checkpoint_is_a_plan_mismatch() {
        let dir = temp_dir("stale-shard");
        let u = universe(64);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 4.0)
            .build()
            .expect("valid fleet");
        fleet.run(6.0).expect("runs");
        // Save shard 0's pre-rebalance checkpoint aside.
        let shard0 = dir.join(shard_dir_name(ShardId(0)));
        let saved = dir.join("shard-0.saved");
        copy_dir(&shard0, &saved);
        let new_plan = ShardPlan::new(ShardFn::Balanced, 2, u.site_count() as u32);
        fleet.rebalance(new_plan).expect("rebalances");
        // Restore the stale directory: its recorded scope carries the old
        // plan, which no longer matches the rewritten manifest.
        std::fs::remove_dir_all(&shard0).unwrap();
        copy_dir(&saved, &shard0);
        let err = fleet.resume(12.0).map(|_| ()).expect_err("must refuse");
        assert!(err.to_string().contains("different shard plan"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn copy_dir(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }

    #[test]
    fn rebalance_preconditions_are_typed() {
        let u = universe(65);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let plan2 = ShardPlan::new(ShardFn::Balanced, 2, u.site_count() as u32);
        // No checkpointing.
        let mut no_ckpt = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .build()
            .expect("valid fleet");
        assert!(no_ckpt.rebalance(plan2).is_err());
        // Periodic engine.
        let dir = temp_dir("rebalance-pre");
        let mut periodic = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Periodic)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 4.0)
            .build()
            .expect("valid fleet");
        assert!(periodic.rebalance(plan2).is_err());
        // Shard-count change.
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 4.0)
            .build()
            .expect("valid fleet");
        let plan3 = ShardPlan::new(ShardFn::Balanced, 3, u.site_count() as u32);
        assert!(fleet.rebalance(plan3).is_err());
        // Never ran: nothing on disk to migrate.
        assert!(fleet.rebalance(plan2).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_manifest_is_typed() {
        let dir = temp_dir("no-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let u = universe(57);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(CrawlBudget::paper_monthly(20))
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        let err = fleet.resume(10.0).map(|_| ()).expect_err("nothing to resume");
        assert!(err.to_string().contains("nothing to resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
