//! [`FleetSession`]: a sharded crawl fleet — many [`CrawlSession`]s, one
//! result.
//!
//! The paper's incremental crawler is explicitly a web-scale system: §2
//! monitors 270 sites / 720,000 pages daily, and §4–5 argue the real
//! crawler must spread that work across many concurrent crawl units. The
//! fleet is that horizontal layer. A [`ShardPlan`] deterministically
//! partitions the universe's sites across `N` shards; each shard runs as
//! an *independent* [`CrawlSession`] — its own engine instance, its own
//! site-filtered [`ShardedFetcher`] view (URLs owned by other shards
//! resolve to `NotFound`, as if routed away), its own checkpoint
//! directory — on a scoped worker thread. When every shard reaches the
//! horizon, the per-shard [`CrawlMetrics`] are merged **in ascending shard
//! order** via [`CrawlMetrics::merge_weighted`], so the fleet-level result
//! is byte-identical across runs and across worker-thread counts: thread
//! scheduling decides only *when* a shard's numbers are produced, never
//! what they are.
//!
//! # On-disk layout
//!
//! With checkpointing configured, the fleet directory holds one manifest
//! plus one checkpoint directory per shard:
//!
//! ```text
//! fleet-dir/
//! ├── fleet.manifest     # shard count, partition fn, engine kind, seed
//! ├── shard-0/           # a normal CrawlSession checkpoint dir:
//! │   ├── snapshot.wsnap #   base snapshot at lineage start, then cadence
//! │   └── wal.wlog       #   committed per-fetch deltas since the snapshot
//! ├── shard-1/
//! │   └── …
//! └── shard-N-1/
//! ```
//!
//! [`FleetSession::resume`] recovers the manifest, validates it against
//! the builder's configuration (shard count, partition function, engine
//! kind, and universe seed must match — a fleet must never resume under a
//! different routing), and resumes every shard through the ordinary
//! `snapshot + WAL` path. Shards are independent, so the fleet tolerates
//! losing a single shard mid-run: that shard replays its WAL tail while
//! the others continue from their snapshots, and the merged trajectory
//! equals an uninterrupted fleet run (`tests/determinism.rs`). A shard
//! whose worker was never scheduled before the kill (no checkpoint on
//! disk at all) simply restarts from day 0 — it holds no durable work,
//! so the restart reproduces the uninterrupted shard exactly.
//!
//! The per-shard engine is [`EngineKind::Incremental`] or
//! [`EngineKind::Periodic`]; the threaded engine is rejected at build
//! time, because its workers spawn their own unfiltered fetchers — in a
//! fleet, the shards *are* the parallelism.
//!
//! ```
//! use webevo_core::engine::{CrawlBudget, EngineKind};
//! use webevo_sim::{UniverseConfig, WebUniverse};
//! use webevo_store::FleetSession;
//!
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(11));
//! let mut fleet = FleetSession::builder()
//!     .shards(2)
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(40).with_cycle_days(8.0))
//!     .universe(&universe)
//!     .build()
//!     .expect("a valid fleet");
//! let results = fleet.run(10.0).expect("the fleet runs");
//! assert_eq!(results.shards.len(), 2);
//! assert!(results.merged.fetches > 0);
//! // Every fetch the fleet performed happened on exactly one shard.
//! let per_shard: u64 = results.shards.iter().map(|s| s.metrics.fetches).sum();
//! assert_eq!(results.merged.fetches, per_shard);
//! ```

use crate::session::CrawlSession;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use webevo_core::engine::{CrawlBudget, EngineKind};
use webevo_core::CrawlMetrics;
use webevo_sim::{ShardedFetcher, SimFetcher, WebUniverse};
use webevo_types::{ShardFn, ShardId, ShardPlan, WebEvoError};

/// Manifest file name within a fleet directory.
pub const MANIFEST_FILE: &str = "fleet.manifest";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// The name of shard `k`'s checkpoint directory under the fleet dir.
pub fn shard_dir_name(shard: ShardId) -> String {
    format!("shard-{}", shard.0)
}

/// The durable identity of a fleet — the routing-relevant fields
/// (`version`, `plan`, `engine`, `seed`) that `resume` verifies before it
/// re-routes sites to shards — plus the snapshot cadence, recorded for
/// operators but deliberately *not* validated (resuming under a new
/// cadence is legitimate tuning, exactly as it is for a single
/// `CrawlSession`). Serialized as one JSON object in [`MANIFEST_FILE`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest {
    /// Manifest format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// The site partition: shard count, total sites, and partition
    /// function. Resuming under a different plan would route sites to
    /// different shards and tear every shard's deterministic schedule.
    pub plan: ShardPlan,
    /// The per-shard engine kind.
    pub engine: EngineKind,
    /// The universe seed the fleet crawled (the whole synthetic web
    /// derives from it, so it identifies the crawl target).
    pub seed: u64,
    /// Full-snapshot cadence of every shard's checkpointer when the
    /// manifest was written (informational; see the struct docs).
    pub snapshot_every_days: f64,
}

/// One shard's share of a fleet result.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Which shard.
    pub shard: ShardId,
    /// The shard's collection capacity (its weight in the merge).
    pub capacity: usize,
    /// Sites the plan assigns to this shard.
    pub sites: usize,
    /// Pages the shard's engine holds user-visible at the horizon.
    pub collection_len: usize,
    /// Fetch attempts the shard's fetcher rejected as foreign (routing
    /// boundary hits: seeds and cross-site links owned by other shards).
    pub foreign_rejects: u64,
    /// The shard's own metrics.
    pub metrics: CrawlMetrics,
}

/// A fleet run's outcome: the order-independent merged view plus every
/// shard's own report (ascending shard order).
#[derive(Clone, Debug)]
pub struct FleetMetrics {
    /// Fleet-level metrics, merged in ascending shard order (see
    /// [`CrawlMetrics::merge_weighted`] for per-channel semantics).
    pub merged: CrawlMetrics,
    /// Per-shard reports, index = shard id.
    pub shards: Vec<ShardReport>,
}

impl FleetMetrics {
    /// Total pages user-visible across the fleet.
    pub fn collection_len(&self) -> usize {
        self.shards.iter().map(|s| s.collection_len).sum()
    }
}

/// Builder for a [`FleetSession`]. Obtain via [`FleetSession::builder`].
pub struct FleetSessionBuilder<'a> {
    universe: Option<&'a WebUniverse>,
    engine: EngineKind,
    budget: Option<CrawlBudget>,
    shards: u32,
    function: ShardFn,
    checkpoint: Option<(PathBuf, f64)>,
    concurrency: Option<usize>,
    failure_rate: f64,
}

impl<'a> FleetSessionBuilder<'a> {
    fn new() -> FleetSessionBuilder<'a> {
        FleetSessionBuilder {
            universe: None,
            engine: EngineKind::Incremental,
            budget: None,
            shards: 1,
            function: ShardFn::Hash,
            checkpoint: None,
            concurrency: None,
            failure_rate: 0.0,
        }
    }

    /// How many shards to partition the sites across (required; ≥ 1).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// The partition-function family (default: [`ShardFn::Hash`]).
    pub fn partition(mut self, function: ShardFn) -> Self {
        self.function = function;
        self
    }

    /// The per-shard engine kind (default: incremental). The threaded
    /// engine is a build error — shards are the fleet's parallelism, and
    /// the threaded engine's workers would bypass the site filter.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// The *fleet-wide* fetch budget (required): capacity and crawl rate
    /// are split across the shards — equal rate per shard, capacity
    /// divided as evenly as integers allow — so N shards together are
    /// granted exactly the one-engine budget. (A small slice of each
    /// shard's slots goes to discovering the routing boundary: foreign
    /// seeds and cross-site links resolve to `NotFound`, visible as
    /// [`ShardReport::foreign_rejects`].)
    pub fn budget(mut self, budget: CrawlBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The synthetic web to crawl (required). All shards share it
    /// read-only; the [`ShardPlan`] decides who fetches what.
    pub fn universe(mut self, universe: &'a WebUniverse) -> Self {
        self.universe = Some(universe);
        self
    }

    /// Checkpoint every shard under `dir/shard-K/`, with a fleet manifest
    /// at `dir/fleet.manifest`. Also the directory [`FleetSession::resume`]
    /// recovers from.
    pub fn checkpoint(mut self, dir: impl AsRef<Path>, snapshot_every_days: f64) -> Self {
        self.checkpoint = Some((dir.as_ref().to_path_buf(), snapshot_every_days));
        self
    }

    /// Cap on concurrently running shard threads (default: one thread per
    /// shard). The outcome is byte-identical for every value ≥ 1 — shards
    /// are independent and the merge order is fixed — so this only trades
    /// memory/core pressure against wall-clock time.
    pub fn concurrency(mut self, threads: usize) -> Self {
        self.concurrency = Some(threads);
        self
    }

    /// Inject transient fetch failures at this rate into every shard's
    /// fetcher (deterministic per shard; useful for recovery testing).
    pub fn failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate;
        self
    }

    /// Validate the configuration and construct the fleet. All failure
    /// modes are typed [`WebEvoError`]s.
    pub fn build(self) -> Result<FleetSession<'a>, WebEvoError> {
        let universe = self.universe.ok_or_else(|| {
            WebEvoError::invalid("no universe supplied: call .universe(&universe)")
        })?;
        let budget = self
            .budget
            .ok_or_else(|| WebEvoError::invalid("a fleet needs .budget(…)"))?;
        if self.shards == 0 {
            return Err(WebEvoError::invalid("a fleet needs at least one shard"));
        }
        if matches!(self.engine, EngineKind::Threaded { .. }) {
            return Err(WebEvoError::invalid(
                "the threaded engine cannot run inside a fleet: its workers spawn \
                 unfiltered fetchers that would bypass the shard routing — use \
                 EngineKind::Incremental or EngineKind::Periodic per shard (the fleet's \
                 shards are the parallelism)",
            ));
        }
        if budget.capacity < self.shards as usize {
            return Err(WebEvoError::invalid(format!(
                "budget capacity {} cannot be split across {} shards (every shard needs \
                 at least one page)",
                budget.capacity, self.shards
            )));
        }
        if let Some(threads) = self.concurrency {
            if threads == 0 {
                return Err(WebEvoError::invalid(
                    "fleet concurrency must be at least one thread",
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.failure_rate) {
            return Err(WebEvoError::invalid(format!(
                "failure rate must lie in [0, 1], got {}",
                self.failure_rate
            )));
        }
        if let Some((dir, every)) = &self.checkpoint {
            if !(*every > 0.0 && every.is_finite()) {
                return Err(WebEvoError::invalid(format!(
                    "snapshot cadence must be positive, got {every}"
                )));
            }
            std::fs::create_dir_all(dir).map_err(|e| {
                WebEvoError::invalid(format!("fleet dir {dir:?} cannot be created: {e}"))
            })?;
        }
        let plan = ShardPlan::new(self.function, self.shards, universe.site_count() as u32);
        let site_counts: Vec<usize> = plan
            .shard_ids()
            .map(|k| universe.sites().iter().filter(|s| plan.owns(k, s.id)).count())
            .collect();
        let capacities = apportion_capacity(budget.capacity, &site_counts);
        Ok(FleetSession {
            universe,
            engine: self.engine,
            budget,
            plan,
            site_counts,
            capacities,
            checkpoint: self.checkpoint,
            concurrency: self.concurrency,
            failure_rate: self.failure_rate,
            results: None,
        })
    }
}

/// Split the fleet's collection capacity across shards **proportionally
/// to the sites each shard owns** (largest-remainder apportionment, ties
/// to the lower shard id), with a floor of one page per shard so every
/// shard remains a valid session. Sizing by owned sites keeps capacity
/// where the reachable pages are — an even split would strand budget on
/// small shards that can never fill it, and bias the capacity-weighted
/// metrics merge. The result is a pure function of `(capacity,
/// site_counts)`, so it is identical on every run and resume.
fn apportion_capacity(capacity: usize, site_counts: &[usize]) -> Vec<usize> {
    let shards = site_counts.len();
    let total_sites: usize = site_counts.iter().sum();
    if total_sites == 0 {
        // Degenerate (siteless universe): fall back to an even split.
        return (0..shards)
            .map(|k| capacity / shards + usize::from(k < capacity % shards))
            .collect();
    }
    let mut caps: Vec<usize> = site_counts
        .iter()
        .map(|&s| capacity * s / total_sites)
        .collect();
    // Hand the rounding remainder to the largest fractional parts.
    let assigned: usize = caps.iter().sum();
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&k| {
        // Descending fractional remainder; ascending shard id on ties.
        (std::cmp::Reverse(capacity * site_counts[k] % total_sites), k)
    });
    for &k in order.iter().take(capacity - assigned) {
        caps[k] += 1;
    }
    // Floor of 1 (a zero-capacity shard is not a valid session): borrow
    // from the largest allocations, largest first.
    while caps.contains(&0) {
        let donor = (0..shards).max_by_key(|&k| (caps[k], std::cmp::Reverse(k))).expect("nonempty");
        if caps[donor] <= 1 {
            break; // capacity == shards: everyone has exactly one
        }
        let recipient = caps.iter().position(|&c| c == 0).expect("a zero exists");
        caps[donor] -= 1;
        caps[recipient] += 1;
    }
    caps
}

/// A sharded crawl fleet over one universe. Built by
/// [`FleetSession::builder`]; see the module docs.
pub struct FleetSession<'a> {
    universe: &'a WebUniverse,
    engine: EngineKind,
    budget: CrawlBudget,
    plan: ShardPlan,
    /// Sites each shard owns under `plan`, index = shard id.
    site_counts: Vec<usize>,
    /// Collection capacity per shard (see [`apportion_capacity`]).
    capacities: Vec<usize>,
    checkpoint: Option<(PathBuf, f64)>,
    concurrency: Option<usize>,
    failure_rate: f64,
    results: Option<FleetMetrics>,
}

impl<'a> FleetSession<'a> {
    /// Start building a fleet.
    pub fn builder() -> FleetSessionBuilder<'a> {
        FleetSessionBuilder::new()
    }

    /// The site partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The fleet manifest this configuration implies (what `run` writes).
    pub fn manifest(&self) -> FleetManifest {
        FleetManifest {
            version: MANIFEST_VERSION,
            plan: self.plan,
            engine: self.engine,
            seed: self.universe.config().seed,
            snapshot_every_days: self.checkpoint.as_ref().map(|(_, e)| *e).unwrap_or(0.0),
        }
    }

    /// The most recent run's results.
    pub fn results(&self) -> Option<&FleetMetrics> {
        self.results.as_ref()
    }

    /// Run every shard from day 0 to day `days` and merge. With
    /// checkpointing configured, writes the fleet manifest and starts a
    /// fresh snapshot+WAL lineage per shard.
    pub fn run(&mut self, days: f64) -> Result<&FleetMetrics, WebEvoError> {
        if let Some((dir, _)) = &self.checkpoint {
            write_manifest(dir, &self.manifest())?;
        }
        self.execute(days, false)
    }

    /// Recover every shard from the fleet directory and continue to day
    /// `days`: validate the manifest against this configuration, then
    /// resume each shard through its own `snapshot + WAL tail` (a shard
    /// killed mid-run replays its log; the others continue from their
    /// snapshots), and merge as usual.
    pub fn resume(&mut self, days: f64) -> Result<&FleetMetrics, WebEvoError> {
        let Some((dir, _)) = self.checkpoint.clone() else {
            return Err(WebEvoError::InvalidState(
                "resume requires .checkpoint(dir, every) on the builder".into(),
            ));
        };
        let manifest = read_manifest(&dir)?;
        let expected = self.manifest();
        if manifest.version != MANIFEST_VERSION {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest version {} is not understood (this build reads {})",
                manifest.version, MANIFEST_VERSION
            )));
        }
        if manifest.plan != expected.plan {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest partitions {} sites across {} shards by {}, but this \
                 session is configured for {} sites across {} shards by {} — resuming \
                 would re-route sites between shards",
                manifest.plan.total_sites(),
                manifest.plan.shards(),
                manifest.plan.function(),
                expected.plan.total_sites(),
                expected.plan.shards(),
                expected.plan.function(),
            )));
        }
        if !manifest.engine.same_family(&expected.engine) {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest was written by {} shards, but this session is configured \
                 for {} shards",
                manifest.engine.name(),
                expected.engine.name()
            )));
        }
        if manifest.seed != expected.seed {
            return Err(WebEvoError::InvalidState(format!(
                "fleet manifest was written against universe seed {}, but this session's \
                 universe has seed {}",
                manifest.seed, expected.seed
            )));
        }
        self.execute(days, true)
    }

    /// Drive all shards (pool of `concurrency` scoped threads pulling
    /// shard ids) and merge in ascending shard order.
    fn execute(&mut self, days: f64, resume: bool) -> Result<&FleetMetrics, WebEvoError> {
        let shard_count = self.plan.shards() as usize;
        let threads = self.concurrency.unwrap_or(shard_count).min(shard_count);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<ShardReport, WebEvoError>>>> =
            (0..shard_count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= shard_count {
                        break;
                    }
                    let report = self.run_shard(ShardId(k as u32), days, resume);
                    *slots[k].lock().expect("no shard poisoned this slot") = Some(report);
                });
            }
        });
        let mut shards = Vec::with_capacity(shard_count);
        for (k, slot) in slots.into_iter().enumerate() {
            let report = slot
                .into_inner()
                .expect("no shard poisoned this slot")
                .expect("the pool visits every shard");
            shards.push(report.map_err(|e| {
                WebEvoError::InvalidState(format!("shard#{k}: {e}"))
            })?);
        }
        let parts: Vec<(f64, &CrawlMetrics)> = shards
            .iter()
            .map(|s| (s.capacity as f64, &s.metrics))
            .collect();
        let merged = CrawlMetrics::merge_weighted(&parts)?;
        self.results = Some(FleetMetrics { merged, shards });
        Ok(self.results.as_ref().expect("just stored"))
    }

    /// The collection capacity shard `k` gets: the budget's capacity
    /// apportioned proportionally to the sites the shard owns (floor of
    /// one page; see [`apportion_capacity`]), so capacity sits where the
    /// reachable pages are even under a skewed hash partition.
    pub fn shard_capacity(&self, shard: ShardId) -> usize {
        self.capacities[shard.index()]
    }

    /// One shard, end to end: site-filtered fetcher, per-shard engine
    /// configuration (equal crawl rate per shard — one shared float, so
    /// every shard samples metrics on the same slot grid and the merge
    /// lines up exactly), per-shard checkpoint dir, run or resume.
    fn run_shard(
        &self,
        shard: ShardId,
        days: f64,
        resume: bool,
    ) -> Result<ShardReport, WebEvoError> {
        let capacity = self.shard_capacity(shard);
        let sites = self.site_counts[shard.index()];
        let mut fetcher = ShardedFetcher::new(
            SimFetcher::new(self.universe).with_failure_rate(self.failure_rate),
            self.plan,
            shard,
        );
        let mut builder = CrawlSession::builder()
            .engine(self.engine)
            .universe(self.universe)
            .fetcher(&mut fetcher);
        builder = match self.engine {
            EngineKind::Periodic => {
                let mut config = self.budget.periodic_config();
                config.capacity = capacity;
                builder.periodic(config)
            }
            _ => {
                let mut config = self.budget.incremental_config();
                config.capacity = capacity;
                config.crawl_rate_per_day =
                    self.budget.steady_rate() / self.plan.shards() as f64;
                builder.incremental(config)
            }
        };
        let mut start_fresh = false;
        if let Some((dir, every)) = &self.checkpoint {
            let shard_dir = dir.join(shard_dir_name(shard));
            if resume && !shard_dir.join(crate::checkpoint::SNAPSHOT_FILE).exists() {
                // A shard whose worker never got scheduled before the kill
                // (e.g. under a small concurrency cap) has no checkpoint —
                // and therefore no durable work to lose: restart it fresh,
                // which reproduces the uninterrupted shard exactly.
                // `recover` distinguishes that empty state from an
                // orphaned WAL, which still refuses to resume.
                match crate::checkpoint::recover(&shard_dir) {
                    Ok(None) => start_fresh = true,
                    Ok(Some(_)) => {}
                    Err(e) => {
                        return Err(WebEvoError::InvalidState(format!(
                            "checkpoint dir {shard_dir:?} cannot be recovered: {e}"
                        )))
                    }
                }
            }
            builder = builder.checkpoint(shard_dir, *every);
        }
        let mut session = builder.build()?;
        if resume && !start_fresh {
            session.resume(days)?;
        } else {
            session.run(days)?;
        }
        let metrics = session.metrics().clone();
        let collection_len = session.collection_len();
        drop(session);
        Ok(ShardReport {
            shard,
            capacity,
            sites,
            collection_len,
            foreign_rejects: fetcher.foreign_rejects(),
            metrics,
        })
    }
}

/// Write the manifest atomically (temp file + rename), mirroring the
/// snapshot discipline: a crash mid-write never leaves a torn manifest.
fn write_manifest(dir: &Path, manifest: &FleetManifest) -> Result<(), WebEvoError> {
    let json = serde_json::to_string(manifest)
        .map_err(|e| WebEvoError::InvalidState(format!("manifest does not encode: {e}")))?;
    let path = dir.join(MANIFEST_FILE);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    std::fs::write(&tmp, json.as_bytes())
        .and_then(|()| std::fs::rename(&tmp, &path))
        .map_err(|e| {
            WebEvoError::invalid(format!("fleet manifest {path:?} cannot be written: {e}"))
        })
}

/// Read and decode the manifest of a fleet directory. A stale
/// `fleet.manifest.tmp` — the residue of a crash between the temp write
/// and the rename in [`write_manifest`] — is removed here, mirroring the
/// snapshot-tmp cleanup in [`crate::checkpoint::recover`]: the rename
/// never happened, so the file belongs to no lineage.
pub fn read_manifest(dir: &Path) -> Result<FleetManifest, WebEvoError> {
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    match std::fs::remove_file(&tmp) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(WebEvoError::InvalidState(format!(
                "removing stale {tmp:?}: {e}"
            )))
        }
    }
    let path = dir.join(MANIFEST_FILE);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        WebEvoError::InvalidState(format!(
            "nothing to resume: fleet manifest {path:?} cannot be read: {e}"
        ))
    })?;
    serde_json::from_str(&json).map_err(|e| {
        WebEvoError::InvalidState(format!("fleet manifest {path:?} does not decode: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::UniverseConfig;

    fn universe(seed: u64) -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(seed))
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("webevo-fleet-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn capacity_apportioned_by_owned_sites() {
        // test_scale universes have 10 sites; Range over 3 shards owns
        // 4/3/3, so a 32-page budget splits ~12.8/9.6/9.6 → 13/10/9 or
        // 13/9/10 by largest remainder. Check the invariants rather than
        // one rounding outcome: exact sum, ≥1 each, monotone in sites.
        let u = universe(51);
        let fleet = FleetSession::builder()
            .shards(3)
            .partition(ShardFn::Range)
            .budget(CrawlBudget::paper_monthly(32))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let caps: Vec<usize> = (0..3).map(|k| fleet.shard_capacity(ShardId(k))).collect();
        assert_eq!(caps.iter().sum::<usize>(), 32);
        assert!(caps.iter().all(|&c| c >= 1));
        assert!(caps[0] > caps[1], "the 4-site shard outweighs the 3-site ones: {caps:?}");
    }

    #[test]
    fn apportionment_is_exact_proportional_and_floored() {
        // Skewed ownership: capacity follows the sites, sums exactly, and
        // a siteless shard still gets its floor of one page.
        assert_eq!(apportion_capacity(100, &[50, 30, 20]), vec![50, 30, 20]);
        assert_eq!(apportion_capacity(10, &[7, 2, 1]), vec![7, 2, 1]);
        let skewed = apportion_capacity(100, &[97, 2, 1, 0]);
        assert_eq!(skewed.iter().sum::<usize>(), 100);
        assert!(skewed[3] >= 1, "siteless shard floored: {skewed:?}");
        assert!(skewed[0] > 90, "dominant shard keeps its share: {skewed:?}");
        // capacity == shards: everyone gets exactly one.
        assert_eq!(apportion_capacity(3, &[5, 0, 0]), vec![1, 1, 1]);
        // Degenerate siteless universe: even split.
        assert_eq!(apportion_capacity(7, &[0, 0, 0]), vec![3, 2, 2]);
    }

    #[test]
    fn stale_manifest_tmp_is_removed_on_read() {
        let dir = temp_dir("manifest-tmp");
        let u = universe(59);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(CrawlBudget::paper_monthly(20).with_cycle_days(5.0))
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        fleet.run(6.0).expect("runs");
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, b"{ torn mid-wr").unwrap();
        let manifest = read_manifest(&dir).expect("stale tmp must not break reads");
        assert_eq!(manifest, fleet.manifest());
        assert!(!tmp.exists(), "read_manifest removes the stale temp file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_partition_the_work() {
        let u = universe(52);
        let mut fleet = FleetSession::builder()
            .shards(3)
            .partition(ShardFn::Range)
            .budget(CrawlBudget::paper_monthly(30).with_cycle_days(5.0))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let results = fleet.run(12.0).expect("runs");
        assert_eq!(results.shards.len(), 3);
        let sites: usize = results.shards.iter().map(|s| s.sites).sum();
        assert_eq!(sites, u.site_count(), "every site belongs to exactly one shard");
        for report in &results.shards {
            assert!(report.metrics.fetches > 0, "{} idle", report.shard);
            assert!(report.collection_len <= report.capacity);
        }
        // The routing boundary is real: somewhere in the fleet, a foreign
        // URL (a seed or a cross-site link owned by another shard) was
        // rejected. (Not guaranteed per shard at short horizons — the
        // front-of-queue admission lane can starve the foreign seeds.)
        let rejects: u64 = results.shards.iter().map(|s| s.foreign_rejects).sum();
        assert!(rejects > 0, "no shard ever hit the routing boundary");
        assert_eq!(
            results.merged.fetches,
            results.shards.iter().map(|s| s.metrics.fetches).sum::<u64>()
        );
        assert!(results.collection_len() > 0);
    }

    #[test]
    fn periodic_fleet_runs_and_merges() {
        let u = universe(53);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Periodic)
            .budget(CrawlBudget::paper_monthly(40).with_cycle_days(10.0))
            .universe(&u)
            .build()
            .expect("valid fleet");
        let results = fleet.run(25.0).expect("runs");
        assert!(results.merged.fetches > 0);
        assert!(!results.merged.freshness.is_empty());
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let u = universe(54);
        let budget = CrawlBudget::paper_monthly(10);
        let invalid = |b: FleetSessionBuilder| b.build().err().expect("must be rejected");
        invalid(FleetSession::builder().budget(budget).universe(&u).shards(0));
        invalid(FleetSession::builder().budget(budget).universe(&u).shards(11));
        invalid(
            FleetSession::builder()
                .budget(budget)
                .universe(&u)
                .shards(2)
                .engine(EngineKind::Threaded { workers: 2 }),
        );
        invalid(
            FleetSession::builder()
                .budget(budget)
                .universe(&u)
                .shards(2)
                .concurrency(0),
        );
        invalid(
            FleetSession::builder()
                .budget(budget)
                .universe(&u)
                .shards(2)
                .failure_rate(1.5),
        );
        invalid(FleetSession::builder().universe(&u).shards(2));
        invalid(FleetSession::builder().budget(budget).shards(2));
    }

    #[test]
    fn manifest_roundtrips_and_mismatches_are_typed() {
        let dir = temp_dir("manifest");
        let u = universe(55);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        fleet.run(8.0).expect("runs");
        let on_disk = read_manifest(&dir).expect("manifest written");
        assert_eq!(on_disk, fleet.manifest());

        // Wrong shard count.
        let mut wrong_shards = FleetSession::builder()
            .shards(3)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_shards.resume(12.0).is_err());
        // Wrong partition function.
        let mut wrong_fn = FleetSession::builder()
            .shards(2)
            .partition(ShardFn::Range)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_fn.resume(12.0).is_err());
        // Wrong engine family.
        let mut wrong_engine = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Periodic)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_engine.resume(12.0).is_err());
        // Wrong universe seed.
        let other = universe(56);
        let mut wrong_seed = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&other)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        assert!(wrong_seed.resume(12.0).is_err());
        // The matching configuration resumes fine.
        let mut matching = FleetSession::builder()
            .shards(2)
            .budget(budget)
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        matching.resume(12.0).expect("matching fleet resumes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_restarts_a_never_started_shard_fresh() {
        // A kill can land before some shard's worker was ever scheduled
        // (small concurrency cap): that shard has no checkpoint directory
        // contents at all. Resuming the fleet must restart it from day 0
        // — it holds no durable work — and still merge to the exact
        // uninterrupted trajectory.
        let dir = temp_dir("never-started");
        let u = universe(58);
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let build = |checkpoint: bool| {
            let mut b = FleetSession::builder()
                .shards(3)
                .budget(budget)
                .universe(&u)
                .failure_rate(0.1);
            if checkpoint {
                b = b.checkpoint(&dir, 4.0);
            }
            b.build().expect("valid fleet")
        };
        let mut killed = build(true);
        killed.run(14.0).expect("runs");
        drop(killed);
        // Erase shard 1's directory wholesale: the on-disk state of a
        // shard whose thread never ran.
        std::fs::remove_dir_all(dir.join(shard_dir_name(ShardId(1)))).expect("dir exists");

        let mut resumed = build(true);
        let recovered = resumed.resume(22.0).expect("fleet resumes").clone();
        let mut reference = build(false);
        let uninterrupted = reference.run(22.0).expect("runs").clone();
        assert_eq!(recovered.merged.fetches, uninterrupted.merged.fetches);
        let a: Vec<(f64, f64)> = recovered.merged.freshness.rows().collect();
        let b: Vec<(f64, f64)> = uninterrupted.merged.freshness.rows().collect();
        assert_eq!(a, b, "merged trajectory must survive the missing shard");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_manifest_is_typed() {
        let dir = temp_dir("no-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let u = universe(57);
        let mut fleet = FleetSession::builder()
            .shards(2)
            .budget(CrawlBudget::paper_monthly(20))
            .universe(&u)
            .checkpoint(&dir, 3.0)
            .build()
            .expect("valid fleet");
        let err = fleet.resume(10.0).map(|_| ()).expect_err("nothing to resume");
        assert!(err.to_string().contains("nothing to resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
