//! [`CrawlSession`]: the one supported way to run a crawl.
//!
//! A session binds together everything a crawl needs — an engine (any
//! [`EngineKind`]), a [`CrawlBudget`] or explicit configuration, the
//! universe, a fetcher, an optional observer hook, and optional
//! checkpointing — behind a validating builder. What used to be a
//! per-engine zoo of constructors and hand-wired run/resume/replay
//! variants is now two calls:
//!
//! * [`CrawlSession::run`] — start a fresh crawl (checkpointing to disk
//!   when configured);
//! * [`CrawlSession::resume`] — recover `snapshot + WAL tail` from the
//!   checkpoint directory, replay to the last committed boundary, start a
//!   fresh checkpoint lineage, and continue. The continuation is
//!   bit-identical to a never-interrupted run (`tests/determinism.rs`).
//!
//! [`CrawlSessionBuilder::build`] validates everything up front and
//! returns typed [`WebEvoError`]s — zero capacity, zero workers, an
//! unwritable checkpoint directory, bad cadences — instead of panicking
//! mid-crawl; [`CrawlSession::resume`] adds recovery-shaped errors such
//! as a checkpoint written by a different engine kind.
//!
//! ```
//! use webevo_core::engine::{CrawlBudget, EngineKind};
//! use webevo_sim::{UniverseConfig, WebUniverse};
//! use webevo_store::CrawlSession;
//!
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(3));
//! let mut session = CrawlSession::builder()
//!     .engine(EngineKind::Threaded { workers: 2 })
//!     .budget(CrawlBudget::paper_monthly(40).with_cycle_days(8.0))
//!     .universe(&universe)
//!     .build()
//!     .expect("a valid session");
//! let metrics = session.run(20.0).expect("the crawl runs");
//! assert!(metrics.fetches > 0);
//! ```

use crate::checkpoint::{recover, CheckpointConfig, CheckpointStats, Checkpointer, Recovered};
use std::path::{Path, PathBuf};
use webevo_core::engine::{restore, CrawlBudget, CrawlEngine};
use webevo_core::{
    Collection, CrawlHook, CrawlMetrics, IncrementalConfig, IncrementalCrawler, NoopHook,
    PairHook, PeriodicConfig, PeriodicCrawler, RoutedBatch, RoutedLink, RoutingState,
    ShardScope, ThreadedCrawler,
};
use webevo_core::{EngineClock, EngineKind, ViewPublisher};
use webevo_obs::{LogicalClock, ObsSink, Stage};
use webevo_serve::{QueryService, ServeHandle};
use webevo_sim::{Fetcher, SimFetcher, WebUniverse};
use webevo_types::{ShardId, ShardPlan, WebEvoError};

/// The fetcher a session crawls through: caller-supplied, or a default
/// [`SimFetcher`] over the session's universe.
enum SessionFetcher<'a> {
    Borrowed(&'a mut (dyn Fetcher + Send)),
    Owned(SimFetcher<'a>),
}

impl SessionFetcher<'_> {
    fn get(&mut self) -> &mut dyn Fetcher {
        match self {
            SessionFetcher::Borrowed(f) => *f,
            SessionFetcher::Owned(f) => f,
        }
    }
}

/// Builder for a [`CrawlSession`]. Obtain via [`CrawlSession::builder`].
pub struct CrawlSessionBuilder<'a> {
    engine: Option<EngineKind>,
    budget: Option<CrawlBudget>,
    incremental_config: Option<IncrementalConfig>,
    periodic_config: Option<PeriodicConfig>,
    universe: Option<&'a WebUniverse>,
    fetcher: Option<&'a mut (dyn Fetcher + Send)>,
    hook: Option<&'a mut (dyn CrawlHook + Send)>,
    checkpoint: Option<(PathBuf, f64)>,
    scope: Option<ShardScope>,
    obs: ObsSink,
}

impl<'a> CrawlSessionBuilder<'a> {
    fn new() -> CrawlSessionBuilder<'a> {
        CrawlSessionBuilder {
            engine: None,
            budget: None,
            incremental_config: None,
            periodic_config: None,
            universe: None,
            fetcher: None,
            hook: None,
            checkpoint: None,
            scope: None,
            obs: ObsSink::noop(),
        }
    }

    /// Which engine to run (required). `EngineKind::Threaded { workers }`
    /// selects the concurrent engine with that worker count.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// The shared fetch budget the engine configuration derives from.
    /// Overridden per engine family by [`CrawlSessionBuilder::incremental`]
    /// / [`CrawlSessionBuilder::periodic`].
    pub fn budget(mut self, budget: CrawlBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Full incremental configuration (fine-grained control over the
    /// revisit strategy, estimator, ranking tuning, …). Takes precedence
    /// over [`CrawlSessionBuilder::budget`] for the incremental engines.
    pub fn incremental(mut self, config: IncrementalConfig) -> Self {
        self.incremental_config = Some(config);
        self
    }

    /// Full periodic configuration. Takes precedence over
    /// [`CrawlSessionBuilder::budget`] for the periodic engine.
    pub fn periodic(mut self, config: PeriodicConfig) -> Self {
        self.periodic_config = Some(config);
        self
    }

    /// The synthetic web to crawl (required): seed URLs and metrics ground
    /// truth.
    pub fn universe(mut self, universe: &'a WebUniverse) -> Self {
        self.universe = Some(universe);
        self
    }

    /// The fetcher to crawl through. Defaults to an unrestricted
    /// [`SimFetcher`] over the universe. The threaded engine spawns its
    /// own worker fetchers, so combining this with
    /// `EngineKind::Threaded` is a build error — a politeness- or
    /// failure-configured fetcher would otherwise be dropped silently.
    pub fn fetcher(mut self, fetcher: &'a mut (dyn Fetcher + Send)) -> Self {
        self.fetcher = Some(fetcher);
        self
    }

    /// An observer hook that sees every fetch and pass boundary, alongside
    /// the checkpointer when both are configured.
    pub fn hook(mut self, hook: &'a mut (dyn CrawlHook + Send)) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Scope the session to the sites one fleet shard owns under `plan`:
    /// foreign link discoveries divert into the routing outbox (drained by
    /// the fleet coordinator at exchange barriers) instead of burning
    /// fetches, and seeds on foreign sites are skipped. Every engine
    /// supports scoping — the threaded engine enforces it at its
    /// coordinator's dispatch queue, so its workers never fetch a foreign
    /// URL.
    pub fn scope(mut self, plan: ShardPlan, shard: ShardId) -> Self {
        self.scope = Some(ShardScope { plan, shard });
        self
    }

    /// Observe this session through `sink`: the engine's drive/pass/fetch
    /// spans and fetch-outcome counters, plus the checkpointer's WAL-flush
    /// and snapshot-encode spans, all land in it. The default
    /// [`ObsSink::noop`] records nothing at near-zero cost. Tracing is
    /// write-only — a traced run's crawl output is byte-identical to an
    /// untraced one (`tests/determinism.rs` pins this).
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.obs = sink;
        self
    }

    /// Checkpoint to `dir`, writing a full snapshot every
    /// `snapshot_every_days` simulated days (the WAL flushes at every pass
    /// boundary regardless). Also the directory [`CrawlSession::resume`]
    /// recovers from.
    pub fn checkpoint(mut self, dir: impl AsRef<Path>, snapshot_every_days: f64) -> Self {
        self.checkpoint = Some((dir.as_ref().to_path_buf(), snapshot_every_days));
        self
    }

    /// Validate the configuration and construct the session. All failure
    /// modes are typed [`WebEvoError`]s — nothing here panics.
    pub fn build(self) -> Result<CrawlSession<'a>, WebEvoError> {
        let kind = self.engine.ok_or_else(|| {
            WebEvoError::invalid("no engine selected: call .engine(EngineKind::…)")
        })?;
        let universe = self.universe.ok_or_else(|| {
            WebEvoError::invalid("no universe supplied: call .universe(&universe)")
        })?;
        if let EngineKind::Threaded { workers } = kind {
            if workers == 0 {
                return Err(WebEvoError::invalid(
                    "threaded engine needs at least one worker",
                ));
            }
            if self.fetcher.is_some() {
                return Err(WebEvoError::invalid(
                    "the threaded engine spawns its own worker fetchers and would ignore \
                     .fetcher(…); remove it (or pick a single-threaded engine to crawl \
                     through a custom fetcher)",
                ));
            }
        }

        // Resolve the engine configuration: explicit config > budget.
        let budget = self.budget;
        let mut engine: Box<dyn CrawlEngine + Send> = match kind {
            EngineKind::Periodic => {
                let config = match (self.periodic_config, budget) {
                    (Some(config), _) => config,
                    (None, Some(budget)) => budget.periodic_config(),
                    (None, None) => {
                        return Err(WebEvoError::invalid(
                            "periodic engine needs .budget(…) or .periodic(…)",
                        ))
                    }
                };
                validate_periodic(&config)?;
                Box::new(PeriodicCrawler::new(config))
            }
            EngineKind::Incremental | EngineKind::Threaded { .. } => {
                let config = match (self.incremental_config, budget) {
                    (Some(config), _) => config,
                    (None, Some(budget)) => budget.incremental_config(),
                    (None, None) => {
                        return Err(WebEvoError::invalid(
                            "incremental engines need .budget(…) or .incremental(…)",
                        ))
                    }
                };
                validate_incremental(&config)?;
                match kind {
                    EngineKind::Threaded { workers } => {
                        Box::new(ThreadedCrawler::new(config, workers))
                    }
                    _ => Box::new(IncrementalCrawler::new(config)),
                }
            }
        };

        // Shard scoping binds before the run seeds; engines that cannot be
        // scoped (the threaded one) reject it here, at build time.
        if let Some(scope) = self.scope {
            engine.set_scope(scope)?;
        }
        if self.obs.enabled() {
            engine.set_obs(self.obs.clone());
        }

        // Checkpointing: the directory must exist (or be creatable) and be
        // writable *now*, not at the first pass boundary mid-crawl.
        let checkpoint = match self.checkpoint {
            None => None,
            Some((dir, every)) => {
                if !(every > 0.0 && every.is_finite()) {
                    return Err(WebEvoError::invalid(format!(
                        "snapshot cadence must be positive, got {every}"
                    )));
                }
                probe_writable(&dir)?;
                Some(CheckpointConfig::new(dir, every))
            }
        };

        let fetcher = match self.fetcher {
            Some(f) => SessionFetcher::Borrowed(f),
            None => SessionFetcher::Owned(SimFetcher::new(universe)),
        };
        Ok(CrawlSession {
            engine,
            universe,
            fetcher,
            hook: self.hook,
            checkpoint,
            checkpointer: None,
            scope: self.scope,
            barrier_snapshots: false,
            obs: self.obs,
            serve: None,
            view_publisher: None,
        })
    }
}

fn validate_incremental(config: &IncrementalConfig) -> Result<(), WebEvoError> {
    if config.capacity == 0 {
        return Err(WebEvoError::invalid("collection capacity must be positive"));
    }
    for (value, what) in [
        (config.crawl_rate_per_day, "crawl rate (fetches/day)"),
        (config.ranking_interval_days, "ranking interval"),
        (config.sample_interval_days, "sample interval"),
    ] {
        if !(value > 0.0 && value.is_finite()) {
            return Err(WebEvoError::invalid(format!(
                "{what} must be positive and finite, got {value}"
            )));
        }
    }
    Ok(())
}

fn validate_periodic(config: &PeriodicConfig) -> Result<(), WebEvoError> {
    if config.capacity == 0 {
        return Err(WebEvoError::invalid("collection capacity must be positive"));
    }
    for (value, what) in [
        (config.cycle_days, "cycle length"),
        (config.window_days, "batch window"),
        (config.sample_interval_days, "sample interval"),
    ] {
        if !(value > 0.0 && value.is_finite()) {
            return Err(WebEvoError::invalid(format!(
                "{what} must be positive and finite, got {value}"
            )));
        }
    }
    if config.window_days > config.cycle_days {
        return Err(WebEvoError::invalid(format!(
            "batch window ({} days) cannot exceed the cycle ({} days)",
            config.window_days, config.cycle_days
        )));
    }
    Ok(())
}

/// Create-and-probe: the checkpoint directory must accept writes before
/// the crawl starts.
fn probe_writable(dir: &Path) -> Result<(), WebEvoError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        WebEvoError::invalid(format!("checkpoint dir {dir:?} cannot be created: {e}"))
    })?;
    let probe = dir.join(".webevo-write-probe");
    std::fs::write(&probe, b"probe")
        .map_err(|e| WebEvoError::invalid(format!("checkpoint dir {dir:?} is not writable: {e}")))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// A configured crawl over one universe with one engine. Built by
/// [`CrawlSession::builder`]; see the module docs.
pub struct CrawlSession<'a> {
    engine: Box<dyn CrawlEngine + Send>,
    universe: &'a WebUniverse,
    fetcher: SessionFetcher<'a>,
    hook: Option<&'a mut (dyn CrawlHook + Send)>,
    checkpoint: Option<CheckpointConfig>,
    checkpointer: Option<Checkpointer>,
    scope: Option<ShardScope>,
    /// Fleet mode: cadence snapshots happen only through
    /// [`CrawlSession::snapshot_if_due`] at exchange barriers, never at
    /// pass boundaries mid-leg (see
    /// [`Checkpointer::snapshot_at_barriers_only`]).
    barrier_snapshots: bool,
    /// The observability sink shared by the engine and the checkpointer
    /// (a noop unless [`CrawlSessionBuilder::obs`] installed one).
    obs: ObsSink,
    /// The serving attachment, once [`CrawlSession::serve`] created one.
    /// Held so repeated `serve()` calls share one epoch lineage.
    serve: Option<ServeHandle>,
    /// Factory for the engine's boundary view publisher, re-invoked after
    /// [`CrawlSession::adopt`] replaces the engine — serving survives
    /// recovery the same way observability does.
    view_publisher: Option<Box<dyn Fn() -> Box<dyn ViewPublisher> + Send>>,
}

impl<'a> CrawlSession<'a> {
    /// Start building a session.
    pub fn builder() -> CrawlSessionBuilder<'a> {
        CrawlSessionBuilder::new()
    }

    /// Run the crawl from day 0 to day `days` (or continue a previous
    /// [`CrawlSession::run`] of this session to a later horizon). With
    /// checkpointing configured, the first call starts a fresh snapshot
    /// lineage in the checkpoint directory.
    pub fn run(&mut self, days: f64) -> Result<&CrawlMetrics, WebEvoError> {
        if self.checkpointer.is_none() {
            if let Some(config) = self.checkpoint.clone() {
                // The lineage opens with a base snapshot of the state the
                // run starts from, so a kill before the first cadence
                // snapshot still recovers (base + whole WAL).
                let initial = self.export_state();
                let mut ckpt = Checkpointer::create(config.clone(), &initial).map_err(|e| {
                    WebEvoError::invalid(format!(
                        "checkpoint dir {:?} is not writable: {e}",
                        config.dir
                    ))
                })?;
                if self.barrier_snapshots {
                    ckpt.snapshot_at_barriers_only();
                }
                if self.obs.enabled() {
                    ckpt.set_obs(self.obs.clone());
                }
                self.checkpointer = Some(ckpt);
            }
        }
        self.drive(days)
    }

    /// Recover from the checkpoint directory and continue to day `days`:
    /// decode the newest snapshot, rebuild the engine, restore the
    /// fetcher's replay state, re-apply the committed WAL tail, start a
    /// fresh checkpoint lineage over the recovered state, and drive on.
    ///
    /// Typed failure modes: no checkpointing configured, nothing to
    /// resume (no snapshot on disk), a corrupt snapshot, or a snapshot
    /// written by a different engine kind than the session was built for.
    /// A worker-count difference within the threaded family is not an
    /// error: the snapshot's count wins, preserving the deterministic
    /// schedule.
    ///
    /// If `days` does not lie beyond the recovered clock, the session
    /// simply holds the recovered state (inspect it via
    /// [`CrawlSession::metrics`] and friends).
    pub fn resume(&mut self, days: f64) -> Result<&CrawlMetrics, WebEvoError> {
        let config = self.checkpoint.clone().ok_or_else(|| {
            WebEvoError::InvalidState(
                "resume requires .checkpoint(dir, every) on the builder".into(),
            )
        })?;
        let recovered = {
            let _span = self.obs.span(Stage::SnapshotDecode, LogicalClock::new(0.0, 0));
            recover(&config.dir)
                .map_err(|e| {
                    WebEvoError::InvalidState(format!(
                        "checkpoint dir {:?} cannot be recovered: {e}",
                        config.dir
                    ))
                })?
                .ok_or_else(|| {
                    WebEvoError::InvalidState(format!(
                        "nothing to resume: no snapshot in {:?} (run() first)",
                        config.dir
                    ))
                })?
        };
        self.adopt(recovered)?;
        if days > self.engine.clock().t {
            self.drive(days)
        } else {
            Ok(self.engine.metrics())
        }
    }

    /// Install a recovered checkpoint into this session: validate it
    /// against the session's configuration, rebuild the engine, restore
    /// the fetcher's replay state, re-apply the committed WAL tail, and
    /// start a fresh checkpoint lineage over the recovered state. The
    /// engine afterwards sits at the last committed boundary; no driving
    /// happens. `FleetSession` recovers shards itself (it aligns their
    /// exchange counters first) and adopts each one through this.
    pub(crate) fn adopt(&mut self, recovered: Recovered) -> Result<(), WebEvoError> {
        let config = self.checkpoint.clone().ok_or_else(|| {
            WebEvoError::InvalidState(
                "adopting a recovered state requires .checkpoint(dir, every) on the builder"
                    .into(),
            )
        })?;
        if !recovered.state.engine.same_family(&self.engine.kind()) {
            return Err(WebEvoError::InvalidState(format!(
                "checkpoint in {:?} was written by the {} engine, but this session is \
                 configured for the {} engine",
                config.dir,
                recovered.state.engine.name(),
                self.engine.kind().name()
            )));
        }
        if let Some(scope) = self.scope {
            if recovered.state.routing.scope != Some(scope) {
                return Err(WebEvoError::InvalidState(format!(
                    "checkpoint in {:?} was written under a different shard scope than \
                     this session was built with",
                    config.dir
                )));
            }
        }
        let (engine, fetcher_state) = restore(recovered.state)?;
        self.engine = engine;
        if self.obs.enabled() {
            self.engine.set_obs(self.obs.clone());
        }
        if let Some(factory) = &self.view_publisher {
            self.engine.set_view_publisher(factory());
        }
        if let Some(state) = fetcher_state {
            self.fetcher.get().restore_state(state);
        }
        self.engine
            .replay(self.universe, self.fetcher.get(), &recovered.wal)?;
        // Re-snapshot the recovered state: the directory again holds one
        // consistent lineage and the old WAL is retired.
        let mut state = self.engine.export_state();
        if self.engine.uses_external_fetcher() {
            state.fetcher = self.fetcher.get().export_state();
        }
        let mut ckpt = Checkpointer::continue_from(config.clone(), &state).map_err(|e| {
            WebEvoError::invalid(format!(
                "checkpoint dir {:?} is not writable: {e}",
                config.dir
            ))
        })?;
        if self.barrier_snapshots {
            ckpt.snapshot_at_barriers_only();
        }
        if self.obs.enabled() {
            ckpt.set_obs(self.obs.clone());
        }
        self.checkpointer = Some(ckpt);
        Ok(())
    }

    /// Switch this session into the fleet's snapshot discipline: cadence
    /// snapshots fire only through [`CrawlSession::snapshot_if_due`] at
    /// exchange barriers, so a snapshot never absorbs a link exchange a
    /// peer shard still holds only as a trailing WAL record.
    pub(crate) fn snapshot_at_barriers_only(&mut self) {
        self.barrier_snapshots = true;
        if let Some(ckpt) = &mut self.checkpointer {
            ckpt.snapshot_at_barriers_only();
        }
    }

    /// Flush the buffered leg and take the cadence snapshot if one is due,
    /// with the engine's *current* (pre-injection) state. The fleet calls
    /// this at every exchange barrier, right before delivering the routed
    /// batches.
    pub(crate) fn snapshot_if_due(&mut self) -> Result<(), WebEvoError> {
        if self.checkpointer.is_none() {
            return Ok(());
        }
        let t = self.engine.clock().t;
        let state = self.export_state();
        let ckpt = self.checkpointer.as_mut().expect("checked above");
        ckpt.barrier_snapshot(t, &state).map_err(|e| {
            WebEvoError::InvalidState(format!("barrier snapshot failed: {e}"))
        })
    }

    /// Attach the serving layer: at every pass/cycle boundary the engine
    /// publishes an immutable epoch-numbered
    /// [`CollectionView`](webevo_serve::CollectionView), and the returned
    /// [`QueryService`] answers concurrent queries against the latest one
    /// — from any number of reader threads, without ever blocking the
    /// crawl. Before the first boundary, readers see the empty epoch-0
    /// view. Serving is write-only and free: a served run's checkpoints
    /// and metrics are byte-identical to an unserved run's
    /// (`tests/determinism.rs` pins this).
    ///
    /// Repeated calls share one epoch lineage, and the attachment
    /// survives [`CrawlSession::resume`] — epochs keep counting across a
    /// recovery. With [`CrawlSessionBuilder::obs`] configured, the
    /// publisher records `serve_epoch`/`serve_view_pages` gauges and the
    /// service records `serve_query_us` latency histograms.
    pub fn serve(&mut self) -> QueryService {
        let handle = match &self.serve {
            Some(handle) => handle.clone(),
            None => {
                let handle = ServeHandle::new(self.obs.clone());
                self.serve = Some(handle.clone());
                let factory = handle.clone();
                self.install_view_publisher(Box::new(move || factory.publisher()));
                handle
            }
        };
        handle.service()
    }

    /// Install a boundary view-publisher factory on the engine, keeping
    /// it for re-installation whenever `adopt()` rebuilds the engine.
    /// The fleet uses this directly to stage per-shard views into its
    /// merge collector.
    pub(crate) fn install_view_publisher(
        &mut self,
        factory: Box<dyn Fn() -> Box<dyn ViewPublisher> + Send>,
    ) {
        self.engine.set_view_publisher(factory());
        self.view_publisher = Some(factory);
    }

    /// The engine's routing state (shard scope, outbox, applied-exchange
    /// counter), when the engine supports routing.
    pub fn routing(&self) -> Option<&RoutingState> {
        self.engine.routing()
    }

    /// Deliver one exchange's routed links into the engine (see
    /// [`CrawlEngine::inject_links`]) and log the applied batch to the
    /// write-ahead log, so a kill-and-resume replays the exchange exactly.
    /// Call [`CrawlSession::sync`] afterwards to commit the log.
    pub fn inject_routed(&mut self, links: Vec<RoutedLink>) -> Result<RoutedBatch, WebEvoError> {
        let batch = self.engine.inject_links(links)?;
        if let Some(ckpt) = &mut self.checkpointer {
            ckpt.append_routed(&batch);
        }
        Ok(batch)
    }

    /// Record the closing metrics sample a live drive ending at `t` would
    /// have recorded, without advancing the engine (see
    /// [`CrawlEngine::close_sample`]). The fleet coordinator calls this
    /// when a recovered shard's replayed clock already sits at a barrier:
    /// the interrupted process closed that drive with a sample at exactly
    /// `t`, which no logged event reconstructs. Idempotent.
    pub fn close_sample(&mut self, t: f64) {
        self.engine.close_sample(self.universe, t);
    }

    /// Commit all buffered write-ahead-log events to disk without waiting
    /// for the next pass boundary. The fleet coordinator calls this on
    /// every shard after an exchange so the delivered batches are durable
    /// before any shard crawls past the barrier.
    pub fn sync(&mut self) -> Result<(), WebEvoError> {
        match &mut self.checkpointer {
            Some(ckpt) => ckpt.flush().map_err(|e| {
                WebEvoError::InvalidState(format!("write-ahead log flush failed: {e}"))
            }),
            None => Ok(()),
        }
    }

    /// Advance the engine under the composed (user + checkpoint) hook.
    fn drive(&mut self, days: f64) -> Result<&CrawlMetrics, WebEvoError> {
        let universe = self.universe;
        let fetcher = match &mut self.fetcher {
            SessionFetcher::Borrowed(f) => &mut **f,
            SessionFetcher::Owned(f) => f as &mut dyn Fetcher,
        };
        let mut noop = NoopHook;
        match (&mut self.hook, &mut self.checkpointer) {
            (Some(user), Some(ckpt)) => {
                let mut pair = PairHook::new(*user, ckpt);
                self.engine.drive(universe, fetcher, &mut pair, days)
            }
            (Some(user), None) => self.engine.drive(universe, fetcher, *user, days),
            (None, Some(ckpt)) => self.engine.drive(universe, fetcher, ckpt, days),
            (None, None) => self.engine.drive(universe, fetcher, &mut noop, days),
        }
    }

    /// The engine kind this session runs — after a `resume()`, the
    /// restored engine's kind (e.g. the snapshot's worker count, which
    /// wins over the builder's within the threaded family).
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// The engine's discrete-event clock.
    pub fn clock(&self) -> EngineClock {
        self.engine.clock()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &CrawlMetrics {
        self.engine.metrics()
    }

    /// The Figure 12 collection, when the engine maintains one (`None`
    /// for the periodic engine).
    pub fn collection(&self) -> Option<&Collection> {
        self.engine.collection()
    }

    /// Pages currently visible to users.
    pub fn collection_len(&self) -> usize {
        self.engine.collection_len()
    }

    /// Completed refinement passes (ranking passes, applied rankings, or
    /// shadow swaps, depending on the engine).
    pub fn passes(&self) -> u64 {
        self.engine.passes()
    }

    /// Collection quality against ground-truth PageRank (see
    /// [`webevo_core::collection_quality`]); `None` for the periodic
    /// engine.
    pub fn quality(&self, t: f64) -> Option<f64> {
        self.engine
            .collection()
            .map(|c| webevo_core::collection_quality(c, self.universe, t))
    }

    /// Durability counters, when checkpointing is active.
    pub fn checkpoint_stats(&self) -> Option<CheckpointStats> {
        self.checkpointer.as_ref().map(|c| c.stats())
    }

    /// Export the full engine state (with the fetcher's replay state
    /// merged in, for engines that crawl through the session fetcher).
    pub fn export_state(&mut self) -> webevo_core::CrawlerState {
        let mut state = self.engine.export_state();
        if self.engine.uses_external_fetcher() {
            state.fetcher = self.fetcher.get().export_state();
        }
        state
    }

    /// Direct access to the engine, for trait-level operations the
    /// session does not wrap.
    pub fn engine(&self) -> &dyn CrawlEngine {
        &*self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::UniverseConfig;

    fn universe(seed: u64) -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(seed))
    }

    #[test]
    fn default_fetcher_is_supplied() {
        let u = universe(31);
        let mut session = CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .budget(CrawlBudget::paper_monthly(30).with_cycle_days(5.0))
            .universe(&u)
            .build()
            .expect("valid session");
        let metrics = session.run(10.0).expect("runs");
        assert!(metrics.fetches > 0);
        assert!(session.quality(10.0).is_some());
    }

    #[test]
    fn periodic_session_reports_swaps_as_passes() {
        let u = universe(32);
        let mut session = CrawlSession::builder()
            .engine(EngineKind::Periodic)
            .budget(CrawlBudget::paper_monthly(40).with_cycle_days(10.0))
            .universe(&u)
            .build()
            .expect("valid session");
        session.run(25.0).expect("runs");
        assert_eq!(session.passes(), 3, "day 25 is mid-window of cycle 3");
        assert!(session.collection().is_none());
        assert!(session.collection_len() > 0);
        assert!(session.quality(25.0).is_none());
    }

    #[test]
    fn run_then_longer_run_continues() {
        let u = universe(33);
        let mut session = CrawlSession::builder()
            .engine(EngineKind::Threaded { workers: 2 })
            .budget(CrawlBudget::paper_monthly(30).with_cycle_days(6.0))
            .universe(&u)
            .build()
            .expect("valid session");
        let first = session.run(10.0).expect("runs").fetches;
        let second = session.run(20.0).expect("continues").fetches;
        assert!(second > first);
    }
}
