//! Durable crawl state: snapshots, a write-ahead log, and the
//! [`Checkpointer`] that drives both from engine pass boundaries.
//!
//! §5 of the paper defines the incremental crawler as a process that runs
//! *continuously*, maintaining the collection and its change histories
//! indefinitely. In production that means crawl state must survive process
//! restarts: the collection checksums, the per-page change histories
//! feeding the frequency estimators, the `CollUrls` ordering, the
//! discovered-URL set — all of it. This crate is that durability layer,
//! deliberately kept *off* the fetch hot path (mirroring §5.3's separation
//! of periodic refinement from the crawl loop):
//!
//! * per-fetch deltas are buffered in memory via
//!   [`webevo_core::CrawlHook::on_fetch`] — no I/O per fetch;
//! * at each RankingModule pass boundary the buffer is flushed to the
//!   write-ahead log in one append, and every
//!   [`CheckpointConfig::snapshot_every_days`] simulated days a full
//!   snapshot is written and the log reset.
//!
//! Recovery loads `snapshot + WAL tail` and replays the tail through the
//! engine's own state transitions, landing bit-identically on the state at
//! the last flushed boundary; driving the engine onward then continues the
//! crawl as if the crash never happened (`tests/determinism.rs` pins this
//! end to end).
//!
//! Applications do not wire any of this by hand: the [`CrawlSession`]
//! builder in [`session`] is the supported entry point — engine choice,
//! budget, checkpointing, and recovery in one validated API. For
//! horizontal scale-out, the [`FleetSession`] builder in [`fleet`] runs N
//! site-partitioned `CrawlSession`s on scoped threads — each shard with
//! its own engine, site-filtered fetcher, and checkpoint directory under
//! a fleet-level manifest — and merges their metrics deterministically.
//!
//! # Snapshot format (version 3, binary)
//!
//! A snapshot is a one-line text header followed by a binary payload:
//!
//! ```text
//! WEBEVO-SNAPSHOT 3 <fnv64 of payload, 16 hex digits>
//! <payload: the CrawlerState in the webevo-types binary wire format>
//! ```
//!
//! The header carries the format **version** (decoders reject versions
//! they do not understand, so the layout can evolve) and a checksum over
//! the payload bytes (a partially written or bit-rotted snapshot is
//! detected, never half-loaded). The payload uses
//! [`webevo_types::BinEncode`]: length-prefixed fields, varint integers,
//! and floats as raw IEEE-754 bit patterns — bitwise round-trips by
//! construction, including the queue's ±∞ due-time lane. Snapshots are
//! written to a temporary file and atomically renamed into place, so a
//! crash mid-write leaves the previous snapshot intact.
//!
//! Version-2 snapshots (the same logical layout as one line of JSON) are
//! still decoded: [`decode_snapshot`] sniffs the header version, so a
//! checkpoint directory written by an earlier build resumes unchanged
//! (pinned by the migration fixture test in this crate).
//!
//! # WAL format (version 2, binary)
//!
//! The write-ahead log is a text header line followed by binary frames:
//!
//! ```text
//! WEBEVO-WAL 2
//! R <u32 LE payload len> <fnv64 LE of payload> <payload: FetchRecord, binary>
//! R ...
//! X <u32 LE payload len> <fnv64 LE of payload> <payload: RoutedBatch, binary>
//! C <u32 LE payload len> <fnv64 LE of payload> <payload: varint seq of the last record>
//! ```
//!
//! `R` frames are fetch records; an `X` frame is a **routed batch** — the
//! cross-shard links a fleet exchange barrier delivered into this shard's
//! frontier, logged so single-shard recovery replays the exchange exactly
//! (see [`fleet`]); a `C` frame is a **commit marker** written at each
//! pass-boundary flush. Readers trust records only up to
//! the last valid commit marker: a torn tail — a half-written frame, a
//! frame whose checksum fails, or records flushed without their commit —
//! is discarded rather than mis-parsed, which keeps recovery aligned with
//! pass boundaries (the only states the engines can resume from).
//! Records carry the engine's fetch sequence number; recovery skips those
//! already folded into the snapshot (covering the crash window between a
//! snapshot rename and the log reset that follows it). Version-1 logs
//! (JSON lines) are still read for migration. The writer performs one
//! `sync_data` per pass boundary and none per record; see [`wal`] for the
//! full fsync contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod fleet;
pub mod session;
pub mod wal;

pub use checkpoint::{
    recover, CheckpointConfig, CheckpointStats, Checkpointer, Recovered, SNAPSHOT_FILE, WAL_FILE,
};
pub use codec::{decode_snapshot, encode_snapshot, encode_snapshot_json, fnv64, StoreError};
pub use fleet::{
    read_manifest, shard_dir_name, FleetManifest, FleetMetrics, FleetSession,
    FleetSessionBuilder, ShardReport, MANIFEST_FILE,
};
pub use session::{CrawlSession, CrawlSessionBuilder};
pub use wal::{read_wal, WalWriter};
