//! The append-only write-ahead log. See the crate docs for the frame
//! layout and torn-tail semantics.
//!
//! # Fsync contract
//!
//! The WAL performs exactly **one `sync_data` per pass boundary** — the
//! single [`WalWriter::append_committed`] call that lands a whole batch
//! plus its commit marker in one buffered write — and **none per record**:
//! records are buffered in memory by the [`crate::Checkpointer`] between
//! boundaries, so the fetch hot path never touches the file system.
//! [`WalWriter::create`] and [`WalWriter::reset`] also sync once after
//! writing the header, so an empty log is durable before any crawl work
//! depends on it. All writes — header, batches, resets — go through the
//! writer's single buffered handle; nothing reopens the file behind it.

use crate::codec::fnv64;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use webevo_core::{FetchRecord, RoutedBatch, WalEvent};
use webevo_types::binio::{put_var_u64, BinDecode, BinEncode, BinReader};

/// Header line opening every version-2 (binary) WAL file.
pub const WAL_HEADER: &str = "WEBEVO-WAL 2";
/// Header line of the legacy version-1 (JSON lines) WAL, still read for
/// migration.
pub const WAL_HEADER_V1: &str = "WEBEVO-WAL 1";

/// Frame tag: one fetch record.
const TAG_RECORD: u8 = b'R';
/// Frame tag: one routed-link batch delivered by the fleet exchange
/// (payload: a `RoutedBatch`). Version-2 logs written before the routing
/// era simply never contain this tag; readers of *this* build handle both.
const TAG_ROUTED: u8 = b'X';
/// Frame tag: a commit marker naming the batch it commits.
const TAG_COMMIT: u8 = b'C';
/// Bytes of frame overhead before the payload: tag + u32 length + fnv64.
const FRAME_HEAD: usize = 1 + 4 + 8;

/// Appends framed records and commit markers to a WAL file. One
/// [`WalWriter::append_committed`] call per pass boundary writes the whole
/// buffered batch plus its commit marker in a single buffered write and
/// one fsync — the only durable I/O the crawl ever waits on (see the
/// module docs for the full fsync contract).
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// Committed batches appended (one per pass boundary).
    appends: u64,
    /// Payload bytes appended across all batches (frames included).
    bytes_appended: u64,
    /// `sync_data` calls issued over this writer's lifetime — the
    /// observable face of the module-level fsync contract: one per
    /// `create`/`reset` (durable header) plus exactly one per
    /// `append_committed`, never one per record.
    fsyncs: u64,
}

/// Truncate (or create) the log file and write a durable header through a
/// fresh buffered writer — the one shared open path for
/// [`WalWriter::create`] and [`WalWriter::reset`].
fn start_log(path: &Path) -> io::Result<BufWriter<File>> {
    let mut file = BufWriter::new(File::create(path)?);
    writeln!(file, "{WAL_HEADER}")?;
    file.flush()?;
    file.get_ref().sync_data()?;
    Ok(file)
}

impl WalWriter {
    /// Create (or truncate) the WAL at `path` and write the header.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        Ok(WalWriter {
            path: path.to_path_buf(),
            file: start_log(path)?,
            appends: 0,
            bytes_appended: 0,
            fsyncs: 1, // the durable header write
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Committed batches appended so far (one per pass boundary).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total bytes appended by [`WalWriter::append_committed`] calls.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// `sync_data` calls issued by this writer (see the fsync contract in
    /// the module docs; `tests` pin one sync per boundary, none per
    /// record).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Append a batch of events followed by its commit marker, as one
    /// write, then fsync (the per-boundary sync of the module-level
    /// contract). Readers only surface events whose commit marker landed,
    /// so a crash mid-append — process *or* machine — tears at worst into
    /// the discarded region. Returns the bytes appended (frames included),
    /// which the checkpoint layer feeds into the observability registry.
    pub fn append_committed(&mut self, events: &[WalEvent], last_seq: u64) -> io::Result<u64> {
        let mut chunk: Vec<u8> = Vec::with_capacity(events.len() * 96 + FRAME_HEAD);
        let mut payload: Vec<u8> = Vec::with_capacity(96);
        for event in events {
            payload.clear();
            match event {
                WalEvent::Fetch(record) => {
                    record.bin_encode(&mut payload);
                    push_frame(&mut chunk, TAG_RECORD, &payload);
                }
                WalEvent::Routed(batch) => {
                    batch.bin_encode(&mut payload);
                    push_frame(&mut chunk, TAG_ROUTED, &payload);
                }
            }
        }
        payload.clear();
        put_var_u64(&mut payload, last_seq);
        push_frame(&mut chunk, TAG_COMMIT, &payload);
        self.file.write_all(&chunk)?;
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.appends += 1;
        self.bytes_appended += chunk.len() as u64;
        self.fsyncs += 1;
        Ok(chunk.len() as u64)
    }

    /// Truncate back to an empty (header-only) log — called right after a
    /// snapshot subsumes everything logged so far. Re-runs the same
    /// buffered open path as [`WalWriter::create`].
    pub fn reset(&mut self) -> io::Result<()> {
        self.file = start_log(&self.path)?;
        self.fsyncs += 1;
        Ok(())
    }
}

/// Append one `tag | u32 payload length | fnv64(payload) | payload` frame.
fn push_frame(chunk: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    chunk.push(tag);
    chunk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    chunk.extend_from_slice(&fnv64(payload).to_le_bytes());
    chunk.extend_from_slice(payload);
}

/// Read every *committed* event from a WAL file: events after the last
/// valid commit marker — including a torn final frame, a frame whose
/// checksum fails, or a batch whose commit never landed — are discarded.
/// A missing file reads as empty (no log yet). Both the binary version-2
/// framing and the legacy version-1 JSON lines are understood; the header
/// line picks the parser (v1 predates routing, so its lines are all
/// fetches).
pub fn read_wal(path: &Path) -> io::Result<Vec<WalEvent>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    // The header is a complete text line in both versions; without one
    // (torn header write) there are no trustworthy records.
    let Some(newline) = bytes.iter().position(|&b| b == b'\n') else {
        return Ok(Vec::new());
    };
    let (header, body) = (&bytes[..newline], &bytes[newline + 1..]);
    if header == WAL_HEADER.as_bytes() {
        Ok(read_binary_frames(body))
    } else if header == WAL_HEADER_V1.as_bytes() {
        Ok(read_v1_lines(body))
    } else {
        Ok(Vec::new())
    }
}

/// Parse the version-2 binary frame stream.
fn read_binary_frames(body: &[u8]) -> Vec<WalEvent> {
    let mut committed: Vec<WalEvent> = Vec::new();
    let mut pending: Vec<WalEvent> = Vec::new();
    let mut pos = 0usize;
    while body.len() - pos >= FRAME_HEAD {
        let tag = body[pos];
        let len = u32::from_le_bytes(body[pos + 1..pos + 5].try_into().expect("4 bytes"))
            as usize;
        let checksum =
            u64::from_le_bytes(body[pos + 5..pos + 13].try_into().expect("8 bytes"));
        let Some(payload) = body.get(pos + FRAME_HEAD..pos + FRAME_HEAD + len) else {
            break; // torn tail: the final frame's payload never landed
        };
        if fnv64(payload) != checksum {
            break; // corruption: trust nothing at or beyond this point
        }
        let mut reader = BinReader::new(payload);
        match tag {
            TAG_RECORD => {
                let Ok(record) = FetchRecord::bin_decode(&mut reader) else {
                    break;
                };
                if !reader.is_exhausted() {
                    break;
                }
                pending.push(WalEvent::Fetch(record));
            }
            TAG_ROUTED => {
                let Ok(batch) = RoutedBatch::bin_decode(&mut reader) else {
                    break;
                };
                if !reader.is_exhausted() {
                    break;
                }
                pending.push(WalEvent::Routed(batch));
            }
            TAG_COMMIT => {
                let Ok(seq) = u64::bin_decode(&mut reader) else {
                    break;
                };
                if !reader.is_exhausted() {
                    break;
                }
                // The marker names the batch it commits: a contradiction
                // (a stale or spliced marker that happens to checksum) is
                // corruption, same as a failed frame checksum.
                if let Some(last) = pending.last() {
                    if last.seq() != seq {
                        break;
                    }
                }
                committed.append(&mut pending);
            }
            _ => break,
        }
        pos += FRAME_HEAD + len;
    }
    committed
}

/// Parse the legacy version-1 line stream (`R <fnv64> <json>` records and
/// `C <fnv64> <seq>` commit markers).
fn read_v1_lines(body: &[u8]) -> Vec<WalEvent> {
    let mut committed: Vec<WalEvent> = Vec::new();
    let mut pending: Vec<WalEvent> = Vec::new();
    // A torn write can truncate the final line: only lines terminated by
    // `\n` are candidates. `split` leaves either the torn remainder or an
    // empty slice after the last newline — drop it either way.
    let mut complete: Vec<&[u8]> = body.split(|&b| b == b'\n').collect();
    complete.pop();
    for line in complete {
        let Some(parsed) = parse_v1_line(line) else {
            break; // corruption: trust nothing at or beyond this point
        };
        match parsed {
            WalLine::Record(record) => pending.push(WalEvent::Fetch(record)),
            WalLine::Commit(seq) => {
                if let Some(last) = pending.last() {
                    if last.seq() != seq {
                        break;
                    }
                }
                committed.append(&mut pending);
            }
        }
    }
    committed
}

enum WalLine {
    Record(FetchRecord),
    Commit(u64),
}

/// Parse one complete v1 WAL line; `None` marks corruption.
fn parse_v1_line(line: &[u8]) -> Option<WalLine> {
    let text = std::str::from_utf8(line).ok()?;
    let (tag, rest) = text.split_once(' ')?;
    let (checksum, payload) = rest.split_once(' ')?;
    let checksum = u64::from_str_radix(checksum, 16).ok()?;
    if fnv64(payload.as_bytes()) != checksum {
        return None;
    }
    match tag {
        "R" => serde_json::from_str(payload).ok().map(WalLine::Record),
        "C" => payload.parse::<u64>().ok().map(WalLine::Commit),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_core::RoutedLink;
    use webevo_sim::FetchError;
    use webevo_types::{PageId, SiteId, Url};

    fn record(seq: u64) -> FetchRecord {
        FetchRecord {
            seq,
            url: Url::new(SiteId(1), PageId(seq)),
            t: seq as f64 * 0.125,
            result: Err(FetchError::Transient),
        }
    }

    fn fetch(seq: u64) -> WalEvent {
        WalEvent::Fetch(record(seq))
    }

    fn routed(seq: u64) -> WalEvent {
        WalEvent::Routed(RoutedBatch {
            seq,
            t: seq as f64 * 0.25,
            links: vec![RoutedLink {
                seq: seq + 100,
                from: PageId(7),
                url: Url::new(SiteId(2), PageId(seq + 200)),
            }],
        })
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("webevo-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_batches() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1), fetch(2)], 2).unwrap();
        w.append_committed(&[fetch(3)], 3).unwrap();
        let events = read_wal(&path).unwrap();
        assert_eq!(events, vec![fetch(1), fetch(2), fetch(3)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn routed_batches_roundtrip_interleaved() {
        // A fleet shard's log mixes fetches with exchange deliveries; both
        // kinds must survive the trip in order, under one commit marker.
        let path = temp_path("routed");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1), routed(2), fetch(3)], 3).unwrap();
        w.append_committed(&[routed(4)], 4).unwrap();
        let events = read_wal(&path).unwrap();
        assert_eq!(events, vec![fetch(1), routed(2), fetch(3), routed(4)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commit_marker_covers_a_trailing_routed_batch() {
        // The marker names the last *event* seq, fetch or routed alike; a
        // contradicting marker must not commit the batch.
        let path = temp_path("routed-commit");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1), routed(2)], 2).unwrap();
        w.append_committed(&[routed(3)], 99).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(1), routed(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_contract_one_sync_per_boundary_none_per_record() {
        // The module-level contract, pinned: `create` syncs the header
        // once, every `append_committed` — the pass-boundary flush — syncs
        // exactly once no matter how many records it lands, and no
        // per-record path exists at all (records only reach the file
        // inside a boundary batch).
        let path = temp_path("fsync-contract");
        let mut w = WalWriter::create(&path).unwrap();
        assert_eq!(w.fsyncs(), 1, "durable header: one sync at create");
        assert_eq!(w.appends(), 0);
        let bytes = w.append_committed(&[fetch(1), fetch(2), fetch(3)], 3).unwrap();
        assert!(bytes > 0, "append reports the bytes it landed");
        assert_eq!(w.fsyncs(), 2, "three records, ONE boundary, one sync");
        assert_eq!(w.appends(), 1);
        assert_eq!(w.bytes_appended(), bytes);
        let more = w.append_committed(&[fetch(4)], 4).unwrap();
        assert_eq!(w.fsyncs(), 3, "one more boundary, one more sync");
        assert_eq!(w.appends(), 2);
        assert_eq!(w.bytes_appended(), bytes + more);
        w.reset().unwrap();
        assert_eq!(w.fsyncs(), 4, "reset re-syncs the fresh header");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let path = temp_path("uncommitted");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1)], 1).unwrap();
        // Hand-append a record frame with no commit marker: a flush that
        // never completed.
        let mut payload = Vec::new();
        record(2).bin_encode(&mut payload);
        let mut frame = Vec::new();
        push_frame(&mut frame, TAG_RECORD, &payload);
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(&frame)
            .unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_frame_is_discarded() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1)], 1).unwrap();
        w.append_committed(&[fetch(2)], 2).unwrap();
        // Truncate mid-frame: chop the last 10 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_truncation_point_yields_a_committed_prefix() {
        // Torn tails at *any* byte boundary must never surface uncommitted
        // or corrupt records — only a prefix of fully committed batches.
        let path = temp_path("sweep");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1), fetch(2)], 2).unwrap();
        w.append_committed(&[fetch(3)], 3).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let records = read_wal(&path).unwrap();
            assert!(
                records.is_empty()
                    || records == vec![fetch(1), fetch(2)]
                    || records == vec![fetch(1), fetch(2), fetch(3)],
                "cut at {cut} surfaced a non-prefix: {records:?}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_reading() {
        let path = temp_path("corrupt");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1)], 1).unwrap();
        let intact_len = std::fs::read(&path).unwrap().len();
        w.append_committed(&[fetch(2), fetch(3)], 3).unwrap();
        // Flip a byte inside the second batch's first record payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[intact_len + FRAME_HEAD + 2] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        // Batch 1 committed and intact; everything from the corrupt frame
        // on is dropped, commit marker or not.
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commit_marker_must_name_its_batch() {
        let path = temp_path("badcommit");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1)], 1).unwrap();
        // A marker that contradicts the records it claims to commit (valid
        // checksum, wrong seq) must not commit them.
        w.append_committed(&[fetch(2), fetch(3)], 99).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[fetch(1)], 1).unwrap();
        w.reset().unwrap();
        assert!(read_wal(&path).unwrap().is_empty());
        w.append_committed(&[fetch(9)], 9).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(9)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_text_logs_still_read() {
        // A migration log written by the previous build: JSON lines under
        // the v1 header, including an uncommitted tail to discard.
        let path = temp_path("v1");
        let mut text = format!("{WAL_HEADER_V1}\n");
        for r in [record(1), record(2)] {
            let payload = serde_json::to_string(&r).unwrap();
            text.push_str(&format!("R {:016x} {payload}\n", fnv64(payload.as_bytes())));
        }
        text.push_str(&format!("C {:016x} 2\n", fnv64(b"2")));
        let orphan = serde_json::to_string(&record(3)).unwrap();
        text.push_str(&format!("R {:016x} {orphan}\n", fnv64(orphan.as_bytes())));
        std::fs::write(&path, text).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![fetch(1), fetch(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        assert!(read_wal(Path::new("/nonexistent/webevo.wlog")).unwrap().is_empty());
    }

    #[test]
    fn unknown_header_reads_empty() {
        let path = temp_path("unknown");
        std::fs::write(&path, b"WEBEVO-WAL 9\nstuff\n").unwrap();
        assert!(read_wal(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
