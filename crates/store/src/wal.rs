//! The append-only write-ahead log. See the crate docs for the line
//! layout and torn-tail semantics.

use crate::codec::fnv64;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use webevo_core::FetchRecord;

/// Header line opening every WAL file.
pub const WAL_HEADER: &str = "WEBEVO-WAL 1";

/// Appends framed records and commit markers to a WAL file. One
/// [`WalWriter::append_committed`] call per pass boundary writes the whole
/// buffered batch plus its commit marker in a single `write` — the only
/// durable I/O the crawl ever waits on.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
}

impl WalWriter {
    /// Create (or truncate) the WAL at `path` and write the header.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        let mut file = File::create(path)?;
        writeln!(file, "{WAL_HEADER}")?;
        file.sync_data()?;
        Ok(WalWriter { path: path.to_path_buf(), file })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a batch of records followed by its commit marker, as one
    /// write, then fsync. Readers only surface records whose commit marker
    /// landed, so a crash mid-append — process *or* machine — tears at
    /// worst into the discarded region.
    pub fn append_committed(&mut self, records: &[FetchRecord], last_seq: u64) -> io::Result<()> {
        let mut chunk = String::new();
        for record in records {
            let payload = serde_json::to_string(record).expect("fetch records always serialize");
            let checksum = fnv64(payload.as_bytes());
            chunk.push_str(&format!("R {checksum:016x} {payload}\n"));
        }
        let seq_text = last_seq.to_string();
        let checksum = fnv64(seq_text.as_bytes());
        chunk.push_str(&format!("C {checksum:016x} {seq_text}\n"));
        self.file.write_all(chunk.as_bytes())?;
        self.file.sync_data()
    }

    /// Truncate back to an empty (header-only) log — called right after a
    /// snapshot subsumes everything logged so far.
    pub fn reset(&mut self) -> io::Result<()> {
        let mut file = File::create(&self.path)?;
        writeln!(file, "{WAL_HEADER}")?;
        file.sync_data()?;
        self.file = file;
        Ok(())
    }
}

/// Read every *committed* record from a WAL file: records after the last
/// valid commit marker — including a torn final line, a record whose
/// checksum fails, or a batch whose commit never landed — are discarded.
/// A missing file reads as empty (no log yet).
pub fn read_wal(path: &Path) -> io::Result<Vec<FetchRecord>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut committed: Vec<FetchRecord> = Vec::new();
    let mut pending: Vec<FetchRecord> = Vec::new();
    // A torn write can truncate the final line: only lines terminated by
    // `\n` are candidates. `split` leaves either the torn remainder or an
    // empty slice after the last newline — drop it either way.
    let mut complete: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    complete.pop();
    let mut iter = complete.into_iter();
    match iter.next() {
        Some(header) if header == WAL_HEADER.as_bytes() => {}
        // No trustworthy header, no trustworthy records.
        _ => return Ok(Vec::new()),
    }
    for line in iter {
        let Some(parsed) = parse_line(line) else {
            break; // corruption: trust nothing at or beyond this point
        };
        match parsed {
            WalLine::Record(record) => pending.push(record),
            WalLine::Commit(seq) => {
                // The marker names the batch it commits: a contradiction
                // (a stale or spliced marker that happens to checksum) is
                // corruption, same as a failed line checksum.
                if let Some(last) = pending.last() {
                    if last.seq != seq {
                        break;
                    }
                }
                committed.append(&mut pending);
            }
        }
    }
    Ok(committed)
}

enum WalLine {
    Record(FetchRecord),
    Commit(u64),
}

/// Parse one complete WAL line; `None` marks corruption.
fn parse_line(line: &[u8]) -> Option<WalLine> {
    let text = std::str::from_utf8(line).ok()?;
    let (tag, rest) = text.split_once(' ')?;
    let (checksum, payload) = rest.split_once(' ')?;
    let checksum = u64::from_str_radix(checksum, 16).ok()?;
    if fnv64(payload.as_bytes()) != checksum {
        return None;
    }
    match tag {
        "R" => serde_json::from_str(payload).ok().map(WalLine::Record),
        "C" => payload.parse::<u64>().ok().map(WalLine::Commit),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::FetchError;
    use webevo_types::{PageId, SiteId, Url};

    fn record(seq: u64) -> FetchRecord {
        FetchRecord {
            seq,
            url: Url::new(SiteId(1), PageId(seq)),
            t: seq as f64 * 0.125,
            result: Err(FetchError::Transient),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("webevo-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_batches() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[record(1), record(2)], 2).unwrap();
        w.append_committed(&[record(3)], 3).unwrap();
        let records = read_wal(&path).unwrap();
        assert_eq!(records, vec![record(1), record(2), record(3)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let path = temp_path("uncommitted");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[record(1)], 1).unwrap();
        // Hand-append records with no commit marker: a flush that never
        // completed.
        let payload = serde_json::to_string(&record(2)).unwrap();
        let line = format!("R {:016x} {payload}\n", fnv64(payload.as_bytes()));
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(line.as_bytes())
            .unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![record(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_discarded() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[record(1)], 1).unwrap();
        w.append_committed(&[record(2)], 2).unwrap();
        // Truncate mid-record: chop the last 10 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![record(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_reading() {
        let path = temp_path("corrupt");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[record(1)], 1).unwrap();
        w.append_committed(&[record(2), record(3)], 3).unwrap();
        // Flip a byte inside the second batch's first record.
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let offset = text.match_indices("R ").nth(1).unwrap().0 + 30;
        bytes[offset] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        // Batch 1 committed and intact; everything from the corrupt line
        // on is dropped, commit marker or not.
        assert_eq!(read_wal(&path).unwrap(), vec![record(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commit_marker_must_name_its_batch() {
        let path = temp_path("badcommit");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[record(1)], 1).unwrap();
        // A marker that contradicts the records it claims to commit (valid
        // checksum, wrong seq) must not commit them.
        w.append_committed(&[record(2), record(3)], 99).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![record(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut w = WalWriter::create(&path).unwrap();
        w.append_committed(&[record(1)], 1).unwrap();
        w.reset().unwrap();
        assert!(read_wal(&path).unwrap().is_empty());
        w.append_committed(&[record(9)], 9).unwrap();
        assert_eq!(read_wal(&path).unwrap(), vec![record(9)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        assert!(read_wal(Path::new("/nonexistent/webevo.wlog")).unwrap().is_empty());
    }
}
