//! The float-fidelity contract under the snapshot codec.
//!
//! Snapshots flow through the vendored `serde_json`, whose `f64` writer
//! must be *shortest-round-trip*: `encode(decode(x)) == x` bitwise for
//! every finite double, or restoring a checkpoint would silently perturb
//! change-rate estimates, importance scores, and the revisit schedule.
//! These properties pin that guarantee across the whole f64 range —
//! subnormals, `-0.0`, and the extremes included — plus the bit-pattern
//! escape hatch the queue codec uses for the values JSON cannot carry
//! (±∞).

use proptest::prelude::*;

proptest! {
    /// Finite f64 → JSON text → f64 is the identity on bit patterns.
    #[test]
    fn f64_json_roundtrip_is_bitwise_identity(bits in 0u64..u64::MAX) {
        let x = f64::from_bits(bits);
        prop_assume!(x.is_finite());
        let json = serde_json::to_string(&x).expect("finite floats serialize");
        let back: f64 = serde_json::from_str(&json).expect("round-trip parses");
        prop_assert_eq!(
            back.to_bits(),
            x.to_bits(),
            "value {} re-encoded as {} came back as {}", x, json, back
        );
    }

    /// The same identity through a composite value (floats nested in
    /// structure, as in a real snapshot).
    #[test]
    fn nested_f64_roundtrip_is_bitwise_identity(
        raw in prop::collection::vec(0u64..u64::MAX, 1..20),
    ) {
        let xs: Vec<f64> = raw.iter().map(|&b| f64::from_bits(b)).collect();
        prop_assume!(xs.iter().all(|x| x.is_finite()));
        let json = serde_json::to_string(&xs).expect("serializes");
        let back: Vec<f64> = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(back.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The queue codec's bit-pattern encoding is exact for *every* f64,
    /// non-finite included — the immediate-priority lane schedules at −∞.
    #[test]
    fn due_time_bits_encoding_is_total(bits in 0u64..u64::MAX) {
        let x = f64::from_bits(bits);
        let encoded = x.to_bits();
        let decoded = f64::from_bits(encoded);
        prop_assert_eq!(decoded.to_bits(), x.to_bits());
    }
}

#[test]
fn boundary_values_roundtrip_bitwise() {
    for x in [
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::from_bits(1),
        -0.0,
        0.0,
        f64::EPSILON,
        1.0 + f64::EPSILON,
    ] {
        let json = serde_json::to_string(&x).unwrap();
        let back: f64 = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "json={json}");
    }
}
