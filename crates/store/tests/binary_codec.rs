//! Property coverage for the binary snapshot/WAL formats.
//!
//! Three contracts, each probed across random inputs:
//!
//! * **Bit-exact floats** — the binary wire format writes raw IEEE-754
//!   bits, so every `f64` (subnormals, `-0.0`, ±∞, NaN payloads) must
//!   survive, including the revisit queue's `−∞` immediate-priority lane
//!   carried in [`webevo_core::QueueEntry::due_bits`].
//! * **Snapshot round-trips** — `decode(encode(state))` re-encodes to the
//!   exact same bytes for states with arbitrary queue contents.
//! * **Torn binary WAL tails** — truncating a log at *any* byte offset
//!   yields a prefix of fully committed batches, never an error, a panic,
//!   or a phantom record.

use proptest::prelude::*;
use webevo_core::{
    CrawlEngine, FetchRecord, IncrementalConfig, IncrementalCrawler, NoopHook, QueueEntry,
    RoutedBatch, RoutedLink, WalEvent,
};
use webevo_sim::{FetchError, FetchOutcome, SimFetcher, UniverseConfig, WebUniverse};
use webevo_store::{decode_snapshot, encode_snapshot, read_wal, WalWriter};
use webevo_types::binio::{BinDecode, BinEncode, BinReader};
use webevo_types::{Checksum, PageId, SiteId, Url};

/// A small crawled state to graft proptest queue contents onto (built once;
/// proptest closures run many cases).
fn base_state() -> webevo_core::CrawlerState {
    let u = WebUniverse::generate(UniverseConfig::test_scale(17));
    let mut crawler = IncrementalCrawler::new(IncrementalConfig {
        capacity: 20,
        crawl_rate_per_day: 5.0,
        ..IncrementalConfig::monthly(20)
    });
    let mut fetcher = SimFetcher::new(&u);
    crawler.drive(&u, &mut fetcher, &mut NoopHook, 6.0).expect("drive");
    crawler.export_state()
}

fn record_from(seq: u64, site: u32, page: u64, t_bits: u64, ok: bool) -> FetchRecord {
    let t = f64::from_bits(t_bits);
    let url = Url::new(SiteId(site), PageId(page));
    let result = if ok {
        Ok(FetchOutcome {
            checksum: Checksum(t_bits ^ page),
            links: vec![Url::new(SiteId(site), PageId(page + 1))],
            last_modified: (page % 2 == 0).then_some(t),
        })
    } else {
        Err(match page % 3 {
            0 => FetchError::NotFound,
            1 => FetchError::Transient,
            _ => FetchError::RateLimited { retry_at: t },
        })
    };
    FetchRecord { seq, url, t, result }
}

proptest! {
    /// Binary f64 encoding is the identity on bit patterns — every lane,
    /// non-finite included.
    #[test]
    fn f64_binary_roundtrip_is_total(bits in 0u64..u64::MAX) {
        let x = f64::from_bits(bits);
        let mut out = Vec::new();
        x.bin_encode(&mut out);
        let back = f64::bin_decode(&mut BinReader::new(&out)).expect("decodes");
        prop_assert_eq!(back.to_bits(), bits);
    }

    /// Queue entries — the IEEE-754 bit-pattern due-time lane — survive a
    /// full snapshot encode/decode for arbitrary bit patterns, and the
    /// re-encoded document is byte-identical.
    #[test]
    fn snapshot_roundtrip_preserves_due_bits(
        lanes in prop::collection::vec((0u64..u64::MAX, 0u64..10_000), 0..40),
    ) {
        let mut state = base_state();
        state.queue = lanes
            .iter()
            .map(|&(due_bits, page)| QueueEntry {
                due_bits,
                url: Url::new(SiteId((page % 97) as u32), PageId(page)),
            })
            .collect();
        state.queued = Vec::new(); // decoupled from the grafted queue
        let doc = encode_snapshot(&state);
        let back = decode_snapshot(&doc).expect("clean snapshot decodes");
        prop_assert_eq!(back.queue.len(), state.queue.len());
        for (a, b) in state.queue.iter().zip(back.queue.iter()) {
            prop_assert_eq!(a.due_bits, b.due_bits);
            prop_assert_eq!(a.url, b.url);
        }
        prop_assert_eq!(encode_snapshot(&back), doc);
    }

    /// WAL events of every shape — fetch records of every result kind,
    /// interleaved with routed batches carrying arbitrary link payloads —
    /// round-trip through the binary framing.
    #[test]
    fn wal_roundtrips_arbitrary_events(
        specs in prop::collection::vec(
            (0u32..50, 0u64..1000, 0u64..u64::MAX, 0u8..3, 0usize..4),
            1..30,
        ),
    ) {
        let mut seq = 0u64;
        let events: Vec<WalEvent> = specs
            .iter()
            .map(|&(site, page, t_bits, kind, links)| {
                seq += 1;
                if kind == 2 {
                    // A routed batch delivered at this sequence number.
                    WalEvent::Routed(RoutedBatch {
                        seq,
                        t: f64::from_bits(t_bits),
                        links: (0..links)
                            .map(|i| RoutedLink {
                                seq: seq.saturating_sub(1),
                                from: PageId(page),
                                url: Url::new(SiteId(site), PageId(page + i as u64)),
                            })
                            .collect(),
                    })
                } else {
                    WalEvent::Fetch(record_from(seq, site, page, t_bits, kind == 1))
                }
            })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "webevo-prop-wal-{}-{}.wlog",
            std::process::id(),
            events.len()
        ));
        let mut w = WalWriter::create(&path).expect("temp WAL writable");
        w.append_committed(&events, seq).expect("append");
        let back = read_wal(&path).expect("reads");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back.len(), events.len());
        for (a, b) in events.iter().zip(back.iter()) {
            prop_assert_eq!(a.seq(), b.seq());
            prop_assert_eq!(a.t().to_bits(), b.t().to_bits(), "times must be bit-exact");
            match (a, b) {
                (WalEvent::Fetch(x), WalEvent::Fetch(y)) => {
                    prop_assert_eq!(x.url, y.url);
                    match (&x.result, &y.result) {
                        (Ok(p), Ok(q)) => {
                            prop_assert_eq!(p.checksum, q.checksum);
                            prop_assert_eq!(&p.links, &q.links);
                        }
                        // NaN retry times are bit-preserved but compare
                        // unequal under PartialEq; check the bits.
                        (
                            Err(FetchError::RateLimited { retry_at: p }),
                            Err(FetchError::RateLimited { retry_at: q }),
                        ) => prop_assert_eq!(p.to_bits(), q.to_bits()),
                        (Err(p), Err(q)) => prop_assert_eq!(p, q),
                        _ => prop_assert!(false, "Ok/Err flipped in the WAL"),
                    }
                }
                (WalEvent::Routed(x), WalEvent::Routed(y)) => {
                    prop_assert_eq!(&x.links, &y.links);
                }
                _ => prop_assert!(false, "fetch/routed frame tag flipped in the WAL"),
            }
        }
    }

    /// Truncating a binary WAL at any offset yields a committed-batch
    /// prefix — the torn-tail contract, at every byte boundary proptest
    /// picks.
    #[test]
    fn torn_binary_wal_tail_reads_as_committed_prefix(
        cut_fraction in 0.0f64..1.0,
        batch_sizes in prop::collection::vec(1usize..6, 1..5),
    ) {
        let path = std::env::temp_dir().join(format!(
            "webevo-prop-torn-{}-{:x}.wlog",
            std::process::id(),
            (cut_fraction * 1e9) as u64
        ));
        let mut w = WalWriter::create(&path).expect("temp WAL writable");
        let mut seq = 0u64;
        let mut batch_ends = Vec::new();
        for &size in &batch_sizes {
            let mut events: Vec<WalEvent> = (0..size)
                .map(|_| {
                    seq += 1;
                    WalEvent::Fetch(record_from(
                        seq, 1, seq, (seq as f64 * 0.5).to_bits(), seq % 4 != 0,
                    ))
                })
                .collect();
            // Every other batch closes with a routed record, as a fleet
            // shard's exchange-barrier flush does.
            if batch_ends.len() % 2 == 0 {
                seq += 1;
                events.push(WalEvent::Routed(RoutedBatch {
                    seq,
                    t: seq as f64 * 0.5,
                    links: vec![RoutedLink {
                        seq: seq - 1,
                        from: PageId(seq),
                        url: Url::new(SiteId(2), PageId(seq + 1)),
                    }],
                }));
            }
            w.append_committed(&events, seq).expect("append");
            batch_ends.push(seq);
        }
        let bytes = std::fs::read(&path).expect("readable");
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("writable");
        let back = read_wal(&path).expect("torn log still reads");
        let _ = std::fs::remove_file(&path);
        // The surfaced records must be exactly the first N committed
        // batches for some N: sequential from 1 and ending on a batch end.
        for (i, r) in back.iter().enumerate() {
            prop_assert_eq!(r.seq(), i as u64 + 1, "events must be a sequential prefix");
        }
        let tail_seq = back.last().map(|r| r.seq()).unwrap_or(0);
        prop_assert!(
            tail_seq == 0 || batch_ends.contains(&tail_seq),
            "tail seq {} does not align with a commit boundary {:?}",
            tail_seq,
            batch_ends
        );
    }
}
