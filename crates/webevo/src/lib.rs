//! # webevo
//!
//! A production-quality Rust reproduction of **Cho & Garcia-Molina, "The
//! Evolution of the Web and Implications for an Incremental Crawler"
//! (VLDB 2000)**: the web-evolution measurement study (§2–3), the
//! freshness analysis of crawler design choices (§4), and the incremental
//! crawler architecture (§5) — plus every substrate they need, built from
//! scratch (synthetic evolving web, PageRank/HITS, statistics toolkit,
//! change-frequency estimators, revisit-schedule optimizer).
//!
//! ## Quickstart
//!
//! ```
//! use webevo::prelude::*;
//!
//! // 1. Generate a small synthetic web calibrated to the paper's
//! //    measurements.
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
//!
//! // 2. Run the incremental crawler for 30 simulated days. CrawlSession
//! //    is the one entry point for every engine (periodic, incremental,
//! //    threaded); swap the EngineKind to compare them under the same
//! //    budget.
//! let mut session = CrawlSession::builder()
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(50).with_cycle_days(5.0))
//!     .universe(&universe)
//!     .build()
//!     .expect("a valid session");
//! session.run(30.0).expect("the crawl runs");
//!
//! // 3. Inspect steady-state freshness.
//! let freshness = session.metrics().average_freshness_from(15.0);
//! assert!(freshness > 0.3);
//! ```
//!
//! ## Crate map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`types`] | — | ids, time, domains, checksums |
//! | [`stats`] | §3.4 | sampling, histograms, CIs, goodness-of-fit |
//! | [`graph`] | §2.2, §5 | PageRank (page + site level), HITS |
//! | [`sim`] | §2 | the synthetic evolving web + fetch interface |
//! | [`experiment`] | §2–3 | daily monitor, Figures 2/4/5/6, Table 1 |
//! | [`freshness`] | §4 | freshness/age analytics, Figures 7/8, Table 2 |
//! | [`estimate`] | §5.3 | estimators EP and EB |
//! | [`schedule`] | §4.3 | uniform/proportional/optimal revisit, Figure 9 |
//! | [`core`] | §5 | all three crawl engines behind one `CrawlEngine` trait |
//! | [`store`] | §5 | durable crawl state, the `CrawlSession` entry point, sharded `FleetSession`s |
//! | [`obs`] | — | structured tracing, metrics registry, stage profiling |
//! | [`serve`] | §1, §5 | epoch-swapped query layer serving concurrent readers under a live crawl |
//! | [`analyze`] | — | static-analysis gate: determinism lints, `SCHEMA.lock` drift, panic budgets |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use webevo_analyze as analyze;
pub use webevo_core as core;
pub use webevo_estimate as estimate;
pub use webevo_experiment as experiment;
pub use webevo_freshness as freshness;
pub use webevo_graph as graph;
pub use webevo_obs as obs;
pub use webevo_schedule as schedule;
pub use webevo_serve as serve;
pub use webevo_sim as sim;
pub use webevo_stats as stats;
pub use webevo_store as store;
pub use webevo_types as types;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use webevo_core::{
        collection_quality, AllUrls, Collection, CrawlBudget, CrawlEngine, CrawlHook,
        CrawlMetrics, CrawlerState, EngineConfig, EngineKind, EstimatorKind, FetchRecord,
        IncrementalConfig, IncrementalCrawler, NoopHook, PairHook, PeriodicConfig,
        PeriodicCrawler, RankingConfig, RevisitStrategy, RoutedBatch, RoutedLink,
        RoutingState, ShardScope, ThreadedCrawler, WalEvent,
    };
    pub use webevo_estimate::{
        estimate_ep, estimate_irregular_mle, estimate_naive,
        estimate_regular_bias_corrected, estimate_regular_mle, BayesianEstimator,
        ChangeHistory, FrequencyClass, SitePool,
    };
    pub use webevo_experiment::{
        run_full_experiment, select_sites, DailyMonitor, ExperimentReport, MonitorConfig,
    };
    pub use webevo_freshness::{
        freshness_batch_inplace, freshness_batch_shadow, freshness_periodic,
        freshness_steady_inplace, freshness_steady_shadow, CrawlMode, CrawlPolicy,
        FreshnessSeries, UpdateMode,
    };
    pub use webevo_graph::{hits, pagerank, PageGraph, PageRankConfig};
    pub use webevo_obs::{LogicalClock, MetricsRegistry, ObsSink, SpanRecord, Stage};
    pub use webevo_schedule::{
        evaluate_allocation, optimal_allocation, optimal_frequency_curve,
        proportional_allocation, uniform_allocation, RevisitPolicy,
    };
    pub use webevo_serve::{
        CollectionView, EpochInfo, FleetViewCollector, FreshnessStats, QueryService,
        ServeHandle, SiteRollup, ViewHandle, ViewPage,
    };
    pub use webevo_sim::{
        FetchError, FetchOutcome, Fetcher, FetcherState, Politeness, SimFetcher,
        UniverseConfig, WebUniverse,
    };
    pub use webevo_stats::{
        Histogram, IntervalBin, IntervalHistogram, LifespanBin, LifespanHistogram,
        PoissonProcess, SimRng, Summary, SurvivalCurve,
    };
    pub use webevo_sim::ShardedFetcher;
    pub use webevo_store::{
        recover, CheckpointConfig, Checkpointer, CrawlSession, CrawlSessionBuilder,
        FleetManifest, FleetMetrics, FleetSession, FleetSessionBuilder, Recovered, ShardReport,
    };
    pub use webevo_types::{
        ChangeRate, Checksum, Domain, PageId, ShardFn, ShardId, ShardPlan, SimDuration,
        SimTime, SiteId, Url, WebEvoError,
    };
}
