//! Site selection (§2.2) — Table 1.
//!
//! The paper selected its 270 monitored sites by (1) ranking sites with a
//! modified PageRank over the site hypergraph of a 25M-page snapshot,
//! (2) taking the top 400 as candidates, and (3) keeping the 270 whose
//! webmasters granted permission. We reproduce all three steps: the
//! permission filter becomes a deterministic pseudo-random subsample
//! (permission grants were effectively exogenous to popularity).

use serde::{Deserialize, Serialize};
use webevo_graph::pagerank::PageRankConfig;
use webevo_graph::sitegraph::{rank_sites, site_pagerank, SiteGraph};
use webevo_sim::WebUniverse;
use webevo_stats::SimRng;
use webevo_types::domain::PerDomain;
use webevo_types::SiteId;
#[cfg(test)]
use webevo_types::Domain;

/// The outcome of site selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SiteSelection {
    /// The selected (monitored) sites, in rank order.
    pub selected: Vec<SiteId>,
    /// Table 1: how many selected sites fall in each domain class.
    pub domain_counts: PerDomain<usize>,
    /// Popularity scores of the selected sites (site-level PageRank).
    pub scores: Vec<f64>,
}

impl SiteSelection {
    /// Total selected sites.
    pub fn total(&self) -> usize {
        self.selected.len()
    }
}

/// Run §2.2's selection against a universe snapshot at time `t`: rank all
/// sites by site PageRank, take the top `candidates`, subsample
/// `permitted` of them ("webmaster permission"), and tabulate Table 1.
pub fn select_sites(
    universe: &WebUniverse,
    t: f64,
    candidates: usize,
    permitted: usize,
) -> SiteSelection {
    assert!(permitted <= candidates, "cannot permit more sites than candidates");
    let graph = universe.snapshot_graph(t);
    let site_graph = SiteGraph::from_page_graph(&graph);
    // The paper's own parameterization (d = 0.9 in its formula).
    let scores = site_pagerank(&site_graph, &PageRankConfig::paper_1999())
        .expect("site pagerank converges");
    let ranked = rank_sites(&scores);
    let candidate_pool: Vec<(SiteId, f64)> =
        ranked.into_iter().take(candidates).collect();
    // Permission filter: a deterministic subsample of the candidates.
    let mut rng = SimRng::seed_from_u64(universe.config().seed ^ 0x5e1ec7).fork(permitted as u64);
    let mut indices: Vec<usize> = (0..candidate_pool.len()).collect();
    rng.shuffle(&mut indices);
    let mut chosen: Vec<usize> = indices.into_iter().take(permitted).collect();
    chosen.sort_unstable(); // keep rank order among the permitted
    let selected: Vec<SiteId> = chosen.iter().map(|&i| candidate_pool[i].0).collect();
    let sel_scores: Vec<f64> = chosen.iter().map(|&i| candidate_pool[i].1).collect();
    let mut domain_counts: PerDomain<usize> = PerDomain::default();
    for &s in &selected {
        *domain_counts.get_mut(universe.site(s).domain) += 1;
    }
    SiteSelection { selected, domain_counts, scores: sel_scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::UniverseConfig;

    fn universe() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(8))
    }

    #[test]
    fn selection_is_deterministic() {
        let u = universe();
        let a = select_sites(&u, 0.0, 8, 6);
        let b = select_sites(&u, 0.0, 8, 6);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn counts_match_selection() {
        let u = universe();
        let sel = select_sites(&u, 0.0, 8, 6);
        assert_eq!(sel.total(), 6);
        let total: usize = Domain::ALL.iter().map(|&d| *sel.domain_counts.get(d)).sum();
        assert_eq!(total, 6);
        for &s in &sel.selected {
            assert!(s.index() < u.site_count());
        }
    }

    #[test]
    fn selecting_everything_keeps_everything() {
        let u = universe();
        let n = u.site_count();
        let sel = select_sites(&u, 0.0, n, n);
        assert_eq!(sel.total(), n);
        // With the test config's domain mix (5 com, 3 edu, 1 netorg, 1 gov).
        assert_eq!(*sel.domain_counts.get(Domain::Com), 5);
        assert_eq!(*sel.domain_counts.get(Domain::Edu), 3);
    }

    #[test]
    fn candidates_are_the_most_popular() {
        let u = universe();
        // Selecting all candidates with permission = candidates yields the
        // top-k by popularity; scores must be non-increasing.
        let sel = select_sites(&u, 0.0, 5, 5);
        for w in sel.scores.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "scores must be rank-ordered");
        }
    }

    #[test]
    #[should_panic(expected = "cannot permit")]
    fn rejects_inverted_counts() {
        let u = universe();
        let _ = select_sites(&u, 0.0, 3, 5);
    }
}
