//! Figure 6: verifying the Poisson model.
//!
//! §3.4: *"we select only the pages whose average change intervals are,
//! say, 10 days and plot the distribution of their change intervals. If the
//! pages indeed follow a Poisson process, this graph should be distributed
//! exponentially."* We reproduce the selection, the observed-vs-predicted
//! series (log-scale in the paper), and add a quantitative
//! goodness-of-fit verdict the paper only eyeballs.

use crate::monitor::MonitoringData;
use serde::{Deserialize, Serialize};
use webevo_stats::gof::{chi_square_geometric_fit, figure6_series};
use webevo_stats::GofResult;

/// The Figure 6 data for one interval group.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoissonFitReport {
    /// The target mean interval (10 or 20 days in the paper).
    pub target_interval_days: f64,
    /// Pages whose estimated mean interval fell within the tolerance band.
    pub pages_in_group: usize,
    /// Total change intervals collected from them.
    pub samples: usize,
    /// `(interval_days, observed_fraction, poisson_predicted_fraction)`
    /// rows — the bars and the straight line of Figure 6.
    pub series: Vec<(f64, f64, f64)>,
    /// Chi-square goodness-of-fit verdict against the exponential.
    pub chi_square: GofResult,
}

/// Build the Figure 6 report for pages with estimated mean change interval
/// within `target ± tolerance·target` days.
pub fn poisson_fit_for_interval(
    data: &MonitoringData,
    target_interval_days: f64,
    tolerance: f64,
) -> PoissonFitReport {
    assert!(target_interval_days > 0.0 && tolerance > 0.0);
    let lo = target_interval_days * (1.0 - tolerance);
    let hi = target_interval_days * (1.0 + tolerance);
    let mut intervals: Vec<f64> = Vec::new();
    let mut pages = 0usize;
    for rec in &data.records {
        if let Some(mean) = rec.mean_change_interval() {
            if mean >= lo && mean <= hi {
                pages += 1;
                intervals.extend(rec.change_intervals());
            }
        }
    }
    // Figure 6 plots intervals up to ~8× the mean; 16 bins like the paper's
    // visual granularity.
    let max_days = target_interval_days * 8.0;
    let series = figure6_series(&intervals, max_days, 16);
    // Daily monitoring discretizes intervals to whole days, so the
    // quantitative check uses the geometric law the Poisson model implies
    // for *detected* intervals (see stats::gof).
    let chi_square = chi_square_geometric_fit(&intervals);
    PoissonFitReport {
        target_interval_days,
        pages_in_group: pages,
        samples: intervals.len(),
        series,
        chi_square,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{DailyMonitor, MonitorConfig};
    use webevo_sim::{UniverseConfig, WebUniverse};
    use webevo_types::SiteId;

    fn monitored_data() -> MonitoringData {
        // A bigger universe so the 10-day group is well populated.
        let mut cfg = UniverseConfig::test_scale(31);
        cfg.pages_per_site = 80;
        cfg.window_size = 80;
        cfg.churn = false; // keep pages alive so intervals accumulate
        let u = WebUniverse::generate(cfg);
        let sites: Vec<SiteId> = u.sites().iter().map(|s| s.id).collect();
        DailyMonitor::new(MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 })
            .run(&u, &sites)
    }

    #[test]
    fn ten_day_group_is_roughly_exponential() {
        let data = monitored_data();
        let report = poisson_fit_for_interval(&data, 10.0, 0.3);
        assert!(report.pages_in_group > 5, "pages={}", report.pages_in_group);
        assert!(report.samples > 50, "samples={}", report.samples);
        // The simulated web *is* Poisson, so the fit must not be strongly
        // rejected. Daily granularity discretizes the intervals, so allow
        // a lenient threshold rather than a clean 5% test.
        assert!(
            report.chi_square.p_value > 0.005,
            "p={}",
            report.chi_square.p_value
        );
        // Observed fractions should decay: first bins dominate later ones.
        let obs: Vec<f64> = report.series.iter().map(|r| r.1).collect();
        let head: f64 = obs[..4].iter().sum();
        let tail: f64 = obs[obs.len() - 4..].iter().sum();
        assert!(head > tail * 3.0, "exponential decay: head {head} vs tail {tail}");
    }

    #[test]
    fn prediction_tracks_observation() {
        let data = monitored_data();
        let report = poisson_fit_for_interval(&data, 10.0, 0.3);
        for &(center, obs, pred) in &report.series {
            assert!(
                (obs - pred).abs() < 0.12,
                "bin {center}: obs {obs} vs pred {pred}"
            );
        }
    }

    #[test]
    fn empty_group_is_benign() {
        let data = MonitoringData::from_records(10, vec![]);
        let report = poisson_fit_for_interval(&data, 10.0, 0.2);
        assert_eq!(report.pages_in_group, 0);
        assert_eq!(report.samples, 0);
        assert!(report.series.is_empty());
        assert_eq!(report.chi_square.p_value, 1.0);
    }
}
