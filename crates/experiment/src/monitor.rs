//! The daily active-crawling monitor (§2.1).
//!
//! Every day, for every monitored site, the monitor observes the site's
//! page window and records, per page: presence and checksum. Change
//! detection is checksum comparison between consecutive observations —
//! with all the granularity consequences the paper discusses (at most one
//! detected change per day, Figure 1).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use webevo_sim::{FetchError, Fetcher, SimFetcher, WebUniverse};
use webevo_types::{Checksum, Domain, PageId, SiteId};

/// Monitor parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Number of daily observations (the paper: Feb 17 – Jun 24 1999 ≈ 128).
    pub days: usize,
    /// Probability that an individual page fetch fails transiently that
    /// day (0 for a clean run).
    pub failure_rate: f64,
    /// Time-of-day at which the nightly crawl observes pages, as a day
    /// fraction (the paper crawled at night; any constant works — what
    /// matters is the 1-day cadence).
    pub time_of_day: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 }
    }
}

impl MonitorConfig {
    /// The paper's four-month daily run.
    pub fn paper() -> MonitorConfig {
        MonitorConfig::default()
    }
}

/// Everything the monitor learned about one page.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PageRecord {
    /// The page.
    pub page: PageId,
    /// Its site.
    pub site: SiteId,
    /// Its site's domain class.
    pub domain: Domain,
    /// First day the page was observed (0-based).
    pub first_seen: u32,
    /// Last day the page was observed.
    pub last_seen: u32,
    /// Number of days it was actually observed (≤ span when fetches
    /// failed).
    pub days_observed: u32,
    /// Days on which a change was detected (checksum differed from the
    /// previous observation).
    pub change_days: Vec<u32>,
    /// Last checksum seen (for change detection).
    last_checksum: Checksum,
}

impl PageRecord {
    /// Build a record directly (fixtures and tests; the monitor builds
    /// records from observations).
    pub fn synthetic(
        page: PageId,
        site: SiteId,
        domain: Domain,
        first_seen: u32,
        last_seen: u32,
        change_days: Vec<u32>,
    ) -> PageRecord {
        assert!(last_seen >= first_seen);
        assert!(change_days.windows(2).all(|w| w[0] < w[1]), "change days sorted");
        PageRecord {
            page,
            site,
            domain,
            first_seen,
            last_seen,
            days_observed: last_seen - first_seen + 1,
            change_days,
            last_checksum: Checksum(0),
        }
    }

    /// Number of detected changes.
    pub fn changes(&self) -> u32 {
        self.change_days.len() as u32
    }

    /// Observation span in days (`last_seen − first_seen`); the "existed
    /// within our window for N days" of §3.1.
    pub fn span_days(&self) -> u32 {
        self.last_seen - self.first_seen
    }

    /// §3.1's average change interval estimate: observed time / changes.
    /// Days lost to failed fetches are censored — dropped from the
    /// numerator — rather than counted as unchanged time; otherwise a
    /// page that changed on every successful visit drifts out of the
    /// "changed every time we visited" bin as soon as any visit fails.
    /// With no failures `days_observed − 1 == span_days`, the paper's
    /// exact estimator. Pages with
    /// no detected change report `None` (the paper cannot tell how often
    /// they change — its fifth bar).
    pub fn mean_change_interval(&self) -> Option<f64> {
        if self.change_days.is_empty() {
            None
        } else {
            Some((self.days_observed.saturating_sub(1)) as f64 / self.changes() as f64)
        }
    }

    /// Observed intervals between consecutive detected changes, in days —
    /// the Figure 6 samples.
    pub fn change_intervals(&self) -> Vec<f64> {
        self.change_days
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .collect()
    }

    /// Day of the first detected change, if any.
    pub fn first_change_day(&self) -> Option<u32> {
        self.change_days.first().copied()
    }

    /// Censoring class per Figure 3: was the page already present on day 0
    /// (left-censored) or still present on the final day (right-censored)?
    pub fn censoring(&self, total_days: usize) -> (bool, bool) {
        (self.first_seen == 0, self.last_seen as usize == total_days - 1)
    }
}

/// The complete monitoring data set.
#[derive(Clone, Debug, Default)]
pub struct MonitoringData {
    /// Total experiment days.
    pub days: usize,
    /// One record per page ever observed, in first-observation order.
    pub records: Vec<PageRecord>,
    index: HashMap<PageId, usize>,
}

impl MonitoringData {
    /// Build a data set from pre-existing records (fixtures and tests).
    pub fn from_records(days: usize, records: Vec<PageRecord>) -> MonitoringData {
        let index = records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.page, i))
            .collect();
        MonitoringData { days, records, index }
    }

    /// Record of a specific page, if observed.
    pub fn record(&self, page: PageId) -> Option<&PageRecord> {
        self.index.get(&page).map(|&i| &self.records[i])
    }

    /// Number of distinct pages observed.
    pub fn page_count(&self) -> usize {
        self.records.len()
    }

    /// Records for one domain.
    pub fn by_domain(&self, domain: Domain) -> impl Iterator<Item = &PageRecord> {
        self.records.iter().filter(move |r| r.domain == domain)
    }
}

/// The §2.1 daily monitor.
#[derive(Clone, Debug)]
pub struct DailyMonitor {
    config: MonitorConfig,
}

impl DailyMonitor {
    /// Create a monitor.
    pub fn new(config: MonitorConfig) -> DailyMonitor {
        assert!(config.days >= 2, "need at least two observation days");
        assert!((0.0..1.0).contains(&config.time_of_day));
        DailyMonitor { config }
    }

    /// Run the daily crawl against `sites` of `universe`.
    pub fn run(&self, universe: &WebUniverse, sites: &[SiteId]) -> MonitoringData {
        let mut fetcher =
            SimFetcher::new(universe).with_failure_rate(self.config.failure_rate);
        let mut data = MonitoringData {
            days: self.config.days,
            records: Vec::new(),
            index: HashMap::new(),
        };
        for day in 0..self.config.days {
            let t = day as f64 + self.config.time_of_day;
            for &site in sites {
                let domain = universe.site(site).domain;
                for page in universe.window(site, t) {
                    let url = universe.url_of(page);
                    match fetcher.fetch(url, t) {
                        Ok(outcome) => {
                            Self::observe(&mut data, page, site, domain, day as u32, outcome.checksum)
                        }
                        Err(FetchError::Transient) => {
                            // A failed fetch is a missed observation — the
                            // page looks absent today, exactly as a real
                            // crawler would experience it.
                        }
                        Err(FetchError::NotFound) => {
                            // Window listed it but it died between the
                            // window scan and the fetch — treat as absent.
                        }
                        Err(FetchError::RateLimited { .. }) => {
                            // The monitor paces itself; with the default
                            // unrestricted fetcher this does not happen.
                        }
                    }
                }
            }
        }
        data
    }

    fn observe(
        data: &mut MonitoringData,
        page: PageId,
        site: SiteId,
        domain: Domain,
        day: u32,
        checksum: Checksum,
    ) {
        match data.index.get(&page) {
            Some(&i) => {
                let rec = &mut data.records[i];
                if checksum != rec.last_checksum {
                    rec.change_days.push(day);
                    rec.last_checksum = checksum;
                }
                rec.last_seen = day;
                rec.days_observed += 1;
            }
            None => {
                let rec = PageRecord {
                    page,
                    site,
                    domain,
                    first_seen: day,
                    last_seen: day,
                    days_observed: 1,
                    change_days: Vec::new(),
                    last_checksum: checksum,
                };
                data.index.insert(page, data.records.len());
                data.records.push(rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::UniverseConfig;

    fn run_small(failure_rate: f64) -> (WebUniverse, MonitoringData) {
        let u = WebUniverse::generate(UniverseConfig::test_scale(11));
        let sites: Vec<SiteId> = u.sites().iter().map(|s| s.id).collect();
        let monitor = DailyMonitor::new(MonitorConfig {
            days: 60,
            failure_rate,
            time_of_day: 0.0,
        });
        let data = monitor.run(&u, &sites);
        (u, data)
    }

    #[test]
    fn observes_every_window_page() {
        let (u, data) = run_small(0.0);
        // Every page in the day-0 window must have a record starting day 0.
        for site in u.sites() {
            for p in u.window(site.id, 0.0) {
                let rec = data.record(p).expect("window page observed");
                assert_eq!(rec.first_seen, 0);
            }
        }
    }

    #[test]
    fn change_detection_matches_ground_truth() {
        let (u, data) = run_small(0.0);
        for rec in &data.records {
            for &d in &rec.change_days {
                assert!(d > rec.first_seen, "first observation cannot detect change");
                // Ground truth: the page really changed in (d-1, d].
                assert!(
                    u.changed_between(rec.page, d as f64 - 1.0, d as f64 + 1e-9),
                    "page {} claimed change on day {d}",
                    rec.page
                );
            }
        }
    }

    #[test]
    fn at_most_one_detection_per_day() {
        // Figure 1(a): daily monitoring detects at most one change per day.
        let (_, data) = run_small(0.0);
        for rec in &data.records {
            let mut sorted = rec.change_days.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), rec.change_days.len());
            assert!(rec.changes() <= rec.span_days());
        }
    }

    #[test]
    fn mean_interval_matches_paper_formula() {
        let rec = PageRecord {
            page: PageId(1),
            site: SiteId(0),
            domain: Domain::Com,
            first_seen: 0,
            last_seen: 50,
            days_observed: 51,
            change_days: vec![3, 10, 20, 33, 50],
            last_checksum: Checksum(0),
        };
        // "existed for 50 days, changed 5 times → 10 days".
        assert_eq!(rec.mean_change_interval(), Some(10.0));
        assert_eq!(rec.change_intervals(), vec![7.0, 10.0, 13.0, 17.0]);
    }

    #[test]
    fn no_change_pages_report_none() {
        let (_, data) = run_small(0.0);
        let quiet = data.records.iter().find(|r| r.changes() == 0).unwrap();
        assert_eq!(quiet.mean_change_interval(), None);
    }

    #[test]
    fn failures_reduce_observations_but_not_correctness() {
        let (u, noisy) = run_small(0.15);
        let (_, clean) = run_small(0.0);
        // Fewer total observations with failures...
        let obs_noisy: u64 = noisy.records.iter().map(|r| r.days_observed as u64).sum();
        let obs_clean: u64 = clean.records.iter().map(|r| r.days_observed as u64).sum();
        assert!(obs_noisy < obs_clean);
        // ...but every detected change is still a real change.
        for rec in &noisy.records {
            for w in rec.change_days.windows(2) {
                assert!(
                    u.changed_between(rec.page, w[0] as f64, w[1] as f64 + 1e-9),
                    "detected change must be real"
                );
            }
        }
    }

    #[test]
    fn censoring_classification() {
        let (_, data) = run_small(0.0);
        let total = data.days;
        for rec in &data.records {
            let (left, right) = rec.censoring(total);
            assert_eq!(left, rec.first_seen == 0);
            assert_eq!(right, rec.last_seen as usize == total - 1);
        }
    }

    #[test]
    #[should_panic(expected = "two observation days")]
    fn rejects_one_day_experiment() {
        let _ = DailyMonitor::new(MonitorConfig { days: 1, failure_rate: 0.0, time_of_day: 0.0 });
    }
}
