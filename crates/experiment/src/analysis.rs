//! Figures 2, 4 and 5: change intervals, lifespans, fraction unchanged.

use crate::monitor::MonitoringData;
use webevo_stats::{IntervalBin, IntervalHistogram, LifespanHistogram, SurvivalCurve};
use webevo_types::domain::PerDomain;

/// Figure 2: classify every observed page by its §3.1 average change
/// interval. Pages never seen to change land in the `>4months` bin — the
/// paper's crude approximation for its fifth bar ("we do not know exactly
/// how often a page changes when its change interval is out of this
/// range").
pub fn change_interval_histograms(
    data: &MonitoringData,
) -> (IntervalHistogram, PerDomain<IntervalHistogram>) {
    let mut overall = IntervalHistogram::default();
    let mut by_domain: PerDomain<IntervalHistogram> = PerDomain::default();
    for rec in &data.records {
        let bin = match rec.mean_change_interval() {
            Some(interval) => IntervalBin::classify(interval),
            None => IntervalBin::OverFourMonths,
        };
        overall.record_bin(bin);
        by_domain.get_mut(rec.domain).record_bin(bin);
    }
    (overall, by_domain)
}

/// Which Figure 3 correction to apply when estimating lifespans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifespanMethod {
    /// Method 1: use the observed span `s` as the lifespan for every page.
    Method1,
    /// Method 2: use `2s` for pages censored at either end of the
    /// experiment (Figure 3 cases (a), (c), (d)); `s` for fully observed
    /// pages (case (b)).
    Method2,
}

/// Figure 4: visible-lifespan histograms under the chosen method.
///
/// The visible lifespan of a fully observed page is its in-window span
/// plus one day (a page seen on exactly one day was visible for a day, not
/// zero).
pub fn lifespan_histograms(
    data: &MonitoringData,
    method: LifespanMethod,
) -> (LifespanHistogram, PerDomain<LifespanHistogram>) {
    let mut overall = LifespanHistogram::default();
    let mut by_domain: PerDomain<LifespanHistogram> = PerDomain::default();
    for rec in &data.records {
        let s = (rec.span_days() + 1) as f64;
        let (left, right) = rec.censoring(data.days);
        let lifespan = match method {
            LifespanMethod::Method1 => s,
            LifespanMethod::Method2 => {
                if left || right {
                    2.0 * s
                } else {
                    s
                }
            }
        };
        overall.record(lifespan);
        by_domain.get_mut(rec.domain).record(lifespan);
    }
    (overall, by_domain)
}

/// Figure 5: for the pages present at the start of the experiment, the
/// fraction that had neither changed nor disappeared by each day.
///
/// A page counts as "surviving" on day `d` if it was still being observed
/// (`last_seen ≥ d`) and no change had been detected at or before `d`.
pub fn unchanged_curves(data: &MonitoringData) -> (SurvivalCurve, PerDomain<SurvivalCurve>) {
    let initial: Vec<&crate::monitor::PageRecord> =
        data.records.iter().filter(|r| r.first_seen == 0).collect();
    let curve_for = |filter: &dyn Fn(&crate::monitor::PageRecord) -> bool| -> SurvivalCurve {
        let cohort: Vec<_> = initial.iter().filter(|r| filter(r)).collect();
        let n = cohort.len();
        let mut values = Vec::with_capacity(data.days);
        for day in 0..data.days as u32 {
            if n == 0 {
                values.push(1.0);
                continue;
            }
            let surviving = cohort
                .iter()
                .filter(|r| {
                    r.last_seen >= day
                        && r.first_change_day().map(|c| c > day).unwrap_or(true)
                })
                .count();
            values.push(surviving as f64 / n as f64);
        }
        SurvivalCurve::new(values)
    };
    let overall = curve_for(&|_| true);
    let by_domain = PerDomain::from_fn(|d| curve_for(&move |r| r.domain == d));
    (overall, by_domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{DailyMonitor, MonitorConfig, MonitoringData, PageRecord};
    use webevo_sim::{UniverseConfig, WebUniverse};
    use webevo_stats::LifespanBin;
    use webevo_types::{Domain, PageId, SiteId};

    fn rec(domain: Domain, first: u32, last: u32, changes: Vec<u32>) -> PageRecord {
        // Distinct page ids per fixture row (first/last/changes make them
        // unique enough for these tests).
        let id = first as u64 * 100_000
            + last as u64 * 100
            + changes.len() as u64
            + changes.first().copied().unwrap_or(0) as u64 * 7;
        PageRecord::synthetic(PageId(id), SiteId(0), domain, first, last, changes)
    }

    fn data(records: Vec<PageRecord>, days: usize) -> MonitoringData {
        MonitoringData::from_records(days, records)
    }

    #[test]
    fn interval_classification() {
        let d = data(
            vec![
                rec(Domain::Com, 0, 50, (1..=50).collect()), // every day → ≤1day
                rec(Domain::Com, 0, 50, vec![10, 20, 30, 40, 50]), // 10 days
                rec(Domain::Edu, 0, 120, vec![]),            // never → >4months
            ],
            128,
        );
        let (overall, by_domain) = change_interval_histograms(&d);
        assert_eq!(overall.total(), 3);
        assert_eq!(overall.count(IntervalBin::UpToDay), 1);
        assert_eq!(overall.count(IntervalBin::WeekToMonth), 1);
        assert_eq!(overall.count(IntervalBin::OverFourMonths), 1);
        assert_eq!(by_domain.get(Domain::Edu).total(), 1);
    }

    #[test]
    fn lifespan_methods_differ_only_for_censored() {
        let d = data(
            vec![
                rec(Domain::Com, 5, 24, vec![]),  // fully observed: s = 20
                rec(Domain::Com, 0, 24, vec![]),  // left-censored: s = 25
            ],
            128,
        );
        let (m1, _) = lifespan_histograms(&d, LifespanMethod::Method1);
        let (m2, _) = lifespan_histograms(&d, LifespanMethod::Method2);
        // Method 1: both pages in the 1w–1m bin.
        assert_eq!(m1.count(LifespanBin::WeekToMonth), 2);
        // Method 2: censored page doubles to 50 days → 1m–4m bin.
        assert_eq!(m2.count(LifespanBin::WeekToMonth), 1);
        assert_eq!(m2.count(LifespanBin::MonthToFourMonths), 1);
    }

    #[test]
    fn unchanged_curve_drops_on_change_and_disappearance() {
        let d = data(
            vec![
                rec(Domain::Com, 0, 9, vec![5]),  // changes day 5
                rec(Domain::Com, 0, 3, vec![]),   // disappears after day 3
                rec(Domain::Com, 0, 9, vec![]),   // survives
                rec(Domain::Com, 2, 9, vec![]),   // joined late: not in cohort
            ],
            10,
        );
        let (curve, _) = unchanged_curves(&d);
        assert_eq!(curve.at_day(0), 1.0);
        assert!((curve.at_day(3) - 1.0).abs() < 1e-12);
        assert!((curve.at_day(4) - 2.0 / 3.0).abs() < 1e-12, "one page gone");
        assert!((curve.at_day(5) - 1.0 / 3.0).abs() < 1e-12, "one changed too");
        assert!((curve.at_day(9) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_shapes_match_paper() {
        // A real monitored run at test scale must reproduce the paper's
        // qualitative orderings.
        let u = WebUniverse::generate(UniverseConfig::test_scale(21));
        let sites: Vec<SiteId> = u.sites().iter().map(|s| s.id).collect();
        let monitor = DailyMonitor::new(MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 });
        let data = monitor.run(&u, &sites);

        let (_, fig2) = change_interval_histograms(&data);
        let com_daily = fig2.get(Domain::Com).fraction(IntervalBin::UpToDay);
        let gov_daily = fig2.get(Domain::Gov).fraction(IntervalBin::UpToDay);
        assert!(
            com_daily > gov_daily,
            "com daily {com_daily} must exceed gov {gov_daily}"
        );

        let (fig5, fig5_dom) = unchanged_curves(&data);
        let com_half = fig5_dom.get(Domain::Com).half_life_days();
        let overall_half = fig5.half_life_days();
        if let (Some(c), Some(o)) = (com_half, overall_half) {
            assert!(c <= o, "com changes faster than the web overall");
        } else {
            assert!(com_half.is_some(), "com should reach 50% within 128 days");
        }
    }
}
