//! Plain-text rendering of the paper's tables and figures.
//!
//! Each renderer prints the same rows/series the paper reports, so a
//! reproduction run can be compared against the published numbers line by
//! line (EXPERIMENTS.md records that comparison).

use crate::ExperimentReport;
use std::fmt::Write as _;
use webevo_stats::{IntervalBin, IntervalHistogram, LifespanBin, LifespanHistogram, SurvivalCurve};
use webevo_types::domain::PerDomain;
use webevo_types::Domain;

/// Render Table 1 (sites per domain).
pub fn render_table1(counts: &PerDomain<usize>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Number of sites within a domain");
    let _ = writeln!(out, "{:<8} {:>6}", "domain", "sites");
    let mut total = 0;
    for d in Domain::ALL {
        let c = *counts.get(d);
        total += c;
        let _ = writeln!(out, "{:<8} {:>6}", d.label(), c);
    }
    let _ = writeln!(out, "{:<8} {:>6}", "total", total);
    out
}

/// Render a Figure 2-style histogram row set (fractions per interval bin).
pub fn render_fig2(overall: &IntervalHistogram, by_domain: &PerDomain<IntervalHistogram>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: Fraction of pages with given average interval of change");
    let _ = write!(out, "{:<22}", "bin");
    let _ = write!(out, "{:>9}", "all");
    for d in Domain::ALL {
        let _ = write!(out, "{:>9}", d.label());
    }
    let _ = writeln!(out);
    for bin in IntervalBin::ALL {
        let _ = write!(out, "{:<22}{:>9.3}", bin.label(), overall.fraction(bin));
        for d in Domain::ALL {
            let _ = write!(out, "{:>9.3}", by_domain.get(d).fraction(bin));
        }
        let _ = writeln!(out);
    }
    out
}

/// Render Figure 4 (lifespan histograms, both methods overall + per-domain
/// Method 1).
pub fn render_fig4(
    method1: &LifespanHistogram,
    method2: &LifespanHistogram,
    by_domain: &PerDomain<LifespanHistogram>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4: Percentage of pages with given visible lifespan");
    let _ = write!(out, "{:<22}{:>9}{:>9}", "bin", "method1", "method2");
    for d in Domain::ALL {
        let _ = write!(out, "{:>9}", d.label());
    }
    let _ = writeln!(out);
    for bin in LifespanBin::ALL {
        let _ = write!(
            out,
            "{:<22}{:>9.3}{:>9.3}",
            bin.label(),
            method1.fraction(bin),
            method2.fraction(bin)
        );
        for d in Domain::ALL {
            let _ = write!(out, "{:>9.3}", by_domain.get(d).fraction(bin));
        }
        let _ = writeln!(out);
    }
    out
}

/// Render Figure 5 as a day-sampled table plus the 50% crossing summary.
pub fn render_fig5(
    overall: &SurvivalCurve,
    by_domain: &PerDomain<SurvivalCurve>,
    sample_every: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5: Fraction of pages unchanged (and present) by day");
    let _ = write!(out, "{:<6}{:>9}", "day", "all");
    for d in Domain::ALL {
        let _ = write!(out, "{:>9}", d.label());
    }
    let _ = writeln!(out);
    let days = overall.days();
    let mut day = 0;
    while day < days {
        let _ = write!(out, "{:<6}{:>9.3}", day, overall.at_day(day));
        for d in Domain::ALL {
            let _ = write!(out, "{:>9.3}", by_domain.get(d).at_day(day));
        }
        let _ = writeln!(out);
        day += sample_every.max(1);
    }
    let _ = writeln!(out);
    let show_half = |label: &str, c: &SurvivalCurve, out: &mut String| {
        let _ = match c.half_life_days() {
            Some(d) => writeln!(out, "50% of {label} changed/replaced by day {d}"),
            None => writeln!(out, "{label}: 50% threshold not reached in {days} days"),
        };
    };
    show_half("all pages", overall, &mut out);
    for d in Domain::ALL {
        show_half(d.label(), by_domain.get(d), &mut out);
    }
    out
}

/// Render a Figure 6 report (observed vs Poisson-predicted fractions).
pub fn render_fig6(report: &crate::PoissonFitReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: Change intervals of pages with ~{:.0}-day mean interval ({} pages, {} intervals)",
        report.target_interval_days, report.pages_in_group, report.samples
    );
    let _ = writeln!(out, "{:<16}{:>12}{:>12}", "interval(days)", "observed", "poisson");
    for &(center, obs, pred) in &report.series {
        let _ = writeln!(out, "{:<16.1}{:>12.4}{:>12.4}", center, obs, pred);
    }
    let _ = writeln!(
        out,
        "chi-square fit: statistic={:.2}, p={:.3} ({})",
        report.chi_square.statistic,
        report.chi_square.p_value,
        if report.chi_square.rejects_at(0.01) { "REJECTED" } else { "consistent with Poisson" }
    );
    out
}

/// Render the complete experiment report.
pub fn render_full(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&render_table1(&report.selection.domain_counts));
    out.push('\n');
    out.push_str(&render_fig2(&report.fig2_overall, &report.fig2_by_domain));
    out.push('\n');
    out.push_str(&render_fig4(
        &report.fig4_method1,
        &report.fig4_method2,
        &report.fig4_by_domain,
    ));
    out.push('\n');
    out.push_str(&render_fig5(&report.fig5_overall, &report.fig5_by_domain, 10));
    out.push('\n');
    for fig6 in &report.fig6 {
        out.push_str(&render_fig6(fig6));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_paper_counts() {
        let counts = PerDomain::from_fn(|d| d.paper_site_count());
        let s = render_table1(&counts);
        assert!(s.contains("com         132"));
        assert!(s.contains("edu          78"));
        assert!(s.contains("total       270"));
    }

    #[test]
    fn fig2_renders_all_bins() {
        let mut h = IntervalHistogram::default();
        h.record(0.5);
        h.record(45.0);
        let by_domain: PerDomain<IntervalHistogram> = PerDomain::default();
        let s = render_fig2(&h, &by_domain);
        for bin in IntervalBin::ALL {
            assert!(s.contains(bin.label()), "missing {}", bin.label());
        }
        assert!(s.contains("0.500"));
    }

    #[test]
    fn fig5_reports_half_life() {
        let c = SurvivalCurve::new(vec![1.0, 0.8, 0.6, 0.45, 0.3]);
        let by_domain = PerDomain::from_fn(|_| c.clone());
        let s = render_fig5(&c, &by_domain, 2);
        assert!(s.contains("50% of all pages changed/replaced by day 3"));
    }
}
