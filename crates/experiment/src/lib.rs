//! The paper's web-evolution measurement study (§2–3), reproduced against
//! the synthetic web.
//!
//! Pipeline:
//!
//! 1. **Site selection** ([`selection`]): rank sites by site-level PageRank
//!    over a snapshot graph, take the top candidates, apply the
//!    webmaster-permission subsample — Table 1.
//! 2. **Daily active monitoring** ([`monitor`]): crawl every selected
//!    site's page window once a day for the experiment duration, recording
//!    presence and checksums — the §2.1 methodology, including its
//!    limitations (1-day granularity, Figure 1; window censoring,
//!    Figure 3).
//! 3. **Analysis** ([`analysis`]): average change intervals (Figure 2),
//!    visible lifespans by Methods 1 and 2 (Figure 4), the
//!    fraction-unchanged survival curves (Figure 5).
//! 4. **Model verification** ([`poisson_fit`]): the Figure 6 check that
//!    pages with a common mean change interval have exponentially
//!    distributed intervals.
//!
//! [`run_full_experiment`] chains all four and returns an
//! [`ExperimentReport`] whose tables print in the paper's format
//! ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod monitor;
pub mod poisson_fit;
pub mod report;
pub mod selection;

pub use analysis::{
    change_interval_histograms, lifespan_histograms, unchanged_curves, LifespanMethod,
};
pub use monitor::{DailyMonitor, MonitorConfig, MonitoringData, PageRecord};
pub use poisson_fit::{poisson_fit_for_interval, PoissonFitReport};
pub use selection::{select_sites, SiteSelection};

use webevo_sim::WebUniverse;
use webevo_stats::{IntervalHistogram, LifespanHistogram, SurvivalCurve};
use webevo_types::domain::PerDomain;

/// Everything the §2–3 experiment produces.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Table 1: the selected sites and their domain mix.
    pub selection: SiteSelection,
    /// Figure 2(a): change-interval histogram over all domains.
    pub fig2_overall: IntervalHistogram,
    /// Figure 2(b): per-domain change-interval histograms.
    pub fig2_by_domain: PerDomain<IntervalHistogram>,
    /// Figure 4(a), Method 1: lifespans with `s` as the estimate.
    pub fig4_method1: LifespanHistogram,
    /// Figure 4(a), Method 2: `2s` for censored pages.
    pub fig4_method2: LifespanHistogram,
    /// Figure 4(b): per-domain lifespans (Method 1, as in the paper).
    pub fig4_by_domain: PerDomain<LifespanHistogram>,
    /// Figure 5(a): fraction unchanged over all domains.
    pub fig5_overall: SurvivalCurve,
    /// Figure 5(b): per-domain fraction-unchanged curves.
    pub fig5_by_domain: PerDomain<SurvivalCurve>,
    /// Figure 6: Poisson-fit reports for the 10-day and 20-day groups.
    pub fig6: Vec<PoissonFitReport>,
    /// The raw monitoring data (for further analysis).
    pub data: MonitoringData,
}

/// Run the full §2–3 experiment on a universe: select sites, monitor them
/// daily, and compute every figure.
pub fn run_full_experiment(
    universe: &WebUniverse,
    monitor_config: &MonitorConfig,
    candidate_sites: usize,
    permitted_sites: usize,
) -> ExperimentReport {
    let selection = select_sites(universe, 0.0, candidate_sites, permitted_sites);
    let monitor = DailyMonitor::new(monitor_config.clone());
    let data = monitor.run(universe, &selection.selected);
    let (fig2_overall, fig2_by_domain) = change_interval_histograms(&data);
    let (fig4_method1, _) = lifespan_histograms(&data, LifespanMethod::Method1);
    let (fig4_method2, _) = lifespan_histograms(&data, LifespanMethod::Method2);
    let (_, fig4_by_domain) = lifespan_histograms(&data, LifespanMethod::Method1);
    let (fig5_overall, fig5_by_domain) = unchanged_curves(&data);
    let fig6 = vec![
        poisson_fit_for_interval(&data, 10.0, 0.25),
        poisson_fit_for_interval(&data, 20.0, 0.25),
    ];
    ExperimentReport {
        selection,
        fig2_overall,
        fig2_by_domain,
        fig4_method1,
        fig4_method2,
        fig4_by_domain,
        fig5_overall,
        fig5_by_domain,
        fig6,
        data,
    }
}
