//! Compact identifiers for pages and sites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a web site (a root URL and everything reachable under it).
///
/// The paper monitors 270 sites (Table 1); site identity is the unit of
/// domain classification, politeness limits, and site-level statistics
/// pooling (§5.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// Identifier of a single web page.
///
/// Pages are globally numbered across the whole simulated web; the owning
/// site is tracked separately so that `PageId` stays a bare `u64` in hot
/// maps and queues.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl SiteId {
    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl PageId {
    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(v: u32) -> Self {
        SiteId(v)
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = PageId(1);
        let b = PageId(2);
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(PageId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SiteId(7).to_string(), "site#7");
        assert_eq!(PageId(42).to_string(), "page#42");
    }

    #[test]
    fn id_roundtrip_serde() {
        let p = PageId(99);
        let s = serde_json::to_string(&p).unwrap();
        let back: PageId = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(SiteId(5).index(), 5);
        assert_eq!(PageId(123).index(), 123);
    }
}
