//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by `webevo` components.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A caller supplied an invalid parameter (message explains which).
    InvalidParameter(String),
    /// A fetch failed (simulated network or page gone).
    Fetch(String),
    /// A numeric routine failed to converge.
    NoConvergence {
        /// What was being solved.
        what: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// An entity lookup failed.
    NotFound(String),
    /// The operation is not valid in the component's current state.
    InvalidState(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::Fetch(msg) => write!(f, "fetch failed: {msg}"),
            Error::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            Error::NotFound(msg) => write!(f, "not found: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Shorthand constructor for invalid-parameter errors.
    pub fn invalid(msg: impl Into<String>) -> Error {
        Error::InvalidParameter(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::invalid("x must be positive").to_string(),
            "invalid parameter: x must be positive"
        );
        assert_eq!(
            Error::NoConvergence { what: "pagerank", iterations: 100 }.to_string(),
            "pagerank did not converge after 100 iterations"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::NotFound("page#1".into()));
    }
}
