//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by `webevo` components.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A caller supplied an invalid parameter (message explains which).
    InvalidParameter(String),
    /// A fetch failed (simulated network or page gone).
    Fetch(String),
    /// A numeric routine failed to converge.
    NoConvergence {
        /// What was being solved.
        what: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
    /// An entity lookup failed.
    NotFound(String),
    /// The operation is not valid in the component's current state.
    InvalidState(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::Fetch(msg) => write!(f, "fetch failed: {msg}"),
            Error::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            Error::NotFound(msg) => write!(f, "not found: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The workspace error under its public-facing name: API layers
/// (`CrawlSession`, the `CrawlEngine` trait) surface validation and state
/// problems as `WebEvoError` values rather than panics.
pub type WebEvoError = Error;

impl Error {
    /// Shorthand constructor for invalid-parameter errors.
    pub fn invalid(msg: impl Into<String>) -> Error {
        Error::InvalidParameter(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::invalid("x must be positive").to_string(),
            "invalid parameter: x must be positive"
        );
        assert_eq!(
            Error::NoConvergence { what: "pagerank", iterations: 100 }.to_string(),
            "pagerank did not converge after 100 iterations"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::NotFound("page#1".into()));
    }

    #[test]
    fn every_variant_displays_its_context() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::InvalidParameter("bad λ".into()), "invalid parameter: bad λ"),
            (Error::Fetch("timeout on site#3".into()), "fetch failed: timeout on site#3"),
            (
                Error::NoConvergence { what: "optimal allocation", iterations: 64 },
                "optimal allocation did not converge after 64 iterations",
            ),
            (Error::NotFound("page#42".into()), "not found: page#42"),
            (Error::InvalidState("crawler already running".into()),
             "invalid state: crawler already running"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
            // Debug formatting must also be available (error reporting paths).
            assert!(!format!("{err:?}").is_empty());
        }
    }

    #[test]
    fn invalid_accepts_string_and_str() {
        assert_eq!(Error::invalid("x"), Error::InvalidParameter("x".into()));
        assert_eq!(Error::invalid(String::from("y")), Error::InvalidParameter("y".into()));
    }

    #[test]
    fn result_alias_propagates_with_question_mark() {
        fn inner(fail: bool) -> Result<u32> {
            if fail {
                Err(Error::invalid("no"))
            } else {
                Ok(7)
            }
        }
        fn outer(fail: bool) -> Result<u32> {
            let v = inner(fail)?;
            Ok(v + 1)
        }
        assert_eq!(outer(false), Ok(8));
        assert_eq!(outer(true), Err(Error::InvalidParameter("no".into())));
    }

    #[test]
    fn clone_and_eq_are_structural() {
        let e = Error::NoConvergence { what: "hits", iterations: 3 };
        assert_eq!(e.clone(), e);
        assert_ne!(e, Error::NoConvergence { what: "hits", iterations: 4 });
        assert_ne!(Error::NotFound("a".into()), Error::InvalidState("a".into()));
    }

    #[test]
    fn boxes_into_dyn_error_chains() {
        // The workspace error must compose with std error-handling code.
        let boxed: Box<dyn std::error::Error> = Box::new(Error::Fetch("gone".into()));
        assert_eq!(boxed.to_string(), "fetch failed: gone");
        assert!(boxed.source().is_none(), "leaf errors have no source");
    }
}
