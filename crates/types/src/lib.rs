//! Shared vocabulary types for the `webevo` workspace.
//!
//! This crate defines the identifiers, time model, and small value types used
//! by every other crate in the reproduction of Cho & Garcia-Molina,
//! *"The Evolution of the Web and Implications for an Incremental Crawler"*
//! (VLDB 2000).
//!
//! Design notes:
//!
//! * **Time is denominated in days** (`SimTime`, `SimDuration`): the paper's
//!   measurement study has one-day granularity, while its analytic layer is
//!   continuous, so a floating-point day count serves both.
//! * Identifiers are **newtypes over `u32`/`u64`** so they cannot be mixed up
//!   and stay small in hot data structures.
//! * `Checksum` models the page digest the paper's UpdateModule compares
//!   across visits (§5.3); the crawler layer never sees simulator ground
//!   truth, only checksums.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binio;
pub mod dense;
pub mod domain;
pub mod error;
pub mod id;
pub mod page;
pub mod shard;
pub mod time;
pub mod url;

pub use binio::{BinDecode, BinEncode, BinError, BinReader};
pub use dense::{DenseMap, DenseSet};
pub use domain::Domain;
pub use error::{Error, Result, WebEvoError};
pub use id::{PageId, SiteId};
pub use page::{Checksum, ChangeRate, PageVersion};
pub use shard::{ShardFn, ShardId, ShardPlan};
pub use time::{SimDuration, SimTime, DAY, FOUR_MONTHS, MONTH, WEEK, YEAR};
pub use url::Url;
