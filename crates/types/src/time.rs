//! The simulation time model.
//!
//! All of `webevo` measures time in **days** as `f64`. The paper's
//! measurement study (§2–3) observes the web once per day, while the
//! freshness analysis (§4) is continuous-time; a floating-point day count
//! serves both layers without conversions.
//!
//! Calendar constants follow the paper's conventions: 1 week = 7 days,
//! 1 month = 30 days, 4 months = 120 days.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One day, the base unit of simulation time.
pub const DAY: f64 = 1.0;
/// One week (7 days).
pub const WEEK: f64 = 7.0;
/// One month (30 days), the paper's crawl-cycle unit.
pub const MONTH: f64 = 30.0;
/// Four months (120 days), the paper's experiment horizon and the estimated
/// overall average change interval (§3.1).
pub const FOUR_MONTHS: f64 = 120.0;
/// One year (365 days), the crude approximation the paper uses for pages
/// that never changed during the experiment (§3.1).
pub const YEAR: f64 = 365.0;

/// A point in simulation time, measured in days since the simulation epoch.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(pub f64);

/// A span of simulation time, measured in days.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimDuration(pub f64);

impl SimTime {
    /// The simulation epoch (day 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from a day count.
    #[inline]
    pub const fn days(d: f64) -> Self {
        SimTime(d)
    }

    /// The raw day count.
    #[inline]
    pub const fn as_days(self) -> f64 {
        self.0
    }

    /// The calendar day index containing this instant (floor).
    ///
    /// The daily monitor of §2 observes pages once per calendar day; this is
    /// the bucketing it uses.
    #[inline]
    pub fn day_index(self) -> i64 {
        self.0.floor() as i64
    }

    /// Duration elapsed since `earlier`. Negative if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// True if this instant is within `[start, end)`.
    #[inline]
    pub fn within(self, start: SimTime, end: SimTime) -> bool {
        self.0 >= start.0 && self.0 < end.0
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from a day count.
    #[inline]
    pub const fn days(d: f64) -> Self {
        SimDuration(d)
    }

    /// Construct from a week count.
    #[inline]
    pub const fn weeks(w: f64) -> Self {
        SimDuration(w * WEEK)
    }

    /// Construct from a month count (30-day months, per the paper).
    #[inline]
    pub const fn months(m: f64) -> Self {
        SimDuration(m * MONTH)
    }

    /// The raw day count.
    #[inline]
    pub const fn as_days(self) -> f64 {
        self.0
    }

    /// True when the duration is non-negative and finite.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}d", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {:.2}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}d", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MONTH {
            write!(f, "{:.2} months", self.0 / MONTH)
        } else if self.0 >= WEEK {
            write!(f, "{:.2} weeks", self.0 / WEEK)
        } else {
            write!(f, "{:.2} days", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::days(10.0);
        let d = SimDuration::days(2.5);
        assert_eq!((t + d).as_days(), 12.5);
        assert_eq!((t + d - d).as_days(), 10.0);
        assert_eq!(((t + d) - t).as_days(), 2.5);
    }

    #[test]
    fn calendar_constants_match_paper() {
        assert_eq!(WEEK, 7.0);
        assert_eq!(MONTH, 30.0);
        assert_eq!(FOUR_MONTHS, 120.0);
        assert_eq!(SimDuration::months(1.0).as_days(), 30.0);
        assert_eq!(SimDuration::weeks(1.0).as_days(), 7.0);
    }

    #[test]
    fn day_index_floors() {
        assert_eq!(SimTime::days(0.0).day_index(), 0);
        assert_eq!(SimTime::days(0.999).day_index(), 0);
        assert_eq!(SimTime::days(1.0).day_index(), 1);
        assert_eq!(SimTime::days(127.5).day_index(), 127);
    }

    #[test]
    fn within_is_half_open() {
        let t = SimTime::days(5.0);
        assert!(t.within(SimTime::days(5.0), SimTime::days(6.0)));
        assert!(!t.within(SimTime::days(4.0), SimTime::days(5.0)));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::weeks(2.0);
        assert_eq!((d * 2.0).as_days(), 28.0);
        assert_eq!((d / 2.0).as_days(), 7.0);
        assert!((d / SimDuration::days(7.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(SimDuration::days(0.0).is_valid());
        assert!(!SimDuration::days(-1.0).is_valid());
        assert!(!SimDuration::days(f64::NAN).is_valid());
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::days(3.0).to_string(), "3.00 days");
        assert_eq!(SimDuration::days(14.0).to_string(), "2.00 weeks");
        assert_eq!(SimDuration::days(60.0).to_string(), "2.00 months");
    }
}
