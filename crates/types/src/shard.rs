//! Shard identifiers and the deterministic site partition for crawl
//! fleets.
//!
//! A fleet splits the universe's sites across `shards` independent crawl
//! units. The split must be a *pure function* of the site id and the plan
//! — never of runtime state — so that every fleet run (and every recovery
//! of one) routes each site to the same shard. [`ShardPlan`] carries that
//! function: the shard count, the total site count, and the partition
//! family ([`ShardFn::Hash`] scatters sites uniformly, [`ShardFn::Range`]
//! keeps contiguous id ranges together).

use crate::binio::{BinDecode, BinEncode, BinError, BinReader};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one shard (crawl unit) within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

/// The partition-function family of a [`ShardPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardFn {
    /// Scatter sites across shards by a fixed 64-bit mix of the site id:
    /// balanced in expectation, insensitive to the id numbering.
    Hash,
    /// Contiguous site-id ranges: shard `k` owns ids in
    /// `[k·S/N, (k+1)·S/N)` (up to rounding), preserving id locality.
    Range,
    /// Greedy least-loaded assignment over the site list in ascending id
    /// order: each site goes to the shard with the fewest sites so far
    /// (ties to the lower shard id). With unit site weights that greedy
    /// walk collapses to the closed form `site % shards`, so ownership
    /// counts differ by at most one — the skew-free alternative to
    /// [`ShardFn::Hash`].
    Balanced,
}

impl fmt::Display for ShardFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardFn::Hash => f.write_str("hash"),
            ShardFn::Range => f.write_str("range"),
            ShardFn::Balanced => f.write_str("balanced"),
        }
    }
}

/// A deterministic assignment of sites to shards. Two plans with equal
/// fields route every site identically — the property fleet recovery
/// checks before resuming against a manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    shards: u32,
    total_sites: u32,
    function: ShardFn,
}

impl ShardPlan {
    /// A plan partitioning `total_sites` sites across `shards` shards with
    /// the given function. `shards` must be positive.
    pub fn new(function: ShardFn, shards: u32, total_sites: u32) -> ShardPlan {
        assert!(shards > 0, "a fleet needs at least one shard");
        ShardPlan { shards, total_sites, function }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Total sites the plan was built for.
    pub fn total_sites(&self) -> u32 {
        self.total_sites
    }

    /// The partition-function family.
    pub fn function(&self) -> ShardFn {
        self.function
    }

    /// The shard that owns `site`. Total and deterministic: every site id
    /// maps to exactly one shard in `0..shards`.
    pub fn shard_of(&self, site: crate::SiteId) -> ShardId {
        match self.function {
            ShardFn::Hash => {
                // splitmix64-style finalizer: uniform, stable, cheap.
                let mut z = site.0 as u64;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                ShardId((z % self.shards as u64) as u32)
            }
            ShardFn::Range => {
                if self.total_sites == 0 {
                    return ShardId(0);
                }
                let k = (site.0 as u64 * self.shards as u64) / self.total_sites as u64;
                ShardId(k.min(self.shards as u64 - 1) as u32)
            }
            ShardFn::Balanced => ShardId(site.0 % self.shards),
        }
    }

    /// Whether `shard` owns `site` under this plan.
    pub fn owns(&self, shard: ShardId, site: crate::SiteId) -> bool {
        self.shard_of(site) == shard
    }

    /// All shard ids of the plan, ascending.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards).map(ShardId)
    }
}

impl BinEncode for ShardId {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.0.bin_encode(out);
    }
}

impl BinDecode for ShardId {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<ShardId, BinError> {
        Ok(ShardId(u32::bin_decode(r)?))
    }
}

impl BinEncode for ShardFn {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ShardFn::Hash => 0,
            ShardFn::Range => 1,
            ShardFn::Balanced => 2,
        });
    }
}

impl BinDecode for ShardFn {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<ShardFn, BinError> {
        match r.byte()? {
            0 => Ok(ShardFn::Hash),
            1 => Ok(ShardFn::Range),
            2 => Ok(ShardFn::Balanced),
            other => Err(BinError::new(format!("invalid ShardFn tag {other}"))),
        }
    }
}

impl BinEncode for ShardPlan {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.shards.bin_encode(out);
        self.total_sites.bin_encode(out);
        self.function.bin_encode(out);
    }
}

impl BinDecode for ShardPlan {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<ShardPlan, BinError> {
        let shards = u32::bin_decode(r)?;
        let total_sites = u32::bin_decode(r)?;
        let function = ShardFn::bin_decode(r)?;
        if shards == 0 {
            return Err(BinError::new("shard plan with zero shards"));
        }
        Ok(ShardPlan { shards, total_sites, function })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;

    #[test]
    fn every_site_maps_to_exactly_one_shard() {
        for function in [ShardFn::Hash, ShardFn::Range, ShardFn::Balanced] {
            let plan = ShardPlan::new(function, 4, 90);
            for s in 0..90u32 {
                let shard = plan.shard_of(SiteId(s));
                assert!(shard.0 < 4, "{function}: {shard} out of range");
                let owners: Vec<ShardId> = plan
                    .shard_ids()
                    .filter(|&k| plan.owns(k, SiteId(s)))
                    .collect();
                assert_eq!(owners, vec![shard], "{function}: site {s} multi-owned");
            }
        }
    }

    #[test]
    fn range_partition_is_contiguous_and_covers() {
        let plan = ShardPlan::new(ShardFn::Range, 4, 10);
        let shards: Vec<u32> = (0..10).map(|s| plan.shard_of(SiteId(s)).0).collect();
        // Non-decreasing, starts at 0, ends at the last shard.
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "{shards:?}");
        assert_eq!(shards[0], 0);
        assert_eq!(*shards.last().unwrap(), 3);
        // Every shard gets at least one site when sites >= shards.
        for k in 0..4 {
            assert!(shards.contains(&k), "shard {k} empty: {shards:?}");
        }
    }

    #[test]
    fn hash_partition_is_roughly_balanced() {
        let plan = ShardPlan::new(ShardFn::Hash, 4, 1000);
        let mut counts = [0usize; 4];
        for s in 0..1000u32 {
            counts[plan.shard_of(SiteId(s)).index()] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "shard {k} holds {c} of 1000 sites: {counts:?}"
            );
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for function in [ShardFn::Hash, ShardFn::Range, ShardFn::Balanced] {
            let plan = ShardPlan::new(function, 1, 50);
            for s in 0..50u32 {
                assert_eq!(plan.shard_of(SiteId(s)), ShardId(0));
            }
        }
    }

    #[test]
    fn balanced_partition_is_within_one_site_of_even() {
        // Greedy equal-weight assignment must beat Hash's skew: ownership
        // counts differ by at most one, for any site count.
        for total in [7u32, 90, 1000] {
            let plan = ShardPlan::new(ShardFn::Balanced, 4, total);
            let mut counts = [0usize; 4];
            for s in 0..total {
                counts[plan.shard_of(SiteId(s)).index()] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(max - min <= 1, "total={total}: {counts:?}");
        }
    }

    #[test]
    fn balanced_matches_the_greedy_walk() {
        // The closed form `site % shards` is exactly what greedy
        // least-loaded (ties to the lower shard id) produces over the
        // ascending site list with unit weights.
        let plan = ShardPlan::new(ShardFn::Balanced, 3, 20);
        let mut loads = [0usize; 3];
        for s in 0..20u32 {
            let greedy = (0..3usize).min_by_key(|&k| (loads[k], k)).unwrap();
            assert_eq!(plan.shard_of(SiteId(s)), ShardId(greedy as u32), "site {s}");
            loads[greedy] += 1;
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = ShardPlan::new(ShardFn::Hash, 8, 270);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ShardPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ShardId(3).to_string(), "shard#3");
        assert_eq!(ShardFn::Hash.to_string(), "hash");
        assert_eq!(ShardFn::Range.to_string(), "range");
        assert_eq!(ShardFn::Balanced.to_string(), "balanced");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardPlan::new(ShardFn::Hash, 0, 10);
    }
}
