//! Shard identifiers and the deterministic site partition for crawl
//! fleets.
//!
//! A fleet splits the universe's sites across `shards` independent crawl
//! units. The split must be a *pure function* of the site id and the plan
//! — never of runtime state — so that every fleet run (and every recovery
//! of one) routes each site to the same shard. [`ShardPlan`] carries that
//! function: the shard count, the total site count, and the partition
//! family ([`ShardFn::Hash`] scatters sites uniformly, [`ShardFn::Range`]
//! keeps contiguous id ranges together).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one shard (crawl unit) within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

/// The partition-function family of a [`ShardPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardFn {
    /// Scatter sites across shards by a fixed 64-bit mix of the site id:
    /// balanced in expectation, insensitive to the id numbering.
    Hash,
    /// Contiguous site-id ranges: shard `k` owns ids in
    /// `[k·S/N, (k+1)·S/N)` (up to rounding), preserving id locality.
    Range,
}

impl fmt::Display for ShardFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardFn::Hash => f.write_str("hash"),
            ShardFn::Range => f.write_str("range"),
        }
    }
}

/// A deterministic assignment of sites to shards. Two plans with equal
/// fields route every site identically — the property fleet recovery
/// checks before resuming against a manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    shards: u32,
    total_sites: u32,
    function: ShardFn,
}

impl ShardPlan {
    /// A plan partitioning `total_sites` sites across `shards` shards with
    /// the given function. `shards` must be positive.
    pub fn new(function: ShardFn, shards: u32, total_sites: u32) -> ShardPlan {
        assert!(shards > 0, "a fleet needs at least one shard");
        ShardPlan { shards, total_sites, function }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Total sites the plan was built for.
    pub fn total_sites(&self) -> u32 {
        self.total_sites
    }

    /// The partition-function family.
    pub fn function(&self) -> ShardFn {
        self.function
    }

    /// The shard that owns `site`. Total and deterministic: every site id
    /// maps to exactly one shard in `0..shards`.
    pub fn shard_of(&self, site: crate::SiteId) -> ShardId {
        match self.function {
            ShardFn::Hash => {
                // splitmix64-style finalizer: uniform, stable, cheap.
                let mut z = site.0 as u64;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                ShardId((z % self.shards as u64) as u32)
            }
            ShardFn::Range => {
                if self.total_sites == 0 {
                    return ShardId(0);
                }
                let k = (site.0 as u64 * self.shards as u64) / self.total_sites as u64;
                ShardId(k.min(self.shards as u64 - 1) as u32)
            }
        }
    }

    /// Whether `shard` owns `site` under this plan.
    pub fn owns(&self, shard: ShardId, site: crate::SiteId) -> bool {
        self.shard_of(site) == shard
    }

    /// All shard ids of the plan, ascending.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards).map(ShardId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;

    #[test]
    fn every_site_maps_to_exactly_one_shard() {
        for function in [ShardFn::Hash, ShardFn::Range] {
            let plan = ShardPlan::new(function, 4, 90);
            for s in 0..90u32 {
                let shard = plan.shard_of(SiteId(s));
                assert!(shard.0 < 4, "{function}: {shard} out of range");
                let owners: Vec<ShardId> = plan
                    .shard_ids()
                    .filter(|&k| plan.owns(k, SiteId(s)))
                    .collect();
                assert_eq!(owners, vec![shard], "{function}: site {s} multi-owned");
            }
        }
    }

    #[test]
    fn range_partition_is_contiguous_and_covers() {
        let plan = ShardPlan::new(ShardFn::Range, 4, 10);
        let shards: Vec<u32> = (0..10).map(|s| plan.shard_of(SiteId(s)).0).collect();
        // Non-decreasing, starts at 0, ends at the last shard.
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "{shards:?}");
        assert_eq!(shards[0], 0);
        assert_eq!(*shards.last().unwrap(), 3);
        // Every shard gets at least one site when sites >= shards.
        for k in 0..4 {
            assert!(shards.contains(&k), "shard {k} empty: {shards:?}");
        }
    }

    #[test]
    fn hash_partition_is_roughly_balanced() {
        let plan = ShardPlan::new(ShardFn::Hash, 4, 1000);
        let mut counts = [0usize; 4];
        for s in 0..1000u32 {
            counts[plan.shard_of(SiteId(s)).index()] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "shard {k} holds {c} of 1000 sites: {counts:?}"
            );
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for function in [ShardFn::Hash, ShardFn::Range] {
            let plan = ShardPlan::new(function, 1, 50);
            for s in 0..50u32 {
                assert_eq!(plan.shard_of(SiteId(s)), ShardId(0));
            }
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = ShardPlan::new(ShardFn::Hash, 8, 270);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ShardPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ShardId(3).to_string(), "shard#3");
        assert_eq!(ShardFn::Hash.to_string(), "hash");
        assert_eq!(ShardFn::Range.to_string(), "range");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardPlan::new(ShardFn::Hash, 0, 10);
    }
}
