//! Dense, `PageId`-indexed engine substrates.
//!
//! The simulated universe hands out page ids densely (`PageId(0..n)` in
//! birth order), so the crawler's hot per-page state — the `Collection`,
//! `AllUrls`, revisit intervals, the periodic engine's shadow maps — can
//! live in flat `Vec`-backed slot maps instead of pointer-chasing ordered
//! trees. [`DenseMap`] and [`DenseSet`] are that substrate, shared by every
//! call site so the invariants are audited once:
//!
//! * **Iteration is in ascending `PageId` order.** This is the replay
//!   guarantee: float accumulations over these containers (metric
//!   sampling, ranking mass sums, reallocation sweeps) visit pages in the
//!   same order as the ordered maps they replace, so crawls continue to
//!   replay bit-identically for a fixed seed — without per-lookup tree
//!   descent.
//! * **Serialization matches the ordered containers.** A `DenseMap<V>`
//!   serializes exactly like `BTreeMap<PageId, V>` (a sequence of
//!   `[id, value]` pairs, ascending) and a `DenseSet` like
//!   `BTreeSet<PageId>` (a sorted id sequence), so pre-existing snapshots
//!   decode into the new substrates unchanged and two exports of the same
//!   state remain byte-identical.
//!
//! Slots are `Option<V>`; lookups are a bounds check plus an index. Memory
//! is proportional to the largest id ever inserted, which the dense-id
//! universe keeps within a constant factor of the live population.

use crate::id::PageId;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// A `Vec`-backed map from [`PageId`] to `V`. See the module docs for the
/// iteration-order and serialization contracts.
#[derive(Clone, Debug)]
pub struct DenseMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for DenseMap<V> {
    fn default() -> DenseMap<V> {
        DenseMap::new()
    }
}

impl<V> DenseMap<V> {
    /// An empty map.
    pub fn new() -> DenseMap<V> {
        DenseMap { slots: Vec::new(), len: 0 }
    }

    /// An empty map with room for ids `0..capacity` before regrowing.
    pub fn with_capacity(capacity: usize) -> DenseMap<V> {
        DenseMap { slots: Vec::with_capacity(capacity), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `page` has an entry.
    pub fn contains(&self, page: PageId) -> bool {
        self.slots.get(page.index()).is_some_and(Option::is_some)
    }

    /// Shared access to the entry for `page`.
    pub fn get(&self, page: PageId) -> Option<&V> {
        self.slots.get(page.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the entry for `page`.
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut V> {
        self.slots.get_mut(page.index()).and_then(Option::as_mut)
    }

    /// Insert (or replace) the entry for `page`, returning the previous
    /// value if any.
    pub fn insert(&mut self, page: PageId, value: V) -> Option<V> {
        let i = page.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the entry for `page`, returning it if present.
    pub fn remove(&mut self, page: PageId) -> Option<V> {
        let old = self.slots.get_mut(page.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The entry for `page`, inserting `default()` first when vacant.
    pub fn or_insert_with(&mut self, page: PageId, default: impl FnOnce() -> V) -> &mut V {
        let i = page.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(default());
            self.len += 1;
        }
        slot.as_mut().expect("slot just filled")
    }

    /// Drop every entry (allocation retained).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Iterate entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (PageId(i as u64), v)))
    }

    /// Iterate entries mutably in ascending id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (PageId, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_mut().map(|v| (PageId(i as u64), v)))
    }

    /// Iterate stored ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = PageId> + '_ {
        self.iter().map(|(p, _)| p)
    }

    /// Iterate stored values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

// Equality is over the stored entries, not the slot vector: two maps with
// the same entries compare equal even when one has grown further (trailing
// vacant slots are invisible).
impl<V: PartialEq> PartialEq for DenseMap<V> {
    fn eq(&self, other: &DenseMap<V>) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<V: Eq> Eq for DenseMap<V> {}

impl<V> FromIterator<(PageId, V)> for DenseMap<V> {
    fn from_iter<I: IntoIterator<Item = (PageId, V)>>(iter: I) -> DenseMap<V> {
        let mut map = DenseMap::new();
        for (p, v) in iter {
            map.insert(p, v);
        }
        map
    }
}

// Serialize exactly like `BTreeMap<PageId, V>` under the workspace serde:
// a sequence of two-element `[key, value]` sequences, ascending by id.
impl<V: Serialize> Serialize for DenseMap<V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(p, v)| Value::Seq(vec![p.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for DenseMap<V> {
    fn from_value(v: &Value) -> Result<DenseMap<V>, SerdeError> {
        Vec::<(PageId, V)>::from_value(v).map(DenseMap::from_iter)
    }
}

/// A `Vec<u64>` bitset over [`PageId`]s. Iteration ascends; serialization
/// matches `BTreeSet<PageId>` (a sorted id sequence).
#[derive(Clone, Debug, Default)]
pub struct DenseSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseSet {
    /// An empty set.
    pub fn new() -> DenseSet {
        DenseSet::default()
    }

    /// Number of ids stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `page` is in the set.
    pub fn contains(&self, page: PageId) -> bool {
        let i = page.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Insert `page`; returns whether it was newly added.
    pub fn insert(&mut self, page: PageId) -> bool {
        let i = page.index();
        let word = i / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (i % 64);
        let fresh = self.words[word] & bit == 0;
        if fresh {
            self.words[word] |= bit;
            self.len += 1;
        }
        fresh
    }

    /// Remove `page`; returns whether it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        let i = page.index();
        let Some(word) = self.words.get_mut(i / 64) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        let present = *word & bit != 0;
        if present {
            *word &= !bit;
            self.len -= 1;
        }
        present
    }

    /// Drop every id.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Iterate stored ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(PageId((wi * 64 + tz) as u64))
            })
        })
    }

    /// The stored ids as an ascending vector.
    pub fn to_vec(&self) -> Vec<PageId> {
        self.iter().collect()
    }
}

impl FromIterator<PageId> for DenseSet {
    fn from_iter<I: IntoIterator<Item = PageId>>(iter: I) -> DenseSet {
        let mut set = DenseSet::new();
        for p in iter {
            set.insert(p);
        }
        set
    }
}

impl Serialize for DenseSet {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|p| p.to_value()).collect())
    }
}

impl Deserialize for DenseSet {
    fn from_value(v: &Value) -> Result<DenseSet, SerdeError> {
        Vec::<PageId>::from_value(v).map(DenseSet::from_iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove() {
        let mut m = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(PageId(5), "a"), None);
        assert_eq!(m.insert(PageId(2), "b"), None);
        assert_eq!(m.insert(PageId(5), "c"), Some("a"));
        assert_eq!(m.len(), 2);
        assert!(m.contains(PageId(2)));
        assert!(!m.contains(PageId(3)));
        assert!(!m.contains(PageId(999)), "out of range is absent, not a panic");
        assert_eq!(m.get(PageId(5)), Some(&"c"));
        *m.get_mut(PageId(2)).unwrap() = "z";
        assert_eq!(m.remove(PageId(2)), Some("z"));
        assert_eq!(m.remove(PageId(2)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_iterates_ascending() {
        let mut m = DenseMap::new();
        for i in [9u64, 1, 4, 7, 0] {
            m.insert(PageId(i), i * 10);
        }
        let ids: Vec<u64> = m.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ids, vec![0, 1, 4, 7, 9]);
        let vals: Vec<u64> = m.values().copied().collect();
        assert_eq!(vals, vec![0, 10, 40, 70, 90]);
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert_eq!(m.get(PageId(4)), Some(&41));
    }

    #[test]
    fn map_or_insert_with() {
        let mut m: DenseMap<Vec<u32>> = DenseMap::new();
        m.or_insert_with(PageId(3), Vec::new).push(1);
        m.or_insert_with(PageId(3), || panic!("occupied")).push(2);
        assert_eq!(m.get(PageId(3)), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_serializes_like_btreemap() {
        use std::collections::BTreeMap;
        let pairs = [(PageId(8), 3.5f64), (PageId(1), -1.0), (PageId(30), 0.25)];
        let dense: DenseMap<f64> = pairs.iter().copied().collect();
        let tree: BTreeMap<PageId, f64> = pairs.iter().copied().collect();
        let a = serde_json::to_string(&dense).unwrap();
        let b = serde_json::to_string(&tree).unwrap();
        assert_eq!(a, b, "snapshot compatibility requires identical shapes");
        let back: DenseMap<f64> = serde_json::from_str(&b).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(PageId(30)), Some(&0.25));
    }

    #[test]
    fn set_insert_remove_iterate() {
        let mut s = DenseSet::new();
        assert!(s.insert(PageId(65)));
        assert!(s.insert(PageId(2)));
        assert!(!s.insert(PageId(65)), "duplicate insert reports false");
        assert!(s.contains(PageId(2)));
        assert!(!s.contains(PageId(64)));
        assert!(!s.contains(PageId(100_000)));
        assert_eq!(s.to_vec(), vec![PageId(2), PageId(65)]);
        assert!(s.remove(PageId(2)));
        assert!(!s.remove(PageId(2)));
        assert!(!s.remove(PageId(100_000)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn set_serializes_like_btreeset() {
        use std::collections::BTreeSet;
        let ids = [PageId(7), PageId(0), PageId(130)];
        let dense: DenseSet = ids.iter().copied().collect();
        let tree: BTreeSet<PageId> = ids.iter().copied().collect();
        let a = serde_json::to_string(&dense).unwrap();
        let b = serde_json::to_string(&tree).unwrap();
        assert_eq!(a, b);
        let back: DenseSet = serde_json::from_str(&a).unwrap();
        assert_eq!(back.to_vec(), dense.to_vec());
    }
}
