//! Lightweight URL representation for the simulated web.
//!
//! Real URL parsing is out of scope (the simulated web addresses pages by
//! id), but the crawler-facing API should still speak in URL-like values —
//! `AllUrls` and `CollUrls` in the paper are URL sets. A `Url` here is a
//! `(site, page)` pair, which is exactly the addressing the page-window
//! methodology needs (a page's BFS depth is site state, not part of its
//! address).

use crate::{PageId, SiteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulated URL: the page's site and its global page id.
///
/// Ordered by `(site, page)` so URL-keyed engine state can live in ordered
/// containers — iteration order (and therefore floating-point accumulation
/// order) must not depend on hash seeds, or crawls stop replaying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Url {
    /// Owning site.
    pub site: SiteId,
    /// Global page identifier.
    pub page: PageId,
}

impl Url {
    /// Construct a URL from its parts.
    pub const fn new(site: SiteId, page: PageId) -> Url {
        Url { site, page }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://site{}.sim/p{}", self.site.0, self.page.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_display_is_stable() {
        let u = Url::new(SiteId(3), PageId(17));
        assert_eq!(u.to_string(), "http://site3.sim/p17");
    }

    #[test]
    fn url_equality_is_structural() {
        let a = Url::new(SiteId(1), PageId(2));
        let b = Url::new(SiteId(1), PageId(2));
        assert_eq!(a, b);
        assert_ne!(a, Url::new(SiteId(1), PageId(3)));
    }
}
