//! The binary wire format shared by snapshots and the write-ahead log.
//!
//! The JSON snapshot codec spends most of its time formatting and parsing
//! decimal floats and field names; at web scale (the paper targets hundreds
//! of millions of pages) that cost dominates checkpointing. [`BinEncode`] /
//! [`BinDecode`] are the streaming replacement: length-prefixed fields,
//! LEB128 varints for integers, and floats as raw IEEE-754 bit patterns —
//! bit-exact by construction, including the revisit queue's `−∞`
//! immediate-priority lane, with no intermediate value tree.
//!
//! Wire conventions (every implementation follows these, so the format is
//! auditable in one place):
//!
//! * `u64`/`usize` — LEB128 varint, low 7 bits first.
//! * `f64` — 8 bytes, little-endian `f64::to_bits`.
//! * `bool` — one byte, `0`/`1`.
//! * `String`/byte strings — varint length prefix, then the bytes.
//! * `Option<T>` — one tag byte (`0` = `None`, `1` = `Some`), then `T`.
//! * Sequences (`Vec`, `VecDeque`, dense maps/sets) — varint element
//!   count, then the elements; maps interleave `key, value`.
//! * Enums — one tag byte, then the variant's fields.
//! * Structs — fields in declaration order, no names. Layout changes are
//!   format changes and must bump the container version (the snapshot and
//!   WAL headers carry one).
//!
//! Decoding never panics: every read is bounds-checked and surfaces a
//! [`BinError`]. Containers additionally checksum their payloads before
//! decoding, so a failed read here means a format bug, not silent
//! corruption.

use crate::dense::{DenseMap, DenseSet};
use crate::id::{PageId, SiteId};
use crate::page::{ChangeRate, Checksum, PageVersion};
use crate::url::Url;
use std::collections::VecDeque;
use std::fmt;

/// A binary decode failure: what the reader expected and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinError {
    msg: String,
}

impl BinError {
    /// Build an error from a message.
    pub fn new(msg: impl fmt::Display) -> BinError {
        BinError { msg: msg.to_string() }
    }
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for BinError {}

/// Bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> BinReader<'a> {
        BinReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders of framed
    /// payloads check this to reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::new(format!(
                "payload truncated: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one byte.
    pub fn byte(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a LEB128 varint.
    pub fn var_u64(&mut self) -> Result<u64, BinError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return Err(BinError::new("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Append a LEB128 varint.
pub fn put_var_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Streaming binary encoding. See the module docs for the wire
/// conventions.
pub trait BinEncode {
    /// Append this value's encoding to `out`.
    fn bin_encode(&self, out: &mut Vec<u8>);
}

/// Streaming binary decoding, the exact inverse of [`BinEncode`].
pub trait BinDecode: Sized {
    /// Consume this value's encoding from `r`.
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Self, BinError>;
}

// ------------------------------------------------------------ primitives

impl BinEncode for u64 {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, *self);
    }
}

impl BinDecode for u64 {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<u64, BinError> {
        r.var_u64()
    }
}

impl BinEncode for u32 {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, u64::from(*self));
    }
}

impl BinDecode for u32 {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<u32, BinError> {
        u32::try_from(r.var_u64()?).map_err(|_| BinError::new("varint overflows u32"))
    }
}

impl BinEncode for usize {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, *self as u64);
    }
}

impl BinDecode for usize {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<usize, BinError> {
        usize::try_from(r.var_u64()?).map_err(|_| BinError::new("varint overflows usize"))
    }
}

impl BinEncode for f64 {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl BinDecode for f64 {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<f64, BinError> {
        let bytes: [u8; 8] = r.take(8)?.try_into().expect("take(8) yields 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

impl BinEncode for bool {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl BinDecode for bool {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<bool, BinError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BinError::new(format!("invalid bool byte {other}"))),
        }
    }
}

impl BinEncode for String {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl BinDecode for String {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<String, BinError> {
        let len = usize::bin_decode(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinError::new("invalid UTF-8 string"))
    }
}

// ------------------------------------------------------------ containers

impl<T: BinEncode> BinEncode for Option<T> {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.bin_encode(out);
            }
        }
    }
}

impl<T: BinDecode> BinDecode for Option<T> {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Option<T>, BinError> {
        match r.byte()? {
            0 => Ok(None),
            1 => T::bin_decode(r).map(Some),
            other => Err(BinError::new(format!("invalid Option tag {other}"))),
        }
    }
}

impl<T: BinEncode> BinEncode for Vec<T> {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.len() as u64);
        for item in self {
            item.bin_encode(out);
        }
    }
}

impl<T: BinDecode> BinDecode for Vec<T> {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Vec<T>, BinError> {
        let len = usize::bin_decode(r)?;
        // A corrupt length must not trigger a pathological allocation; the
        // vector grows as elements actually decode.
        let mut items = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            items.push(T::bin_decode(r)?);
        }
        Ok(items)
    }
}

impl<T: BinEncode> BinEncode for VecDeque<T> {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.len() as u64);
        for item in self {
            item.bin_encode(out);
        }
    }
}

impl<T: BinDecode> BinDecode for VecDeque<T> {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<VecDeque<T>, BinError> {
        Vec::<T>::bin_decode(r).map(VecDeque::from)
    }
}

impl<T: BinEncode, E: BinEncode> BinEncode for Result<T, E> {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.bin_encode(out);
            }
            Err(e) => {
                out.push(1);
                e.bin_encode(out);
            }
        }
    }
}

impl<T: BinDecode, E: BinDecode> BinDecode for Result<T, E> {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Result<T, E>, BinError> {
        match r.byte()? {
            0 => T::bin_decode(r).map(Ok),
            1 => E::bin_decode(r).map(Err),
            other => Err(BinError::new(format!("invalid Result tag {other}"))),
        }
    }
}

impl<A: BinEncode, B: BinEncode> BinEncode for (A, B) {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.0.bin_encode(out);
        self.1.bin_encode(out);
    }
}

impl<A: BinDecode, B: BinDecode> BinDecode for (A, B) {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<(A, B), BinError> {
        Ok((A::bin_decode(r)?, B::bin_decode(r)?))
    }
}

// ------------------------------------------------- workspace value types

impl BinEncode for PageId {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.0);
    }
}

impl BinDecode for PageId {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<PageId, BinError> {
        r.var_u64().map(PageId)
    }
}

impl BinEncode for SiteId {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, u64::from(self.0));
    }
}

impl BinDecode for SiteId {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<SiteId, BinError> {
        u32::bin_decode(r).map(SiteId)
    }
}

impl BinEncode for Url {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.site.bin_encode(out);
        self.page.bin_encode(out);
    }
}

impl BinDecode for Url {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Url, BinError> {
        Ok(Url { site: SiteId::bin_decode(r)?, page: PageId::bin_decode(r)? })
    }
}

impl BinEncode for Checksum {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.0);
    }
}

impl BinDecode for Checksum {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Checksum, BinError> {
        r.var_u64().map(Checksum)
    }
}

impl BinEncode for PageVersion {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.0);
    }
}

impl BinDecode for PageVersion {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<PageVersion, BinError> {
        r.var_u64().map(PageVersion)
    }
}

impl BinEncode for ChangeRate {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.0.bin_encode(out);
    }
}

impl BinDecode for ChangeRate {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<ChangeRate, BinError> {
        f64::bin_decode(r).map(ChangeRate)
    }
}

impl<V: BinEncode> BinEncode for DenseMap<V> {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.len() as u64);
        for (p, v) in self.iter() {
            p.bin_encode(out);
            v.bin_encode(out);
        }
    }
}

impl<V: BinDecode> BinDecode for DenseMap<V> {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<DenseMap<V>, BinError> {
        let len = usize::bin_decode(r)?;
        let mut map = DenseMap::new();
        for _ in 0..len {
            let p = PageId::bin_decode(r)?;
            map.insert(p, V::bin_decode(r)?);
        }
        Ok(map)
    }
}

impl BinEncode for DenseSet {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        put_var_u64(out, self.len() as u64);
        for p in self.iter() {
            p.bin_encode(out);
        }
    }
}

impl BinDecode for DenseSet {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<DenseSet, BinError> {
        let len = usize::bin_decode(r)?;
        let mut set = DenseSet::new();
        for _ in 0..len {
            set.insert(PageId::bin_decode(r)?);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: BinEncode + BinDecode + PartialEq + fmt::Debug>(value: T) {
        let mut out = Vec::new();
        value.bin_encode(&mut out);
        let mut r = BinReader::new(&out);
        let back = T::bin_decode(&mut r).expect("decodes");
        assert!(r.is_exhausted(), "trailing bytes after {value:?}");
        assert_eq!(back, value);
    }

    #[test]
    fn varints_roundtrip_across_magnitudes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
        let mut out = Vec::new();
        put_var_u64(&mut out, 127);
        assert_eq!(out.len(), 1, "small values stay one byte");
    }

    #[test]
    fn floats_are_bit_exact_including_nonfinite() {
        for x in [
            0.0f64,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::from_bits(1),
            std::f64::consts::PI,
        ] {
            let mut out = Vec::new();
            x.bin_encode(&mut out);
            let back = f64::bin_decode(&mut BinReader::new(&out)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        // NaN bit patterns survive too (equality can't check this one).
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut out = Vec::new();
        nan.bin_encode(&mut out);
        let back = f64::bin_decode(&mut BinReader::new(&out)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn value_types_roundtrip() {
        roundtrip(Url::new(SiteId(7), PageId(u64::from(u32::MAX) + 5)));
        roundtrip(Checksum(u64::MAX));
        roundtrip(ChangeRate(1.0 / 60.0));
        roundtrip(Some("héllo\n".to_string()));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![PageId(1), PageId(0), PageId(999)]);
        roundtrip(VecDeque::from(vec![(SiteId(1), 0.5f64), (SiteId(2), -1.5)]));
    }

    #[test]
    fn dense_containers_roundtrip() {
        let map: DenseMap<f64> =
            [(PageId(4), 1.25), (PageId(0), -0.0), (PageId(77), f64::NEG_INFINITY)]
                .into_iter()
                .collect();
        let mut out = Vec::new();
        map.bin_encode(&mut out);
        let back = DenseMap::<f64>::bin_decode(&mut BinReader::new(&out)).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(PageId(77)).unwrap().to_bits(), f64::NEG_INFINITY.to_bits());

        let set: DenseSet = [PageId(3), PageId(64), PageId(65)].into_iter().collect();
        let mut out = Vec::new();
        set.bin_encode(&mut out);
        let back = DenseSet::bin_decode(&mut BinReader::new(&out)).unwrap();
        assert_eq!(back.to_vec(), set.to_vec());
    }

    #[test]
    fn truncated_and_malformed_payloads_error_cleanly() {
        let mut out = Vec::new();
        "hello".to_string().bin_encode(&mut out);
        out.truncate(out.len() - 2);
        assert!(String::bin_decode(&mut BinReader::new(&out)).is_err());

        assert!(bool::bin_decode(&mut BinReader::new(&[7])).is_err());
        assert!(Option::<u64>::bin_decode(&mut BinReader::new(&[9])).is_err());
        // 10-byte varint with a continuation that overflows u64.
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(u64::bin_decode(&mut BinReader::new(&overflow)).is_err());
        assert!(u64::bin_decode(&mut BinReader::new(&[])).is_err());
    }
}
