//! Page-level value types: checksums, versions, change rates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A page content digest.
///
/// §5.3: *"the UpdateModule records the checksum of the page from the last
/// crawl and compares that checksum with the one from the current crawl"* —
/// change detection in the crawler is checksum equality, nothing more. The
/// simulator produces checksums deterministically from `(page, version)` so
/// two crawls of an unchanged page always collide, and changed content never
/// does (64-bit digest; collisions are negligible at our scales and the paper
/// makes the same implicit assumption).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Checksum(pub u64);

impl Checksum {
    /// FNV-1a digest of a byte string. Small, dependency-free, deterministic
    /// across runs — all we need from a page digest here.
    pub fn of_bytes(bytes: &[u8]) -> Checksum {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        Checksum(h)
    }

    /// Digest of a `(page, version)` pair; used by the simulator to produce
    /// per-version checksums without materializing content.
    pub fn of_version(page: u64, version: u64) -> Checksum {
        // SplitMix64-style mix of the two words; avalanche is plenty for a
        // change-detection digest.
        let mut z = page
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(version.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(0x94d0_49bb_1331_11eb);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Checksum(z ^ (z >> 31))
    }
}

impl fmt::Debug for Checksum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cksum:{:016x}", self.0)
    }
}

/// A monotonically increasing content version of a page.
///
/// Version 0 is the content at page birth; each Poisson change event bumps
/// the version by one. The simulator's ground truth; the crawler only ever
/// sees the derived [`Checksum`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PageVersion(pub u64);

impl PageVersion {
    /// The initial version at page birth.
    pub const INITIAL: PageVersion = PageVersion(0);

    /// The next version after a change event.
    #[inline]
    pub fn next(self) -> PageVersion {
        PageVersion(self.0 + 1)
    }
}

/// A Poisson change rate λ, in events per **day**.
///
/// §3.4 verifies that page changes follow a Poisson process with a
/// page-specific rate; this newtype keeps rates from being confused with
/// frequencies-per-month or intervals.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Serialize, Deserialize)]
pub struct ChangeRate(pub f64);

impl ChangeRate {
    /// A page that never changes.
    pub const ZERO: ChangeRate = ChangeRate(0.0);

    /// Rate from a mean change interval in days (λ = 1 / interval).
    pub fn per_interval_days(days: f64) -> ChangeRate {
        assert!(days > 0.0, "mean change interval must be positive");
        ChangeRate(1.0 / days)
    }

    /// Events per day.
    #[inline]
    pub const fn per_day(self) -> f64 {
        self.0
    }

    /// Events per 30-day month.
    #[inline]
    pub fn per_month(self) -> f64 {
        self.0 * crate::time::MONTH
    }

    /// Mean interval between changes in days (∞ for rate 0).
    #[inline]
    pub fn mean_interval_days(self) -> f64 {
        if self.0 == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.0
        }
    }

    /// Probability that the page changes at least once within `dt` days:
    /// `1 − e^{−λ·dt}` (Theorem 1 of the paper).
    pub fn change_probability(self, dt: f64) -> f64 {
        debug_assert!(dt >= 0.0);
        -(-self.0 * dt).exp_m1()
    }

    /// True when the rate is finite and non-negative.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for ChangeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ={:.4}/day", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        assert_eq!(Checksum::of_bytes(b"hello"), Checksum::of_bytes(b"hello"));
        assert_ne!(Checksum::of_bytes(b"hello"), Checksum::of_bytes(b"hellp"));
        assert_eq!(Checksum::of_version(3, 7), Checksum::of_version(3, 7));
        assert_ne!(Checksum::of_version(3, 7), Checksum::of_version(3, 8));
        assert_ne!(Checksum::of_version(3, 7), Checksum::of_version(4, 7));
    }

    #[test]
    fn version_advances() {
        let v = PageVersion::INITIAL;
        assert_eq!(v.next(), PageVersion(1));
        assert_eq!(v.next().next(), PageVersion(2));
    }

    #[test]
    fn rate_conversions() {
        let r = ChangeRate::per_interval_days(10.0);
        assert!((r.per_day() - 0.1).abs() < 1e-12);
        assert!((r.mean_interval_days() - 10.0).abs() < 1e-12);
        assert!((r.per_month() - 3.0).abs() < 1e-12);
        assert_eq!(ChangeRate::ZERO.mean_interval_days(), f64::INFINITY);
    }

    #[test]
    fn change_probability_matches_theorem1() {
        let r = ChangeRate(0.5);
        let p = r.change_probability(2.0);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(r.change_probability(0.0), 0.0);
        assert_eq!(ChangeRate::ZERO.change_probability(100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = ChangeRate::per_interval_days(0.0);
    }

    #[test]
    fn validity() {
        assert!(ChangeRate(0.0).is_valid());
        assert!(ChangeRate(2.5).is_valid());
        assert!(!ChangeRate(-1.0).is_valid());
        assert!(!ChangeRate(f64::NAN).is_valid());
    }
}
