//! Top-level domain classes used throughout the paper.
//!
//! Table 1 groups the 270 monitored sites into four classes: `com`, `edu`,
//! `netorg` (".net" + ".org") and `gov` (".gov" + ".mil"). Every per-domain
//! figure in §3 (Figures 2b, 4b, 5b) is broken down over these classes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The four domain classes of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// Commercial sites (`.com`) — the most dynamic class in every §3 result.
    Com,
    /// Educational sites (`.edu`) — among the most static.
    Edu,
    /// `.net` and `.org` sites, grouped as in Table 1.
    NetOrg,
    /// `.gov` and `.mil` sites, grouped as in Table 1; the most static class.
    Gov,
}

impl Domain {
    /// All four domain classes, in Table 1 order.
    pub const ALL: [Domain; 4] = [Domain::Com, Domain::Edu, Domain::NetOrg, Domain::Gov];

    /// Number of monitored sites in this class in the paper's experiment
    /// (Table 1: com 132, edu 78, netorg 30, gov 30).
    pub const fn paper_site_count(self) -> usize {
        match self {
            Domain::Com => 132,
            Domain::Edu => 78,
            Domain::NetOrg => 30,
            Domain::Gov => 30,
        }
    }

    /// Total sites monitored in the paper (Table 1).
    pub const PAPER_TOTAL_SITES: usize = 270;

    /// Fraction of monitored sites in this class.
    pub fn paper_site_fraction(self) -> f64 {
        self.paper_site_count() as f64 / Self::PAPER_TOTAL_SITES as f64
    }

    /// Short lowercase label used in tables and figures.
    pub const fn label(self) -> &'static str {
        match self {
            Domain::Com => "com",
            Domain::Edu => "edu",
            Domain::NetOrg => "netorg",
            Domain::Gov => "gov",
        }
    }

    /// Classify a hostname suffix the way Table 1 does. Unknown suffixes map
    /// to `None` (the paper's candidate list only contained these four
    /// classes).
    pub fn from_host(host: &str) -> Option<Domain> {
        let suffix = host.rsplit('.').next()?;
        match suffix {
            "com" => Some(Domain::Com),
            "edu" => Some(Domain::Edu),
            "net" | "org" => Some(Domain::NetOrg),
            "gov" | "mil" => Some(Domain::Gov),
            _ => None,
        }
    }

    /// Stable small index (0..4) for array-indexed per-domain accumulators.
    pub const fn index(self) -> usize {
        match self {
            Domain::Com => 0,
            Domain::Edu => 1,
            Domain::NetOrg => 2,
            Domain::Gov => 3,
        }
    }

    /// Inverse of [`Domain::index`].
    pub const fn from_index(i: usize) -> Option<Domain> {
        match i {
            0 => Some(Domain::Com),
            1 => Some(Domain::Edu),
            2 => Some(Domain::NetOrg),
            3 => Some(Domain::Gov),
            _ => None,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Domain {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "com" => Ok(Domain::Com),
            "edu" => Ok(Domain::Edu),
            "netorg" | "net" | "org" => Ok(Domain::NetOrg),
            "gov" | "mil" => Ok(Domain::Gov),
            other => Err(format!("unknown domain class: {other}")),
        }
    }
}

/// A per-domain accumulator: one slot per Table 1 domain class.
///
/// This is the workhorse of every "(b) For each domain" figure.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PerDomain<T> {
    slots: [T; 4],
}

impl<T> PerDomain<T> {
    /// Build from a function of the domain.
    pub fn from_fn(mut f: impl FnMut(Domain) -> T) -> Self {
        PerDomain {
            slots: [
                f(Domain::Com),
                f(Domain::Edu),
                f(Domain::NetOrg),
                f(Domain::Gov),
            ],
        }
    }

    /// Shared access to one domain's slot.
    #[inline]
    pub fn get(&self, d: Domain) -> &T {
        &self.slots[d.index()]
    }

    /// Mutable access to one domain's slot.
    #[inline]
    pub fn get_mut(&mut self, d: Domain) -> &mut T {
        &mut self.slots[d.index()]
    }

    /// Iterate `(domain, value)` pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (Domain, &T)> {
        Domain::ALL.iter().map(move |&d| (d, &self.slots[d.index()]))
    }

    /// Map every slot through `f`, keeping domain association.
    pub fn map<U>(&self, mut f: impl FnMut(Domain, &T) -> U) -> PerDomain<U> {
        PerDomain {
            slots: [
                f(Domain::Com, &self.slots[0]),
                f(Domain::Edu, &self.slots[1]),
                f(Domain::NetOrg, &self.slots[2]),
                f(Domain::Gov, &self.slots[3]),
            ],
        }
    }
}

impl<T> std::ops::Index<Domain> for PerDomain<T> {
    type Output = T;
    #[inline]
    fn index(&self, d: Domain) -> &T {
        self.get(d)
    }
}

impl<T> std::ops::IndexMut<Domain> for PerDomain<T> {
    #[inline]
    fn index_mut(&mut self, d: Domain) -> &mut T {
        self.get_mut(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts() {
        let total: usize = Domain::ALL.iter().map(|d| d.paper_site_count()).sum();
        assert_eq!(total, Domain::PAPER_TOTAL_SITES);
        assert_eq!(Domain::Com.paper_site_count(), 132);
        assert_eq!(Domain::Edu.paper_site_count(), 78);
        assert_eq!(Domain::NetOrg.paper_site_count(), 30);
        assert_eq!(Domain::Gov.paper_site_count(), 30);
    }

    #[test]
    fn fractions_sum_to_one() {
        let sum: f64 = Domain::ALL.iter().map(|d| d.paper_site_fraction()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn host_classification() {
        assert_eq!(Domain::from_host("www.yahoo.com"), Some(Domain::Com));
        assert_eq!(Domain::from_host("www.stanford.edu"), Some(Domain::Edu));
        assert_eq!(Domain::from_host("example.org"), Some(Domain::NetOrg));
        assert_eq!(Domain::from_host("irs.gov"), Some(Domain::Gov));
        assert_eq!(Domain::from_host("navy.mil"), Some(Domain::Gov));
        assert_eq!(Domain::from_host("example.de"), None);
    }

    #[test]
    fn index_roundtrip() {
        for d in Domain::ALL {
            assert_eq!(Domain::from_index(d.index()), Some(d));
        }
        assert_eq!(Domain::from_index(4), None);
    }

    #[test]
    fn parse_labels() {
        for d in Domain::ALL {
            assert_eq!(d.label().parse::<Domain>().unwrap(), d);
        }
        assert!("xyz".parse::<Domain>().is_err());
    }

    #[test]
    fn per_domain_accumulator() {
        let mut acc: PerDomain<u32> = PerDomain::default();
        acc[Domain::Com] += 2;
        acc[Domain::Gov] += 1;
        assert_eq!(acc[Domain::Com], 2);
        assert_eq!(acc[Domain::Edu], 0);
        let doubled = acc.map(|_, v| v * 2);
        assert_eq!(doubled[Domain::Com], 4);
        let pairs: Vec<_> = acc.iter().map(|(d, v)| (d.label(), *v)).collect();
        assert_eq!(pairs, vec![("com", 2), ("edu", 0), ("netorg", 0), ("gov", 1)]);
    }
}
