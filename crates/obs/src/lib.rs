//! Observability for the webevo crawl engines: structured spans, a
//! mergeable metrics registry, and exporters for traces, metrics, and
//! flamegraph profiles.
//!
//! The crawl engines are deterministic discrete-event loops whose outputs
//! must stay byte-identical across runs, kills, and resumes — so the one
//! hard rule of this crate is that **observation never feeds back into
//! crawl decisions**. An [`ObsSink`] is a write-only channel: engines,
//! checkpointer, and fleet push spans and metric samples into it, wall
//! times are taken out-of-band from a monotonic epoch, and nothing an
//! instrumented component does ever reads an observed value back. The
//! sink is also deliberately absent from `CrawlerState` and every
//! snapshot/WAL format: a traced run and an untraced run produce the same
//! bytes everywhere except the trace files themselves
//! (`tests/determinism.rs` pins this for all three engines and a sharded
//! fleet).
//!
//! # Architecture
//!
//! * [`ObsSink`] — a cheaply clonable handle. [`ObsSink::noop`] (the
//!   default everywhere) carries no state at all: every call is one
//!   `Option` check, so uninstrumented runs pay effectively nothing.
//!   [`ObsSink::recording`] shares one lock-protected store between all
//!   clones; [`ObsSink::for_shard`] derives a child handle that stamps
//!   everything it records with a [`ShardId`], which is how one fleet-wide
//!   sink yields per-shard series.
//! * **Spans** ([`ObsSink::span`], [`SpanGuard`]) — hierarchical stages
//!   ([`Stage`]): drive → pass/cycle → fetch batch, WAL flush, snapshot
//!   encode/decode, exchange barrier, rebalance. Each span records wall
//!   time *and* the logical clock ([`LogicalClock`]: day + fetch sequence,
//!   plus the sink's shard), so traces line up across shards and across
//!   replays even though wall times differ run to run.
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges, and
//!   fixed-bucket histograms with deterministic bucket edges, mergeable
//!   across shards the same way `CrawlMetrics::merge_weighted` merges the
//!   crawl series.
//! * **Exporters** — [`ObsSink::write_trace_jsonl`] (one JSON object per
//!   span), [`ObsSink::write_prometheus`] (text exposition, shard label
//!   per series), [`ObsSink::write_folded`] (folded stacks for
//!   `flamegraph.pl` / inferno), and [`ObsSink::stage_report`] (the
//!   end-of-run human-readable stage-time table).
//!
//! # Example: a traced crawl session
//!
//! ```
//! use webevo_core::engine::{CrawlBudget, EngineKind};
//! use webevo_obs::ObsSink;
//! use webevo_sim::{UniverseConfig, WebUniverse};
//! use webevo_store::CrawlSession;
//!
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(1));
//! let obs = ObsSink::recording();
//! let mut session = CrawlSession::builder()
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(20).with_cycle_days(5.0))
//!     .universe(&universe)
//!     .obs(obs.clone())
//!     .build()
//!     .expect("a valid session");
//! session.run(6.0).expect("the crawl runs");
//!
//! // The run emitted drive/pass/fetch spans and fetch-outcome counters.
//! let mut trace = Vec::new();
//! obs.write_trace_jsonl(&mut trace).expect("trace serializes");
//! assert!(!trace.is_empty());
//! let merged = obs.merged_registry().expect("one sink, one edge set");
//! assert!(merged.counter("fetch_ok_total") > 0);
//! println!("{}", obs.stage_report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;

pub use registry::{Histogram, MetricsRegistry, ObsError};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use webevo_types::ShardId;

/// The instrumented stages of a crawl, from outermost to innermost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// One `drive(until)` call on an engine — the outermost span of a
    /// crawl leg (a fleet emits one per shard per barrier segment).
    Drive,
    /// A pass boundary: ranking run + hook flush on the incremental and
    /// threaded engines, the shadow→current swap on the periodic engine.
    Pass,
    /// One full periodic crawl cycle (batch window + idle tail).
    Cycle,
    /// The fetching work between two consecutive boundaries.
    FetchBatch,
    /// Encoding and atomically writing one snapshot.
    SnapshotEncode,
    /// Reading and decoding a checkpoint during recovery.
    SnapshotDecode,
    /// One pass-boundary WAL flush (buffer → frames → `sync_data`).
    WalFlush,
    /// One fleet exchange barrier: outbox drain, routing, injection, sync.
    ExchangeBarrier,
    /// A fleet rebalance: state migration onto a new shard plan.
    Rebalance,
    /// Building and publishing one immutable serving view at a pass/cycle
    /// boundary (the epoch swap of `webevo-serve`).
    ViewSwap,
}

impl Stage {
    /// The stable snake_case name used in every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Drive => "drive",
            Stage::Pass => "pass",
            Stage::Cycle => "cycle",
            Stage::FetchBatch => "fetch_batch",
            Stage::SnapshotEncode => "snapshot_encode",
            Stage::SnapshotDecode => "snapshot_decode",
            Stage::WalFlush => "wal_flush",
            Stage::ExchangeBarrier => "exchange_barrier",
            Stage::Rebalance => "rebalance",
            Stage::ViewSwap => "view_swap",
        }
    }
}

/// The deterministic half of a span stamp: where the *simulation* stood
/// when the span opened. Wall times differ run to run; the logical clock
/// is what lines traces up across shards, replays, and machines.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LogicalClock {
    /// Simulated day.
    pub day: f64,
    /// Fetch sequence number (0 where no fetch counter applies, e.g.
    /// fleet-level barriers count exchanges instead).
    pub fetch_seq: u64,
}

impl LogicalClock {
    /// A stamp at simulated `day` and fetch sequence `fetch_seq`.
    pub fn new(day: f64, fetch_seq: u64) -> LogicalClock {
        LogicalClock { day, fetch_seq }
    }
}

/// One recorded span. Public so exporters and tests can inspect traces;
/// instrumented code only ever sees [`SpanGuard`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The shard context of the recording sink (`None` for the fleet
    /// coordinator or a standalone session).
    pub shard: Option<ShardId>,
    /// Which stage.
    pub stage: Stage,
    /// Semicolon-joined stage path from the context's root span, e.g.
    /// `drive;fetch_batch` — the folded-stack identity of the span.
    pub path: String,
    /// Logical clock at open.
    pub clock: LogicalClock,
    /// Wall-clock microseconds since the sink's epoch at open.
    pub start_us: u64,
    /// Wall-clock microseconds since the sink's epoch at close (`None`
    /// while the span is still open).
    pub end_us: Option<u64>,
    /// Index of the enclosing span in the trace, if any.
    pub parent: Option<usize>,
}

impl SpanRecord {
    /// Wall duration in microseconds (0 for a still-open span).
    pub fn duration_us(&self) -> u64 {
        self.end_us.unwrap_or(self.start_us).saturating_sub(self.start_us)
    }
}

/// The shared store behind a recording sink. Span stacks are kept per
/// shard context: each shard's instrumented stages run on one thread at a
/// time (the fleet's lockstep drive), so per-context nesting is strict.
#[derive(Debug)]
pub(crate) struct ObsState {
    epoch: Instant,
    pub(crate) spans: Vec<SpanRecord>,
    stacks: BTreeMap<Option<ShardId>, Vec<usize>>,
    pub(crate) registries: BTreeMap<Option<ShardId>, MetricsRegistry>,
}

impl ObsState {
    fn new() -> ObsState {
        ObsState {
            epoch: Instant::now(),
            spans: Vec::new(),
            stacks: BTreeMap::new(),
            registries: BTreeMap::new(),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A write-only observability handle. See the crate docs; the default
/// ([`ObsSink::noop`]) records nothing and costs one branch per call.
#[derive(Clone, Debug, Default)]
pub struct ObsSink {
    inner: Option<Arc<Mutex<ObsState>>>,
    shard: Option<ShardId>,
}

impl ObsSink {
    /// The no-op sink: every operation returns immediately. This is the
    /// default on every builder, so uninstrumented runs stay effectively
    /// free.
    pub fn noop() -> ObsSink {
        ObsSink::default()
    }

    /// A recording sink. All clones (including [`ObsSink::for_shard`]
    /// children) share one store; exporters on any handle see the whole
    /// trace.
    pub fn recording() -> ObsSink {
        ObsSink { inner: Some(Arc::new(Mutex::new(ObsState::new()))), shard: None }
    }

    /// A child handle that stamps everything it records with `shard`.
    /// Spans and metrics recorded through it land in that shard's series;
    /// the store (and epoch) stays shared with the parent.
    pub fn for_shard(&self, shard: ShardId) -> ObsSink {
        ObsSink { inner: self.inner.clone(), shard: Some(shard) }
    }

    /// Whether this sink records anything. Hot paths may use this to skip
    /// preparing values, exactly like `CrawlHook::active`.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shard context this handle stamps, if any.
    pub fn shard(&self) -> Option<ShardId> {
        self.shard
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, ObsState>> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().expect("no recorder panicked holding the obs lock"))
    }

    /// Open a span for `stage` at logical time `clock`. The span closes —
    /// and its wall duration is recorded — when the returned guard drops.
    /// On a no-op sink this returns an inert guard.
    pub fn span(&self, stage: Stage, clock: LogicalClock) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { ctx: None };
        };
        let mut state = inner.lock().expect("no recorder panicked holding the obs lock");
        let start_us = state.now_us();
        let stack = state.stacks.entry(self.shard).or_default();
        let parent = stack.last().copied();
        let path = match parent {
            Some(p) => {
                let mut path = state.spans[p].path.clone();
                path.push(';');
                path.push_str(stage.name());
                path
            }
            None => stage.name().to_string(),
        };
        let idx = state.spans.len();
        state.spans.push(SpanRecord {
            shard: self.shard,
            stage,
            path,
            clock,
            start_us,
            end_us: None,
            parent,
        });
        state.stacks.entry(self.shard).or_default().push(idx);
        SpanGuard { ctx: Some(SpanCtx { state: Arc::clone(inner), shard: self.shard, idx }) }
    }

    /// Add `delta` to the counter `name` in this handle's shard context.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(mut state) = self.lock() {
            state.registries.entry(self.shard).or_default().add(name, delta);
        }
    }

    /// Set the gauge `name` to `value` in this handle's shard context.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(mut state) = self.lock() {
            state.registries.entry(self.shard).or_default().gauge(name, value);
        }
    }

    /// Record `value` into the fixed-bucket histogram `name` in this
    /// handle's shard context.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(mut state) = self.lock() {
            state.registries.entry(self.shard).or_default().observe(name, value);
        }
    }

    /// Every recorded span, in open order. Empty on a no-op sink.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().map(|state| state.spans.clone()).unwrap_or_default()
    }

    /// Every shard context's registry, ascending by shard (`None` — the
    /// unsharded context — first). Empty on a no-op sink.
    pub fn registries(&self) -> Vec<(Option<ShardId>, MetricsRegistry)> {
        self.lock()
            .map(|state| {
                state
                    .registries
                    .iter()
                    .map(|(shard, registry)| (*shard, registry.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All shard contexts' registries merged into one, in ascending shard
    /// order — counters sum, gauges keep their maximum, histograms add
    /// bucket-wise. Fails if two shards ever disagreed on a histogram's
    /// bucket edges (they cannot, with this crate's fixed default edges).
    pub fn merged_registry(&self) -> Result<MetricsRegistry, ObsError> {
        let mut merged = MetricsRegistry::default();
        for (_, registry) in self.registries() {
            merged.merge_from(&registry)?;
        }
        Ok(merged)
    }
}

struct SpanCtx {
    state: Arc<Mutex<ObsState>>,
    shard: Option<ShardId>,
    idx: usize,
}

/// RAII guard for an open span: records the closing wall time on drop.
/// Inert (and free) when obtained from a no-op sink.
pub struct SpanGuard {
    ctx: Option<SpanCtx>,
}

impl SpanGuard {
    /// Whether this guard belongs to a recording sink.
    pub fn is_recording(&self) -> bool {
        self.ctx.is_some()
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").field("recording", &self.is_recording()).finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx.take() else { return };
        let mut state = ctx.state.lock().expect("no recorder panicked holding the obs lock");
        let end = state.now_us();
        state.spans[ctx.idx].end_us = Some(end);
        if let Some(stack) = state.stacks.get_mut(&ctx.shard) {
            if let Some(pos) = stack.iter().rposition(|&i| i == ctx.idx) {
                stack.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let sink = ObsSink::noop();
        assert!(!sink.enabled());
        {
            let _span = sink.span(Stage::Drive, LogicalClock::new(1.0, 5));
        }
        sink.add("fetch_ok_total", 3);
        sink.observe("wal_flush_records", 12.0);
        assert!(sink.spans().is_empty());
        assert!(sink.registries().is_empty());
        assert_eq!(sink.merged_registry().unwrap().counter("fetch_ok_total"), 0);
    }

    #[test]
    fn spans_nest_per_context_and_stamp_the_logical_clock() {
        let sink = ObsSink::recording();
        {
            let _drive = sink.span(Stage::Drive, LogicalClock::new(0.0, 0));
            {
                let _batch = sink.span(Stage::FetchBatch, LogicalClock::new(0.5, 17));
            }
            let _pass = sink.span(Stage::Pass, LogicalClock::new(1.0, 40));
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].path, "drive");
        assert_eq!(spans[1].path, "drive;fetch_batch");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].clock.fetch_seq, 17);
        assert_eq!(spans[2].path, "drive;pass");
        assert!(spans.iter().all(|s| s.end_us.is_some()));
        // Children close before (or when) the parent does.
        assert!(spans[1].end_us.unwrap() <= spans[0].end_us.unwrap());
    }

    #[test]
    fn shard_handles_share_the_store_but_separate_the_series() {
        let fleet = ObsSink::recording();
        let s0 = fleet.for_shard(ShardId(0));
        let s1 = fleet.for_shard(ShardId(1));
        {
            let _a = s0.span(Stage::Drive, LogicalClock::default());
            // A second context opens its own root: stacks are per shard.
            let _b = s1.span(Stage::Drive, LogicalClock::default());
            let _c = s1.span(Stage::WalFlush, LogicalClock::default());
        }
        s0.add("fetch_ok_total", 2);
        s1.add("fetch_ok_total", 5);
        fleet.add("exchange_barriers_total", 1);
        let spans = fleet.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].shard, Some(ShardId(0)));
        assert_eq!(spans[0].path, "drive");
        assert_eq!(spans[2].shard, Some(ShardId(1)));
        assert_eq!(spans[2].path, "drive;wal_flush");
        let registries = fleet.registries();
        assert_eq!(registries.len(), 3); // fleet context + two shards
        assert_eq!(registries[0].0, None);
        let merged = fleet.merged_registry().unwrap();
        assert_eq!(merged.counter("fetch_ok_total"), 7);
        assert_eq!(merged.counter("exchange_barriers_total"), 1);
    }

    #[test]
    fn stage_names_are_stable() {
        // Exporter output is a schema; renaming a stage is a breaking
        // change and must be deliberate.
        let names: Vec<&str> = [
            Stage::Drive,
            Stage::Pass,
            Stage::Cycle,
            Stage::FetchBatch,
            Stage::SnapshotEncode,
            Stage::SnapshotDecode,
            Stage::WalFlush,
            Stage::ExchangeBarrier,
            Stage::Rebalance,
            Stage::ViewSwap,
        ]
        .into_iter()
        .map(Stage::name)
        .collect();
        assert_eq!(
            names,
            [
                "drive",
                "pass",
                "cycle",
                "fetch_batch",
                "snapshot_encode",
                "snapshot_decode",
                "wal_flush",
                "exchange_barrier",
                "rebalance",
                "view_swap"
            ]
        );
    }
}
