//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, mergeable across shards.
//!
//! Everything here is deterministic given the recorded values: names are
//! kept in `BTreeMap`s (stable iteration order), and histograms use one
//! fixed set of bucket edges ([`Histogram::DEFAULT_EDGES`], powers of
//! two), so two shards' histograms always merge bucket-for-bucket exactly
//! like `CrawlMetrics::merge_weighted` merges the crawl series. The only
//! way a merge can fail is combining registries built with different
//! custom edges — a typed [`ObsError::EdgeMismatch`], mirroring the
//! grid-mismatch error of the metrics merge.

use std::collections::BTreeMap;
use std::fmt;

/// A typed observability error.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsError {
    /// Two histograms under the same name carry different bucket edges
    /// and cannot be merged.
    EdgeMismatch {
        /// The histogram's name.
        name: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::EdgeMismatch { name } => write!(
                f,
                "histogram {name:?} was recorded with different bucket edges on \
                 different shards and cannot be merged"
            ),
        }
    }
}

impl std::error::Error for ObsError {}

/// A fixed-bucket histogram: `buckets[i]` counts values `<= edges[i]`,
/// with one overflow bucket at the end. Edges are set at first
/// observation and never change, so histograms recorded independently on
/// many shards merge by bucket-wise addition.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// The default bucket edges: powers of two from 1 to 2³⁰. One fixed
    /// geometric ladder covers every unit this crate records — durations
    /// in microseconds, sizes in bytes, depths in items — at ~2× relative
    /// resolution, and fixing it globally is what makes every histogram
    /// mergeable with every peer shard's.
    pub const DEFAULT_EDGES: [f64; 31] = {
        let mut edges = [0.0; 31];
        let mut i = 0;
        while i < 31 {
            edges[i] = (1u64 << i) as f64;
            i += 1;
        }
        edges
    };

    /// An empty histogram over [`Histogram::DEFAULT_EDGES`].
    pub fn new() -> Histogram {
        Histogram::with_edges(Histogram::DEFAULT_EDGES.to_vec())
    }

    /// An empty histogram over custom ascending `edges`.
    pub fn with_edges(edges: Vec<f64>) -> Histogram {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        let buckets = vec![0; edges.len() + 1];
        Histogram { edges, buckets, count: 0, sum: 0.0 }
    }

    /// The bucket upper bounds.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Cumulative-friendly raw bucket counts (`edges.len() + 1` long; the
    /// last is the overflow bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.edges.partition_point(|&edge| edge < value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Add `other`'s observations into this histogram.
    fn merge_from(&mut self, other: &Histogram, name: &str) -> Result<(), ObsError> {
        if self.edges != other.edges {
            return Err(ObsError::EdgeMismatch { name: name.to_string() });
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// One shard context's named metrics. Obtained from
/// `ObsSink::registries`/`ObsSink::merged_registry`; instrumented code
/// records through the sink, never through this type directly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(counter) = self.counters.get_mut(name) {
            *counter += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into the histogram `name` (default edges).
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(histogram) = self.histograms.get_mut(name) {
            histogram.observe(value);
        } else {
            let mut histogram = Histogram::new();
            histogram.observe(value);
            self.histograms.insert(name.to_string(), histogram);
        }
    }

    /// The counter's value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's value, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any value was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ascending.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, &value)| (name.as_str(), value))
    }

    /// All gauges, name-ascending.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(name, &value)| (name.as_str(), value))
    }

    /// All histograms, name-ascending.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(name, histogram)| (name.as_str(), histogram))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters sum, gauges keep
    /// the maximum (a fleet-level "worst shard" view — per-shard values
    /// stay available on the per-shard registries), histograms add
    /// bucket-wise. Fails only on a histogram edge mismatch.
    pub fn merge_from(&mut self, other: &MetricsRegistry) -> Result<(), ObsError> {
        for (name, &value) in &other.counters {
            self.add(name, value);
        }
        for (name, &value) in &other.gauges {
            let merged = match self.gauges.get(name) {
                Some(&mine) => mine.max(value),
                None => value,
            };
            self.gauges.insert(name.clone(), merged);
        }
        for (name, histogram) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge_from(histogram, name)?;
            } else {
                self.histograms.insert(name.clone(), histogram.clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        h.observe(1.0); // <= 1 → bucket 0
        h.observe(3.0); // <= 4 → bucket 2
        h.observe(1024.0); // <= 1024 → bucket 10
        h.observe(3e9); // beyond 2^30 → overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(*h.buckets().last().unwrap(), 1);
        assert!((h.sum() - (1.0 + 3.0 + 1024.0 + 3e9)).abs() < 1e-6);
    }

    #[test]
    fn registries_merge_deterministically() {
        let mut a = MetricsRegistry::default();
        a.add("fetch_ok_total", 10);
        a.gauge("queue_depth", 40.0);
        a.observe("wal_flush_records", 100.0);
        let mut b = MetricsRegistry::default();
        b.add("fetch_ok_total", 5);
        b.add("fetch_transient_total", 2);
        b.gauge("queue_depth", 70.0);
        b.observe("wal_flush_records", 200.0);

        let mut ab = a.clone();
        ab.merge_from(&b).unwrap();
        let mut ba = b.clone();
        ba.merge_from(&a).unwrap();
        // Counters and histograms are commutative; the gauge keeps max.
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("fetch_ok_total"), 15);
        assert_eq!(ab.counter("fetch_transient_total"), 2);
        assert_eq!(ab.gauge_value("queue_depth"), Some(70.0));
        let h = ab.histogram("wal_flush_records").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn edge_mismatch_is_typed() {
        let mut a = MetricsRegistry::default();
        a.observe("x", 1.0);
        let mut b = MetricsRegistry::default();
        b.histograms
            .insert("x".to_string(), Histogram::with_edges(vec![1.0, 10.0]));
        let err = a.merge_from(&b).unwrap_err();
        assert_eq!(err, ObsError::EdgeMismatch { name: "x".to_string() });
    }
}
