//! Exporters: JSON-lines traces, Prometheus-style text exposition,
//! folded stacks for flamegraphs, and the human-readable stage report.
//!
//! All exporters read a finished (or in-flight) recording through any
//! [`ObsSink`] handle; they never mutate it. Output ordering is
//! deterministic given the recorded data: spans export in open order,
//! metrics in `(shard, name)` order.

use crate::{ObsSink, SpanRecord, Stage};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Label a span's shard context for folded stacks and the stage report.
fn context_label(span: &SpanRecord) -> String {
    match span.shard {
        Some(shard) => format!("shard{}", shard.0),
        None => "main".to_string(),
    }
}

/// Wall microseconds spent in each span *itself*, excluding enclosed
/// child spans — the folded-stack weight.
fn self_times_us(spans: &[SpanRecord]) -> Vec<u64> {
    let mut child_total = vec![0u64; spans.len()];
    for span in spans {
        if let Some(parent) = span.parent {
            child_total[parent] += span.duration_us();
        }
    }
    spans
        .iter()
        .zip(&child_total)
        .map(|(span, &children)| span.duration_us().saturating_sub(children))
        .collect()
}

impl ObsSink {
    /// Write the trace as JSON lines: one object per span, in open order.
    /// Fields: `span` (stage name), `path`, `shard` (absent for the
    /// unsharded context), `day`, `fetch_seq`, `start_us`, `end_us`,
    /// `dur_us` — wall times are microseconds since the sink's epoch and
    /// differ run to run; the `(day, fetch_seq, shard)` stamp is what
    /// lines traces up across shards and replays.
    pub fn write_trace_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        for span in self.spans() {
            let mut line = String::new();
            let _ = write!(line, "{{\"span\":\"{}\",\"path\":\"{}\"", span.stage.name(), span.path);
            if let Some(shard) = span.shard {
                let _ = write!(line, ",\"shard\":{}", shard.0);
            }
            let end = span.end_us.unwrap_or(span.start_us);
            let _ = write!(
                line,
                ",\"day\":{},\"fetch_seq\":{},\"start_us\":{},\"end_us\":{},\"dur_us\":{}}}",
                fmt_f64(span.clock.day),
                span.clock.fetch_seq,
                span.start_us,
                end,
                span.duration_us()
            );
            writeln!(out, "{line}")?;
        }
        Ok(())
    }

    /// Write every registry in Prometheus text exposition format. Each
    /// series carries a `shard` label for sharded contexts, so a fleet
    /// dump is a per-shard series set that any Prometheus-compatible
    /// toolchain can aggregate.
    pub fn write_prometheus(&self, out: &mut impl Write) -> io::Result<()> {
        let registries = self.registries();
        // TYPE headers once per metric name, then all shards' samples.
        let mut counter_names: BTreeMap<&str, ()> = BTreeMap::new();
        let mut gauge_names: BTreeMap<&str, ()> = BTreeMap::new();
        let mut histogram_names: BTreeMap<&str, ()> = BTreeMap::new();
        for (_, registry) in &registries {
            counter_names.extend(registry.counters().map(|(name, _)| (name, ())));
            gauge_names.extend(registry.gauges().map(|(name, _)| (name, ())));
            histogram_names.extend(registry.histograms().map(|(name, _)| (name, ())));
        }
        for name in counter_names.keys() {
            writeln!(out, "# TYPE webevo_{name} counter")?;
            for (shard, registry) in &registries {
                if registry.counters().any(|(n, _)| n == *name) {
                    let labels = shard_labels(*shard);
                    writeln!(out, "webevo_{name}{labels} {}", registry.counter(name))?;
                }
            }
        }
        for name in gauge_names.keys() {
            writeln!(out, "# TYPE webevo_{name} gauge")?;
            for (shard, registry) in &registries {
                if let Some(value) = registry.gauge_value(name) {
                    let labels = shard_labels(*shard);
                    writeln!(out, "webevo_{name}{labels} {}", fmt_f64(value))?;
                }
            }
        }
        for name in histogram_names.keys() {
            writeln!(out, "# TYPE webevo_{name} histogram")?;
            for (shard, registry) in &registries {
                let Some(histogram) = registry.histogram(name) else { continue };
                let mut cumulative = 0u64;
                for (edge, &count) in histogram.edges().iter().zip(histogram.buckets()) {
                    cumulative += count;
                    writeln!(
                        out,
                        "webevo_{name}_bucket{} {cumulative}",
                        le_labels(*shard, &fmt_f64(*edge))
                    )?;
                }
                writeln!(
                    out,
                    "webevo_{name}_bucket{} {}",
                    le_labels(*shard, "+Inf"),
                    histogram.count()
                )?;
                let labels = shard_labels(*shard);
                writeln!(out, "webevo_{name}_sum{labels} {}", fmt_f64(histogram.sum()))?;
                writeln!(out, "webevo_{name}_count{labels} {}", histogram.count())?;
            }
        }
        Ok(())
    }

    /// Write the trace as folded stacks (`context;stage;stage weight`),
    /// weighted by self wall time in microseconds — the input format of
    /// `flamegraph.pl` and inferno.
    pub fn write_folded(&self, out: &mut impl Write) -> io::Result<()> {
        let spans = self.spans();
        let self_us = self_times_us(&spans);
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (span, &weight) in spans.iter().zip(&self_us) {
            if weight == 0 {
                continue;
            }
            let key = format!("{};{}", context_label(span), span.path);
            *folded.entry(key).or_default() += weight;
        }
        for (path, weight) in folded {
            writeln!(out, "{path} {weight}")?;
        }
        Ok(())
    }

    /// The end-of-run stage-time report: per stage, the span count, total
    /// and self wall time, and each stage's share of all self time —
    /// where the run actually went, at a glance.
    pub fn stage_report(&self) -> String {
        let spans = self.spans();
        let self_us = self_times_us(&spans);
        struct Row {
            count: u64,
            total_us: u64,
            self_us: u64,
        }
        let mut rows: BTreeMap<Stage, Row> = BTreeMap::new();
        for (span, &own) in spans.iter().zip(&self_us) {
            let row = rows
                .entry(span.stage)
                .or_insert(Row { count: 0, total_us: 0, self_us: 0 });
            row.count += 1;
            row.total_us += span.duration_us();
            row.self_us += own;
        }
        let grand_self: u64 = rows.values().map(|r| r.self_us).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18}{:>8}{:>12}{:>12}{:>9}",
            "stage", "spans", "total", "self", "share"
        );
        let mut ordered: Vec<(Stage, Row)> = rows.into_iter().collect();
        ordered.sort_by_key(|(_, row)| std::cmp::Reverse(row.self_us));
        for (stage, row) in ordered {
            let share = if grand_self == 0 {
                0.0
            } else {
                row.self_us as f64 * 100.0 / grand_self as f64
            };
            let _ = writeln!(
                out,
                "{:<18}{:>8}{:>12}{:>12}{:>8.1}%",
                stage.name(),
                row.count,
                fmt_duration_us(row.total_us),
                fmt_duration_us(row.self_us),
                share
            );
        }
        if out.lines().count() == 1 {
            let _ = writeln!(out, "(no spans recorded)");
        }
        out
    }
}

fn shard_labels(shard: Option<webevo_types::ShardId>) -> String {
    match shard {
        Some(shard) => format!("{{shard=\"{}\"}}", shard.0),
        None => String::new(),
    }
}

fn le_labels(shard: Option<webevo_types::ShardId>, le: &str) -> String {
    match shard {
        Some(shard) => format!("{{shard=\"{}\",le=\"{le}\"}}", shard.0),
        None => format!("{{le=\"{le}\"}}"),
    }
}

/// Format an f64 as a JSON/Prometheus-safe number (no NaN/inf are ever
/// recorded by this crate's callers; clamp defensively anyway).
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

/// Human-scale duration: µs under 1 ms, ms under 10 s, else seconds.
fn fmt_duration_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 10_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicalClock;
    use webevo_types::ShardId;

    fn traced_sink() -> ObsSink {
        let sink = ObsSink::recording();
        let shard = sink.for_shard(ShardId(0));
        {
            let _drive = shard.span(Stage::Drive, LogicalClock::new(0.0, 0));
            {
                let _batch = shard.span(Stage::FetchBatch, LogicalClock::new(0.2, 9));
            }
            let _flush = shard.span(Stage::WalFlush, LogicalClock::new(1.0, 30));
        }
        shard.add("fetch_ok_total", 30);
        shard.gauge("queue_depth", 12.0);
        shard.observe("wal_flush_records", 30.0);
        sink.add("exchange_barriers_total", 2);
        sink
    }

    #[test]
    fn jsonl_trace_has_one_parseable_object_per_span() {
        let sink = traced_sink();
        let mut buffer = Vec::new();
        sink.write_trace_jsonl(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"span\":\"drive\""));
        assert!(lines[1].contains("\"path\":\"drive;fetch_batch\""));
        assert!(lines[1].contains("\"shard\":0"));
        assert!(lines[1].contains("\"fetch_seq\":9"));
    }

    #[test]
    fn prometheus_exposition_is_labelled_per_shard() {
        let sink = traced_sink();
        let mut buffer = Vec::new();
        sink.write_prometheus(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("# TYPE webevo_fetch_ok_total counter"));
        assert!(text.contains("webevo_fetch_ok_total{shard=\"0\"} 30"));
        assert!(text.contains("webevo_exchange_barriers_total 2"));
        assert!(text.contains("webevo_queue_depth{shard=\"0\"} 12"));
        assert!(text.contains("# TYPE webevo_wal_flush_records histogram"));
        assert!(text.contains("webevo_wal_flush_records_bucket{shard=\"0\",le=\"32\"} 1"));
        assert!(text.contains("webevo_wal_flush_records_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("webevo_wal_flush_records_count{shard=\"0\"} 1"));
    }

    #[test]
    fn folded_stacks_weight_self_time() {
        let sink = traced_sink();
        let mut buffer = Vec::new();
        sink.write_folded(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        for line in text.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("path weight");
            assert!(path.starts_with("shard0;drive"), "{line}");
            assert!(weight.parse::<u64>().unwrap() > 0, "{line}");
        }
    }

    #[test]
    fn stage_report_lists_every_recorded_stage() {
        let sink = traced_sink();
        let report = sink.stage_report();
        assert!(report.contains("drive"));
        assert!(report.contains("fetch_batch"));
        assert!(report.contains("wal_flush"));
        assert!(report.contains('%'));
        // And the empty sink says so rather than printing a bare header.
        assert!(ObsSink::noop().stage_report().contains("no spans recorded"));
    }
}
