//! Freshness and age analytics for crawler policies (§4 of the paper).
//!
//! The paper compares crawler designs with the *freshness* metric of
//! \[CGM99b\]: the expected fraction of the local collection that is
//! up-to-date. Under the Poisson change model of §3.4 the metric has closed
//! forms for every combination the paper considers:
//!
//! * **steady vs batch-mode** crawling (Figure 7),
//! * **in-place update vs shadowing** (Figure 8, Table 2),
//! * arbitrary revisit interval per page (feeding the Figure 9 optimizer).
//!
//! [`analytic`] holds the time-averaged formulas (Table 2's entries to the
//! printed precision), [`curves`] the instantaneous E\[freshness\](t) curves
//! that draw Figures 7 and 8, [`age`] the companion age metric the paper
//! mentions, [`series`] an empirical freshness time-series accumulator, and
//! [`montecarlo`] a simulation cross-check of every formula.
//!
//! Derivations (not shown in the paper, reconstructed from the Poisson
//! model) are documented on each function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod age;
pub mod analytic;
pub mod curves;
pub mod montecarlo;
pub mod policy;
pub mod series;

pub use age::{age_periodic, age_steady_collection};
pub use analytic::{
    freshness_batch_inplace, freshness_batch_shadow, freshness_periodic,
    freshness_steady_inplace, freshness_steady_shadow, table2_entry,
};
pub use curves::{FreshnessCurve, PolicyCurves};
pub use policy::{CrawlMode, CrawlPolicy, UpdateMode};
pub use series::FreshnessSeries;
