//! Instantaneous expected-freshness curves — the data behind Figures 7
//! and 8.
//!
//! Figure 7 shows how collection freshness evolves over time for a
//! batch-mode crawler (sawtooth: rises during the grey crawling burst,
//! decays exponentially while idle) versus a steady crawler (flat). Figure 8
//! adds shadowing: the *crawler's* collection ramps from zero as the shadow
//! fills, while the *current* collection decays until the swap.
//!
//! All curves are exact expectations under the Poisson model, expressed in
//! cycle-relative time and evaluated on a uniform grid.

use crate::analytic::one_minus_exp_over;
use crate::policy::{CrawlPolicy, UpdateMode};
use serde::{Deserialize, Serialize};

/// A sampled curve: expected freshness at uniformly spaced times.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreshnessCurve {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl FreshnessCurve {
    /// Sample times in days (absolute, spanning one or more cycles).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Expected freshness at each sample time.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `(time, freshness)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Trapezoidal time-average of the curve.
    pub fn time_average(&self) -> f64 {
        if self.times.len() < 2 {
            return self.values.first().copied().unwrap_or(0.0);
        }
        let mut area = 0.0;
        for i in 1..self.times.len() {
            let dt = self.times[i] - self.times[i - 1];
            area += dt * (self.values[i] + self.values[i - 1]) / 2.0;
        }
        area / (self.times.last().unwrap() - self.times.first().unwrap())
    }

    /// Minimum sampled freshness.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sampled freshness.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Expected freshness of an **in-place** collection at cycle-offset `t`
/// (`0 ≤ t < T`), where pages are crawled uniformly during `[0, w)` each
/// cycle.
///
/// *Derivation.* A page crawled at burst offset `τ` was last synced at
/// `τ` (if `τ ≤ t`) or at `τ − T` (previous cycle, if `τ > t`):
///
/// ```text
/// F(t) = (1/w)[ ∫₀^min(t,w) e^{−λ(t−τ)} dτ + ∫_min(t,w)^w e^{−λ(t+T−τ)} dτ ]
/// ```
///
/// For the steady crawler (`w = T`) this collapses to the constant
/// `(1 − e^{−λT})/(λT)` — the flat line of Figure 7(b).
pub fn inplace_freshness_at(lambda: f64, cycle: f64, window: f64, t: f64) -> f64 {
    assert!((0.0..).contains(&t), "t must be non-negative");
    assert!(window > 0.0 && window <= cycle);
    if lambda == 0.0 {
        return 1.0;
    }
    let t = t % cycle;
    let split = t.min(window);
    // ∫₀^split e^{−λ(t−τ)} dτ = (e^{−λ(t−split)} − e^{−λt})/λ
    let recent = ((-lambda * (t - split)).exp() - (-lambda * t).exp()) / lambda;
    // ∫_split^w e^{−λ(t+T−τ)} dτ = (e^{−λ(t+T−w)} − e^{−λ(t+T−split)})/λ
    let old = ((-lambda * (t + cycle - window)).exp()
        - (-lambda * (t + cycle - split)).exp())
        / lambda;
    (recent + old) / window
}

/// Expected freshness of the **shadow (crawler's) collection** at
/// cycle-offset `t`: the fraction crawled so far, each copy decayed since
/// its crawl instant. Zero at the start of every cycle (the shadow starts
/// from scratch), which is the rising ramp of Figure 8 (top).
pub fn shadow_crawlers_freshness_at(lambda: f64, cycle: f64, window: f64, t: f64) -> f64 {
    assert!(window > 0.0 && window <= cycle);
    let t = t % cycle;
    let filled = t.min(window);
    if filled == 0.0 {
        return 0.0;
    }
    if lambda == 0.0 {
        // All crawled pages stay fresh; fraction crawled so far.
        return filled / window;
    }
    // (1/w) ∫₀^filled e^{−λ(t−τ)} dτ
    ((-lambda * (t - filled)).exp() - (-lambda * t).exp()) / (lambda * window)
}

/// Expected freshness of the **current collection under shadowing** at
/// cycle-offset `t`, where the swap happened at the burst end `w` of the
/// *current* cycle: the collection in service was crawled during `[0, w)`
/// of the cycle that ended at the most recent swap.
///
/// Cycle-relative bookkeeping: for `t ∈ [0, w)` the serving collection is
/// the one swapped in last cycle (crawl offsets `τ − T`); for `t ∈ [w, T)`
/// it is this cycle's (crawl offsets `τ`).
pub fn shadow_current_freshness_at(lambda: f64, cycle: f64, window: f64, t: f64) -> f64 {
    assert!(window > 0.0 && window <= cycle);
    if lambda == 0.0 {
        return 1.0;
    }
    let t = t % cycle;
    let age_of_burst_start = if t >= window { t } else { t + cycle };
    // (1/w) ∫₀^w e^{−λ(age_of_burst_start − τ)} dτ
    ((-lambda * (age_of_burst_start - window)).exp() - (-lambda * age_of_burst_start).exp())
        / (lambda * window)
}

/// The pair of curves Figure 8 plots for one policy: the crawler's
/// collection (only meaningful under shadowing) and the current collection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyCurves {
    /// Freshness of the collection being assembled (shadow) — equals the
    /// current collection for in-place policies.
    pub crawlers: FreshnessCurve,
    /// Freshness of the collection users query.
    pub current: FreshnessCurve,
}

/// Sample the Figure 7/8 curves for a policy over `cycles` cycles with
/// `samples_per_cycle` points per cycle.
pub fn policy_curves(
    policy: &CrawlPolicy,
    lambda: f64,
    cycles: usize,
    samples_per_cycle: usize,
) -> PolicyCurves {
    assert!(cycles > 0 && samples_per_cycle > 1);
    let cycle = policy.cycle_days;
    let window = policy.mode.window_days(cycle);
    let n = cycles * samples_per_cycle;
    let mut times = Vec::with_capacity(n + 1);
    let mut current = Vec::with_capacity(n + 1);
    let mut crawlers = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let t = cycle * cycles as f64 * i as f64 / n as f64;
        times.push(t);
        match policy.update {
            UpdateMode::InPlace => {
                let f = inplace_freshness_at(lambda, cycle, window, t);
                current.push(f);
                crawlers.push(f);
            }
            UpdateMode::Shadow => {
                current.push(shadow_current_freshness_at(lambda, cycle, window, t));
                crawlers.push(shadow_crawlers_freshness_at(lambda, cycle, window, t));
            }
        }
    }
    PolicyCurves {
        crawlers: FreshnessCurve { times: times.clone(), values: crawlers },
        current: FreshnessCurve { times, values: current },
    }
}

/// Convenience: the steady in-place constant, for checking Figure 7(b)'s
/// flat line.
pub fn steady_constant(lambda: f64, cycle: f64) -> f64 {
    if lambda == 0.0 {
        1.0
    } else {
        one_minus_exp_over(lambda * cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{
        freshness_batch_shadow, freshness_periodic, freshness_steady_shadow,
    };
    use crate::policy::{CrawlMode, CrawlPolicy, UpdateMode};

    const LAMBDA: f64 = 0.2; // "high page change rate" like the Figure 7 plots
    const CYCLE: f64 = 30.0;
    const WINDOW: f64 = 7.0;

    #[test]
    fn steady_inplace_curve_is_flat() {
        let c = steady_constant(LAMBDA, CYCLE);
        for i in 0..50 {
            let t = CYCLE * i as f64 / 50.0;
            let f = inplace_freshness_at(LAMBDA, CYCLE, CYCLE, t);
            assert!((f - c).abs() < 1e-10, "t={t}: {f} vs {c}");
        }
    }

    #[test]
    fn batch_inplace_sawtooth_shape() {
        // Rises during the burst, peaks at the burst end, decays after.
        let start = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, 0.0);
        let peak = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, WINDOW);
        let mid_idle = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, 20.0);
        let end = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, 29.999);
        assert!(peak > start, "peak {peak} > cycle start {start}");
        assert!(peak > mid_idle && mid_idle > end, "decays while idle");
        // The paper notes freshness < 1 even at the end of a crawl: some
        // pages changed during the burst.
        assert!(peak < 1.0);
    }

    #[test]
    fn batch_inplace_decay_is_exponential_while_idle() {
        // In the idle region the curve must decay exactly like e^{-λt}.
        let f1 = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, 10.0);
        let f2 = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, 15.0);
        assert!((f2 / f1 - (-LAMBDA * 5.0f64).exp()).abs() < 1e-10);
    }

    #[test]
    fn curve_time_average_matches_analytic_inplace() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Batch { window_days: WINDOW },
            update: UpdateMode::InPlace,
            cycle_days: CYCLE,
        };
        let curves = policy_curves(&policy, LAMBDA, 1, 4000);
        let avg = curves.current.time_average();
        let expect = freshness_periodic(LAMBDA, CYCLE);
        assert!((avg - expect).abs() < 1e-4, "avg={avg} expect={expect}");
    }

    #[test]
    fn curve_time_average_matches_analytic_steady_shadow() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Steady,
            update: UpdateMode::Shadow,
            cycle_days: CYCLE,
        };
        let curves = policy_curves(&policy, LAMBDA, 1, 4000);
        let avg = curves.current.time_average();
        let expect = freshness_steady_shadow(LAMBDA, CYCLE);
        assert!((avg - expect).abs() < 1e-4, "avg={avg} expect={expect}");
    }

    #[test]
    fn curve_time_average_matches_analytic_batch_shadow() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Batch { window_days: WINDOW },
            update: UpdateMode::Shadow,
            cycle_days: CYCLE,
        };
        let curves = policy_curves(&policy, LAMBDA, 1, 4000);
        let avg = curves.current.time_average();
        let expect = freshness_batch_shadow(LAMBDA, CYCLE, WINDOW);
        assert!((avg - expect).abs() < 1e-4, "avg={avg} expect={expect}");
    }

    #[test]
    fn shadow_crawlers_collection_ramps_from_zero() {
        // Figure 8 top: "the freshness of the crawler's collection
        // increases from zero every month".
        let f0 = shadow_crawlers_freshness_at(LAMBDA, CYCLE, CYCLE, 0.0);
        assert_eq!(f0, 0.0);
        let mut prev = 0.0;
        for i in 1..=10 {
            let f = shadow_crawlers_freshness_at(LAMBDA, CYCLE, CYCLE, CYCLE * i as f64 / 10.0 * 0.999);
            assert!(f >= prev - 1e-9, "ramp should not decrease early");
            prev = f;
        }
    }

    #[test]
    fn shadow_current_decays_between_swaps() {
        // Figure 8 bottom: current collection decays until replaced.
        // For batch/shadow the swap is at w; freshness right after the swap
        // must exceed freshness just before the next swap.
        let after_swap = shadow_current_freshness_at(LAMBDA, CYCLE, WINDOW, WINDOW);
        let before_next = shadow_current_freshness_at(LAMBDA, CYCLE, WINDOW, WINDOW - 0.001);
        assert!(after_swap > before_next, "{after_swap} vs {before_next}");
    }

    #[test]
    fn inplace_dominates_shadow_pointwise_for_steady() {
        // Figure 8(a): "The dashed line is always higher than the solid
        // curve" — in-place beats shadowing at every instant for steady.
        for i in 0..100 {
            let t = CYCLE * i as f64 / 100.0;
            let ip = inplace_freshness_at(LAMBDA, CYCLE, CYCLE, t);
            let sh = shadow_current_freshness_at(LAMBDA, CYCLE, CYCLE, t);
            assert!(ip >= sh - 1e-12, "t={t}: in-place {ip} < shadow {sh}");
        }
    }

    #[test]
    fn batch_shadow_equals_inplace_while_idle() {
        // Figure 8(b): "the dashed line and the solid line are the same
        // most of the time" — once the burst is over, in-place and
        // shadowing serve the same copies.
        for i in 0..50 {
            let t = WINDOW + (CYCLE - WINDOW) * i as f64 / 50.0;
            let ip = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, t);
            let sh = shadow_current_freshness_at(LAMBDA, CYCLE, WINDOW, t);
            assert!((ip - sh).abs() < 1e-10, "t={t}: {ip} vs {sh}");
        }
    }

    #[test]
    fn static_pages_flat_at_one() {
        assert_eq!(inplace_freshness_at(0.0, CYCLE, WINDOW, 3.0), 1.0);
        assert_eq!(shadow_current_freshness_at(0.0, CYCLE, WINDOW, 3.0), 1.0);
        assert!(
            (shadow_crawlers_freshness_at(0.0, CYCLE, CYCLE, 15.0) - 0.5).abs() < 1e-12,
            "half the shadow is filled mid-cycle"
        );
    }

    #[test]
    fn curves_are_periodic() {
        for &t in &[3.0, 11.0, 26.0] {
            let a = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, t);
            let b = inplace_freshness_at(LAMBDA, CYCLE, WINDOW, t + CYCLE);
            assert!((a - b).abs() < 1e-12);
        }
    }
}
