//! Monte Carlo cross-validation of the analytic freshness formulas.
//!
//! Each simulation realizes Poisson change processes for a population of
//! pages, replays a crawl policy against them, and measures the fraction of
//! up-to-date copies over a dense time grid. The integration tests assert
//! agreement with [`crate::analytic`] — guarding the derivations the paper
//! omitted.

use crate::policy::{CrawlPolicy, UpdateMode};
#[cfg(test)]
use crate::policy::CrawlMode;
use webevo_stats::{PoissonProcess, SimRng};

/// Result of a Monte Carlo freshness run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloFreshness {
    /// Time-averaged freshness of the current collection.
    pub current_avg: f64,
    /// Number of page-instants sampled.
    pub samples: usize,
}

/// Simulate `pages` Poisson pages of rate `lambda` under `policy` for
/// `cycles` full cycles (after one warm-up cycle) and measure the current
/// collection's time-averaged freshness on `grid` points per cycle.
///
/// Crawl instants: page `i` of `n` is crawled at burst offset
/// `(i + 0.5)/n · w` in every cycle — the uniform spread both crawler modes
/// assume in §4.
pub fn simulate_policy(
    policy: &CrawlPolicy,
    lambda: f64,
    pages: usize,
    cycles: usize,
    grid: usize,
    seed: u64,
) -> MonteCarloFreshness {
    assert!(pages > 0 && cycles > 0 && grid > 1);
    let cycle = policy.cycle_days;
    let window = policy.mode.window_days(cycle);
    let warmup = cycle; // one full cycle so every page has been crawled
    let horizon = warmup + cycle * cycles as f64 + cycle;
    let root = SimRng::seed_from_u64(seed);

    // Realize each page's change schedule once.
    let processes: Vec<PoissonProcess> = (0..pages)
        .map(|i| {
            let mut rng = root.fork(i as u64);
            PoissonProcess::generate(&mut rng, lambda, horizon)
        })
        .collect();

    // Per-page crawl offset within the burst.
    let offsets: Vec<f64> = (0..pages)
        .map(|i| (i as f64 + 0.5) / pages as f64 * window)
        .collect();

    let mut freshness_sum = 0.0;
    let mut samples = 0usize;
    for g in 0..grid * cycles {
        let t = warmup + cycle * cycles as f64 * g as f64 / (grid * cycles) as f64;
        let mut fresh = 0usize;
        for (i, process) in processes.iter().enumerate() {
            let sync_time = last_serving_sync(policy, t, offsets[i], cycle, window);
            // Copy is fresh iff the page did not change since the sync.
            if !process.any_in(sync_time, t) {
                fresh += 1;
            }
        }
        freshness_sum += fresh as f64 / pages as f64;
        samples += pages;
    }
    MonteCarloFreshness {
        current_avg: freshness_sum / (grid * cycles) as f64,
        samples,
    }
}

/// The crawl instant whose copy the *current collection* serves at time
/// `t`, for a page crawled at burst offset `offset` each cycle.
fn last_serving_sync(
    policy: &CrawlPolicy,
    t: f64,
    offset: f64,
    cycle: f64,
    window: f64,
) -> f64 {
    let cycle_idx = (t / cycle).floor();
    let cycle_start = cycle_idx * cycle;
    let in_cycle = t - cycle_start;
    match policy.update {
        UpdateMode::InPlace => {
            // Served copy is from this cycle's crawl if it already happened,
            // else last cycle's.
            if in_cycle >= offset {
                cycle_start + offset
            } else {
                cycle_start - cycle + offset
            }
        }
        UpdateMode::Shadow => {
            // The swap happens at the burst end. The serving collection was
            // crawled in the cycle whose burst most recently completed.
            let last_swap_cycle_start = if in_cycle >= window {
                cycle_start
            } else {
                cycle_start - cycle
            };
            last_swap_cycle_start + offset
        }
    }
}

/// Single-page freshness simulation with an arbitrary fixed revisit
/// interval — the Monte Carlo counterpart of
/// [`crate::analytic::freshness_periodic`], used to validate the Figure 9
/// optimizer's objective.
pub fn simulate_periodic(
    lambda: f64,
    interval_days: f64,
    horizon_days: f64,
    grid: usize,
    seed: u64,
) -> f64 {
    assert!(interval_days > 0.0 && horizon_days > interval_days);
    let mut rng = SimRng::seed_from_u64(seed);
    let process = PoissonProcess::generate(&mut rng, lambda, horizon_days);
    let mut fresh = 0usize;
    let start = interval_days; // skip the pre-first-sync ramp
    for g in 0..grid {
        let t = start + (horizon_days - start) * g as f64 / grid as f64;
        let sync = (t / interval_days).floor() * interval_days;
        if !process.any_in(sync, t) {
            fresh += 1;
        }
    }
    fresh as f64 / grid as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{
        freshness_batch_shadow, freshness_periodic, freshness_steady_shadow,
    };

    const LAMBDA: f64 = 1.0 / 10.0; // fast pages: sharper differences
    const CYCLE: f64 = 30.0;

    fn run(policy: CrawlPolicy) -> f64 {
        // 1600 pages × 8 cycles keeps the Monte Carlo standard error well
        // under the 0.02 tolerance (400 × 4 sat right at its edge).
        simulate_policy(&policy, LAMBDA, 1600, 8, 60, 42).current_avg
    }

    #[test]
    fn steady_inplace_matches_formula() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Steady,
            update: UpdateMode::InPlace,
            cycle_days: CYCLE,
        };
        let mc = run(policy);
        let analytic = freshness_periodic(LAMBDA, CYCLE);
        assert!((mc - analytic).abs() < 0.02, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn batch_inplace_matches_formula() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Batch { window_days: 7.0 },
            update: UpdateMode::InPlace,
            cycle_days: CYCLE,
        };
        let mc = run(policy);
        let analytic = freshness_periodic(LAMBDA, CYCLE);
        assert!((mc - analytic).abs() < 0.02, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn steady_shadow_matches_formula() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Steady,
            update: UpdateMode::Shadow,
            cycle_days: CYCLE,
        };
        let mc = run(policy);
        let analytic = freshness_steady_shadow(LAMBDA, CYCLE);
        assert!((mc - analytic).abs() < 0.02, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn batch_shadow_matches_formula() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Batch { window_days: 7.0 },
            update: UpdateMode::Shadow,
            cycle_days: CYCLE,
        };
        let mc = run(policy);
        let analytic = freshness_batch_shadow(LAMBDA, CYCLE, 7.0);
        assert!((mc - analytic).abs() < 0.02, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn periodic_single_page_matches_formula() {
        let mc = simulate_periodic(0.1, 10.0, 2000.0, 20_000, 7);
        let analytic = freshness_periodic(0.1, 10.0);
        assert!((mc - analytic).abs() < 0.02, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn deterministic_given_seed() {
        let policy = CrawlPolicy {
            mode: CrawlMode::Steady,
            update: UpdateMode::InPlace,
            cycle_days: CYCLE,
        };
        let a = simulate_policy(&policy, LAMBDA, 50, 2, 20, 9).current_avg;
        let b = simulate_policy(&policy, LAMBDA, 50, 2, 20, 9).current_avg;
        assert_eq!(a, b);
    }
}
