//! Empirical freshness time series.
//!
//! The crawler engines measure *actual* collection freshness against
//! simulator ground truth at sampling instants; this accumulator holds the
//! `(time, freshness)` samples and provides the aggregates the experiments
//! report (time average via trapezoid, minima after warm-up, etc.).

use serde::{Deserialize, Serialize};

/// A time-ordered series of `(day, freshness)` samples.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FreshnessSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl FreshnessSeries {
    /// An empty series.
    pub fn new() -> FreshnessSeries {
        FreshnessSeries::default()
    }

    /// Append a sample. Times must be non-decreasing; values are clamped to
    /// `[0, 1]` only by assertion (a freshness outside that range is a bug
    /// in the caller).
    pub fn push(&mut self, time_days: f64, freshness: f64) {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&freshness),
            "freshness must be a fraction, got {freshness}"
        );
        if let Some(&last) = self.times.last() {
            assert!(time_days >= last, "samples must be time-ordered");
        }
        self.times.push(time_days);
        self.values.push(freshness.min(1.0));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `(time, value)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Trapezoidal time average over the full series (simple mean if the
    /// series has a single sample or zero span).
    pub fn time_average(&self) -> f64 {
        self.time_average_from(f64::NEG_INFINITY)
    }

    /// Trapezoidal time average restricted to samples with `t >= start`
    /// (used to skip the cold-start ramp when comparing against
    /// steady-state analytics).
    pub fn time_average_from(&self, start: f64) -> f64 {
        let first = self.times.partition_point(|&t| t < start);
        let times = &self.times[first..];
        let values = &self.values[first..];
        if times.is_empty() {
            return 0.0;
        }
        if times.len() == 1 || times.last().unwrap() - times.first().unwrap() < 1e-12 {
            return values.iter().sum::<f64>() / values.len() as f64;
        }
        let mut area = 0.0;
        for i in 1..times.len() {
            area += (times[i] - times[i - 1]) * (values[i] + values[i - 1]) / 2.0;
        }
        area / (times.last().unwrap() - times.first().unwrap())
    }

    /// Minimum freshness at or after `start`.
    pub fn min_from(&self, start: f64) -> f64 {
        let first = self.times.partition_point(|&t| t < start);
        self.values[first..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The final sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }
}

impl webevo_types::BinEncode for FreshnessSeries {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.times.bin_encode(out);
        self.values.bin_encode(out);
    }
}

impl webevo_types::BinDecode for FreshnessSeries {
    fn bin_decode(
        r: &mut webevo_types::BinReader<'_>,
    ) -> Result<FreshnessSeries, webevo_types::BinError> {
        use webevo_types::BinError;
        let times = Vec::<f64>::bin_decode(r)?;
        let values = Vec::<f64>::bin_decode(r)?;
        if times.len() != values.len() {
            return Err(BinError::new("freshness series times/values length mismatch"));
        }
        Ok(FreshnessSeries { times, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_flat_series() {
        let mut s = FreshnessSeries::new();
        for i in 0..10 {
            s.push(i as f64, 0.8);
        }
        assert!((s.time_average() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_on_linear_ramp() {
        let mut s = FreshnessSeries::new();
        s.push(0.0, 0.0);
        s.push(10.0, 1.0);
        assert!((s.time_average() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn restricted_average_skips_warmup() {
        let mut s = FreshnessSeries::new();
        s.push(0.0, 0.0);
        s.push(10.0, 0.0);
        s.push(10.0, 1.0);
        s.push(20.0, 1.0);
        assert!((s.time_average_from(10.0) - 1.0).abs() < 1e-12);
        assert!((s.time_average() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_from_and_last() {
        let mut s = FreshnessSeries::new();
        s.push(0.0, 0.9);
        s.push(1.0, 0.3);
        s.push(2.0, 0.7);
        assert_eq!(s.min_from(0.0), 0.3);
        assert_eq!(s.min_from(1.5), 0.7);
        assert_eq!(s.last(), Some((2.0, 0.7)));
    }

    #[test]
    fn empty_and_singleton() {
        let s = FreshnessSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.time_average(), 0.0);
        let mut s1 = FreshnessSeries::new();
        s1.push(5.0, 0.4);
        assert!((s1.time_average() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut s = FreshnessSeries::new();
        s.push(2.0, 0.5);
        s.push(1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_freshness() {
        let mut s = FreshnessSeries::new();
        s.push(0.0, 1.5);
    }
}
