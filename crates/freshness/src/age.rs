//! The *age* metric — the paper's companion to freshness.
//!
//! §4: "In \[CGM99b\] we also discuss a second metric, the 'age' of crawled
//! pages." A stored copy's age is 0 while it is fresh, and the time since
//! the page's first unseen change otherwise. Age penalizes *how stale*
//! pages are, not just whether they are stale.

/// Expected age of a single page copy a time `t` after its last sync, for
/// change rate `lambda`:
///
/// ```text
/// E[age(t)] = ∫₀^t P(first change before s happened) ds·… = t − (1 − e^{−λt})/λ
/// ```
///
/// *Derivation.* Age at `t` is `(t − T_c)⁺` where `T_c` is the first change
/// after the sync; `E[(t − T_c)⁺] = ∫₀^t P(T_c ≤ s) ds =
/// ∫₀^t (1 − e^{−λs}) ds = t − (1 − e^{−λt})/λ`.
pub fn age_at(lambda: f64, t: f64) -> f64 {
    assert!(lambda >= 0.0 && t >= 0.0);
    if lambda == 0.0 {
        return 0.0;
    }
    t - (-(-lambda * t).exp_m1()) / lambda
}

/// Time-averaged expected age of a page re-synced **in place** every
/// `interval_days`:
///
/// ```text
/// Ā = I/2 − 1/λ + (1 − e^{−λI})/(λ²I)
/// ```
///
/// (the average of [`age_at`] over one sync interval).
pub fn age_periodic(lambda: f64, interval_days: f64) -> f64 {
    assert!(lambda >= 0.0, "rate must be non-negative");
    assert!(interval_days > 0.0, "interval must be positive");
    if lambda == 0.0 {
        return 0.0;
    }
    let li = lambda * interval_days;
    interval_days / 2.0 - 1.0 / lambda + (-(-li).exp_m1()) / (lambda * lambda * interval_days)
}

/// Time-averaged age for a **steady in-place** collection where every page
/// is revisited once per `cycle_days` — identical to [`age_periodic`] with
/// the cycle as the interval (the same argument as for freshness).
pub fn age_steady_collection(lambda: f64, cycle_days: f64) -> f64 {
    age_periodic(lambda, cycle_days)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_zero_at_sync() {
        assert_eq!(age_at(0.5, 0.0), 0.0);
    }

    #[test]
    fn age_grows_monotonically() {
        let mut prev = 0.0;
        for i in 1..50 {
            let a = age_at(0.2, i as f64);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn age_asymptote_is_t_minus_mean_interval() {
        // For large t, E[age] → t − 1/λ.
        let lambda = 0.5;
        let t = 100.0;
        assert!((age_at(lambda, t) - (t - 1.0 / lambda)).abs() < 1e-6);
    }

    #[test]
    fn static_page_never_ages() {
        assert_eq!(age_at(0.0, 1000.0), 0.0);
        assert_eq!(age_periodic(0.0, 30.0), 0.0);
    }

    #[test]
    fn periodic_age_matches_numeric_integration() {
        let (lambda, interval) = (0.1, 30.0);
        let n = 100_000;
        let numeric: f64 = (0..n)
            .map(|i| age_at(lambda, interval * (i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64;
        let analytic = age_periodic(lambda, interval);
        assert!((numeric - analytic).abs() < 1e-5, "{numeric} vs {analytic}");
    }

    #[test]
    fn faster_revisits_lower_age() {
        let lambda = 0.05;
        let a_fast = age_periodic(lambda, 5.0);
        let a_slow = age_periodic(lambda, 50.0);
        assert!(a_fast < a_slow);
    }

    #[test]
    fn age_increases_with_change_rate() {
        let interval = 30.0;
        let a_slow = age_periodic(0.01, interval);
        let a_fast = age_periodic(0.5, interval);
        assert!(a_fast > a_slow);
    }
}
