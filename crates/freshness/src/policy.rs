//! The crawler design space of §4: crawl mode × update mode.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How the crawler spreads its visits over a cycle (§4 choice 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CrawlMode {
    /// Runs continuously; every page is revisited once per cycle, with
    /// visits spread uniformly over the whole cycle.
    Steady,
    /// Runs in a burst: all visits happen inside the first
    /// `window_days` of each cycle, then the crawler idles.
    Batch {
        /// Length of the crawling burst, in days (the paper uses 1 week for
        /// Table 2 and 2 weeks for the §4 sensitivity scenario).
        window_days: f64,
    },
}

impl CrawlMode {
    /// The active crawling window: the full cycle for a steady crawler, the
    /// burst for a batch crawler.
    pub fn window_days(&self, cycle_days: f64) -> f64 {
        match *self {
            CrawlMode::Steady => cycle_days,
            CrawlMode::Batch { window_days } => window_days,
        }
    }

    /// Peak crawl speed relative to a steady crawler with the same cycle —
    /// the paper's §4 argument that batch crawling "increases the peak load
    /// on the crawler's local machine and on the network".
    pub fn peak_speed_factor(&self, cycle_days: f64) -> f64 {
        cycle_days / self.window_days(cycle_days)
    }
}

/// How the crawler installs refreshed pages (§4 choice 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateMode {
    /// Each crawled page replaces its old copy immediately.
    InPlace,
    /// Pages accumulate in a shadow collection that replaces the current
    /// collection all at once when the crawl cycle completes \[MJLF84\].
    Shadow,
}

/// A full policy point: crawl mode, update mode and the cycle length.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrawlPolicy {
    /// Steady or batch crawling.
    pub mode: CrawlMode,
    /// In-place update or shadowing.
    pub update: UpdateMode,
    /// Cycle length in days (the paper's "every month" = 30).
    pub cycle_days: f64,
}

impl CrawlPolicy {
    /// The four Table 2 policies at the paper's parameters (1-month cycle,
    /// 1-week batch window), in the table's row-major order:
    /// (in-place, steady), (in-place, batch), (shadow, steady),
    /// (shadow, batch).
    pub fn table2_policies() -> [CrawlPolicy; 4] {
        let batch = CrawlMode::Batch { window_days: webevo_types::time::WEEK };
        let cycle = webevo_types::time::MONTH;
        [
            CrawlPolicy { mode: CrawlMode::Steady, update: UpdateMode::InPlace, cycle_days: cycle },
            CrawlPolicy { mode: batch, update: UpdateMode::InPlace, cycle_days: cycle },
            CrawlPolicy { mode: CrawlMode::Steady, update: UpdateMode::Shadow, cycle_days: cycle },
            CrawlPolicy { mode: batch, update: UpdateMode::Shadow, cycle_days: cycle },
        ]
    }

    /// Short label like "steady/in-place" for tables.
    pub fn label(&self) -> String {
        let mode = match self.mode {
            CrawlMode::Steady => "steady",
            CrawlMode::Batch { .. } => "batch",
        };
        let update = match self.update {
            UpdateMode::InPlace => "in-place",
            UpdateMode::Shadow => "shadowing",
        };
        format!("{mode}/{update}")
    }
}

impl fmt::Display for CrawlPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (cycle {} days)", self.label(), self.cycle_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_speed() {
        let steady = CrawlMode::Steady;
        let batch = CrawlMode::Batch { window_days: 7.0 };
        assert_eq!(steady.peak_speed_factor(30.0), 1.0);
        assert!((batch.peak_speed_factor(30.0) - 30.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn table2_policy_order() {
        let ps = CrawlPolicy::table2_policies();
        assert_eq!(ps[0].label(), "steady/in-place");
        assert_eq!(ps[1].label(), "batch/in-place");
        assert_eq!(ps[2].label(), "steady/shadowing");
        assert_eq!(ps[3].label(), "batch/shadowing");
        for p in ps {
            assert_eq!(p.cycle_days, 30.0);
        }
    }

    #[test]
    fn batch_window_clamps_to_burst() {
        let m = CrawlMode::Batch { window_days: 14.0 };
        assert_eq!(m.window_days(30.0), 14.0);
        assert_eq!(CrawlMode::Steady.window_days(30.0), 30.0);
    }
}
