//! Closed-form time-averaged freshness under the Poisson change model.
//!
//! Setting: a page changes as a Poisson process with rate `λ` (per day).
//! A crawl synchronizes the stored copy exactly (the copy is fresh at the
//! instant of crawling) and the copy stays fresh until the page's next
//! change. The expected probability that the copy is fresh a time `u` after
//! its last crawl is `e^{−λu}` (Theorem 1).
//!
//! Each formula below averages that probability over the crawl pattern and
//! over time; the derivations the paper omits ("We do not show the
//! derivation here due to space constraints") are reproduced in the doc
//! comments.

use crate::policy::{CrawlMode, CrawlPolicy, UpdateMode};

/// Numerically robust `(1 − e^{−x}) / x`, continuous at `x = 0` (value 1).
#[inline]
pub(crate) fn one_minus_exp_over(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    if x < 1e-8 {
        // Second-order Taylor keeps 1e-16 accuracy here.
        1.0 - x / 2.0 + x * x / 6.0
    } else {
        -(-x).exp_m1() / x
    }
}

/// Time-averaged freshness of a single page with change rate `lambda`
/// (per day) re-crawled **in place** every `interval_days`:
///
/// ```text
/// F̄ = (1 − e^{−λI}) / (λI)
/// ```
///
/// *Derivation.* The copy is synced at multiples of `I`. At offset
/// `u ∈ [0, I)` past a sync it is fresh with probability `e^{−λu}`.
/// Averaging: `(1/I)·∫₀^I e^{−λu} du = (1 − e^{−λI})/(λI)`.
///
/// `interval_days = ∞` (or `lambda` with no crawling) gives 0; `λ = 0`
/// gives 1. This is also the per-page building block of the Figure 9
/// optimizer (there parameterized by frequency `f = 1/I`).
pub fn freshness_periodic(lambda: f64, interval_days: f64) -> f64 {
    assert!(lambda >= 0.0, "rate must be non-negative");
    assert!(interval_days > 0.0, "interval must be positive");
    if lambda == 0.0 {
        return 1.0;
    }
    if interval_days.is_infinite() {
        return 0.0;
    }
    one_minus_exp_over(lambda * interval_days)
}

/// Time-averaged freshness: **steady crawler, in-place updates**, cycle
/// `cycle_days` (Table 2 top-left).
///
/// Every page is revisited once per cycle, so this is
/// [`freshness_periodic`] with `I = cycle`. With the paper's parameters
/// (λ = 1/120 days, cycle = 30 days): `(1 − e^{−0.25})/0.25 ≈ 0.885` —
/// Table 2's **0.88**.
pub fn freshness_steady_inplace(lambda: f64, cycle_days: f64) -> f64 {
    freshness_periodic(lambda, cycle_days)
}

/// Time-averaged freshness: **batch-mode crawler, in-place updates**
/// (Table 2 top-right).
///
/// *Derivation.* A page crawled at offset `τ` inside the burst is re-crawled
/// at `τ + T` in the next cycle — its sync interval is exactly the cycle
/// `T` regardless of the burst width — so the time-average equals the
/// steady in-place value. This is the paper's §4 claim that steady and
/// batch crawlers "yield the same average freshness if they visit pages at
/// the same average speed". The burst width only changes *when* freshness
/// peaks (see [`crate::curves`]), not its time average.
pub fn freshness_batch_inplace(lambda: f64, cycle_days: f64, window_days: f64) -> f64 {
    assert!(
        window_days > 0.0 && window_days <= cycle_days,
        "batch window must lie within the cycle"
    );
    freshness_periodic(lambda, cycle_days)
}

/// Time-averaged freshness of the **current collection**: *steady crawler
/// with shadowing* (Table 2 bottom-left).
///
/// *Derivation.* The crawler rebuilds a shadow collection from scratch over
/// each cycle `[0, T)`, crawling pages uniformly; the shadow replaces the
/// current collection at `T` and serves during `[T, 2T)`. A page crawled at
/// `τ` is fresh at serving time `t` with probability `e^{−λ(t−τ)}`:
///
/// ```text
/// F̄ = (1/T²) ∫₀^T ∫_T^{2T} e^{−λ(t−τ)} dt dτ = [(1 − e^{−λT})/(λT)]²
/// ```
///
/// With the paper's parameters: `0.885² ≈ 0.78` — Table 2 prints **0.77**
/// (the square of the rounded 0.88 entry; our value matches to the
/// rounding the paper applied).
pub fn freshness_steady_shadow(lambda: f64, cycle_days: f64) -> f64 {
    let f = freshness_periodic(lambda, cycle_days);
    f * f
}

/// Time-averaged freshness of the **current collection**: *batch-mode
/// crawler with shadowing* (Table 2 bottom-right).
///
/// *Derivation.* Pages are crawled uniformly during the burst `[0, w)`; the
/// swap happens at `w` and the collection serves until the next swap at
/// `T + w`:
///
/// ```text
/// F̄ = (1/(wT)) ∫₀^w ∫_w^{T+w} e^{−λ(t−τ)} dt dτ
///    = (1 − e^{−λw})(1 − e^{−λT}) / (λ²wT)
/// ```
///
/// With the paper's parameters (λ = 1/120, T = 30, w = 7):
/// `0.0567·0.2212/(0.0583·0.25) ≈ 0.860` — Table 2's **0.86**. With the §4
/// sensitivity scenario (λ = 1/30, T = 30, w = 15) it gives ≈ 0.497, the
/// paper's **0.50**, versus 0.63 for in-place.
pub fn freshness_batch_shadow(lambda: f64, cycle_days: f64, window_days: f64) -> f64 {
    assert!(
        window_days > 0.0 && window_days <= cycle_days,
        "batch window must lie within the cycle"
    );
    assert!(lambda >= 0.0, "rate must be non-negative");
    if lambda == 0.0 {
        return 1.0;
    }
    one_minus_exp_over(lambda * window_days) * one_minus_exp_over(lambda * cycle_days)
}

/// Evaluate the time-averaged current-collection freshness of any policy
/// point — the generator of Table 2.
pub fn table2_entry(policy: &CrawlPolicy, lambda: f64) -> f64 {
    match (policy.mode, policy.update) {
        (CrawlMode::Steady, UpdateMode::InPlace) => {
            freshness_steady_inplace(lambda, policy.cycle_days)
        }
        (CrawlMode::Batch { window_days }, UpdateMode::InPlace) => {
            freshness_batch_inplace(lambda, policy.cycle_days, window_days)
        }
        (CrawlMode::Steady, UpdateMode::Shadow) => {
            freshness_steady_shadow(lambda, policy.cycle_days)
        }
        (CrawlMode::Batch { window_days }, UpdateMode::Shadow) => {
            freshness_batch_shadow(lambda, policy.cycle_days, window_days)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::time::{FOUR_MONTHS, MONTH, WEEK};

    /// The paper's Table 2 rate: "all pages change with an average 4 month
    /// interval".
    const LAMBDA: f64 = 1.0 / FOUR_MONTHS;

    #[test]
    fn table2_steady_inplace_is_088() {
        let f = freshness_steady_inplace(LAMBDA, MONTH);
        assert!((f - 0.88).abs() < 0.01, "f={f}");
    }

    #[test]
    fn table2_batch_inplace_is_088() {
        let f = freshness_batch_inplace(LAMBDA, MONTH, WEEK);
        assert!((f - 0.88).abs() < 0.01, "f={f}");
        // …and exactly equals steady in-place (the paper's equal-average
        // claim).
        assert_eq!(f, freshness_steady_inplace(LAMBDA, MONTH));
    }

    #[test]
    fn table2_steady_shadow_is_077() {
        let f = freshness_steady_shadow(LAMBDA, MONTH);
        assert!((f - 0.78).abs() < 0.012, "f={f}"); // 0.885² = 0.783
        // The paper's printed 0.77 is the square of the rounded 0.88.
        assert!((0.88f64 * 0.88 - 0.77).abs() < 0.01);
    }

    #[test]
    fn table2_batch_shadow_is_086() {
        let f = freshness_batch_shadow(LAMBDA, MONTH, WEEK);
        assert!((f - 0.86).abs() < 0.01, "f={f}");
    }

    #[test]
    fn sensitivity_scenario_063_vs_050() {
        // §4: "web pages change every month, and a batch crawler operates
        // for the first two weeks of every month" → 0.63 in-place, 0.50
        // shadowing.
        let lambda = 1.0 / MONTH;
        let inplace = freshness_batch_inplace(lambda, MONTH, 15.0);
        let shadow = freshness_batch_shadow(lambda, MONTH, 15.0);
        assert!((inplace - 0.63).abs() < 0.005, "inplace={inplace}");
        assert!((shadow - 0.50).abs() < 0.005, "shadow={shadow}");
    }

    #[test]
    fn shadowing_never_beats_inplace() {
        for &lambda in &[0.001, 0.01, 0.1, 1.0] {
            for &cycle in &[7.0, 30.0, 120.0] {
                for &w in &[1.0, cycle / 2.0, cycle] {
                    let ip = freshness_batch_inplace(lambda, cycle, w);
                    let sh = freshness_batch_shadow(lambda, cycle, w);
                    assert!(
                        sh <= ip + 1e-12,
                        "λ={lambda} T={cycle} w={w}: shadow {sh} > inplace {ip}"
                    );
                }
            }
        }
    }

    #[test]
    fn static_pages_always_fresh() {
        assert_eq!(freshness_periodic(0.0, 30.0), 1.0);
        assert_eq!(freshness_steady_shadow(0.0, 30.0), 1.0);
        assert_eq!(freshness_batch_shadow(0.0, 30.0, 7.0), 1.0);
    }

    #[test]
    fn freshness_decreases_with_rate_and_interval() {
        let mut prev = 1.0;
        for &lambda in &[0.001, 0.01, 0.1, 1.0, 10.0] {
            let f = freshness_periodic(lambda, 10.0);
            assert!(f < prev);
            prev = f;
        }
        let mut prev = 1.0;
        for &interval in &[1.0, 5.0, 25.0, 125.0] {
            let f = freshness_periodic(0.05, interval);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn never_crawling_gives_zero() {
        assert_eq!(freshness_periodic(0.1, f64::INFINITY), 0.0);
    }

    #[test]
    fn robust_small_x() {
        // Both branches must agree with the Taylor value 1 − x/2 + x²/6 at
        // points just below and above the series switch at 1e-8.
        for &x in &[9.9e-9, 1.01e-8] {
            let expect = 1.0 - x / 2.0 + x * x / 6.0;
            assert!((one_minus_exp_over(x) - expect).abs() < 1e-12, "x={x}");
        }
        assert!((one_minus_exp_over(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn table2_entry_dispatches() {
        use crate::policy::CrawlPolicy;
        let policies = CrawlPolicy::table2_policies();
        let values: Vec<f64> = policies.iter().map(|p| table2_entry(p, LAMBDA)).collect();
        assert!((values[0] - 0.885).abs() < 0.005); // steady/in-place
        assert!((values[1] - 0.885).abs() < 0.005); // batch/in-place
        assert!((values[2] - 0.783).abs() < 0.005); // steady/shadow
        assert!((values[3] - 0.860).abs() < 0.005); // batch/shadow
    }
}
