//! Estimator **EB**: Bayesian inference over frequency classes.
//!
//! §5.3: *"EB tries to categorize pages into different frequency classes,
//! say, pages that change every week (class C_W) and pages that change
//! every month (class C_M). To implement EB, the UpdateModule stores the
//! probability that page pᵢ belongs to each frequency class … and updates
//! these probabilities based on detected changes. For instance, if the
//! UpdateModule learns that page p₁ did not change for one month, \[it\]
//! increases P{p₁ ∈ C_M} and decreases P{p₁ ∈ C_W}."*
//!
//! Each class is a Poisson rate hypothesis. An observation "changed (or
//! not) over an interval of `t` days" has likelihood `1 − e^{−λ_c t}`
//! (resp. `e^{−λ_c t}`) under class `c`; the posterior is updated by
//! Bayes' rule. The estimator reports the MAP class and the
//! posterior-mean rate.

use serde::{Deserialize, Serialize};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{ChangeRate, Error, Result};

/// A frequency-class hypothesis: a label and its Poisson rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrequencyClass {
    /// Human-readable label ("daily", "weekly", …).
    pub label: String,
    /// The class's change rate.
    pub rate: ChangeRate,
}

impl FrequencyClass {
    /// Build a class from a mean change interval in days.
    pub fn per_interval(label: &str, days: f64) -> FrequencyClass {
        FrequencyClass {
            label: label.to_string(),
            rate: ChangeRate::per_interval_days(days),
        }
    }
}

/// The Bayesian frequency-class estimator for one page.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BayesianEstimator {
    classes: Vec<FrequencyClass>,
    /// Posterior probabilities, kept normalized.
    posterior: Vec<f64>,
    observations: u64,
}

impl BayesianEstimator {
    /// Create with a uniform prior over `classes`.
    pub fn uniform_prior(classes: Vec<FrequencyClass>) -> Result<BayesianEstimator> {
        if classes.is_empty() {
            return Err(Error::invalid("need at least one frequency class"));
        }
        let n = classes.len();
        Ok(BayesianEstimator {
            classes,
            posterior: vec![1.0 / n as f64; n],
            observations: 0,
        })
    }

    /// Create with an explicit prior (normalized internally).
    pub fn with_prior(classes: Vec<FrequencyClass>, prior: Vec<f64>) -> Result<BayesianEstimator> {
        if classes.len() != prior.len() {
            return Err(Error::invalid("prior length must match class count"));
        }
        if classes.is_empty() {
            return Err(Error::invalid("need at least one frequency class"));
        }
        let total: f64 = prior.iter().sum();
        if total.is_nan() || total <= 0.0 || prior.iter().any(|&p| p < 0.0) {
            return Err(Error::invalid("prior must be non-negative with positive sum"));
        }
        Ok(BayesianEstimator {
            classes,
            posterior: prior.into_iter().map(|p| p / total).collect(),
            observations: 0,
        })
    }

    /// The paper's example classes (weekly C_W and monthly C_M) plus the
    /// daily and 4-monthly extremes §3.1 measured — a practical default
    /// spanning Figure 2's bins.
    pub fn paper_classes() -> Vec<FrequencyClass> {
        vec![
            FrequencyClass::per_interval("daily", 1.0),
            FrequencyClass::per_interval("weekly", webevo_types::time::WEEK),
            FrequencyClass::per_interval("monthly", webevo_types::time::MONTH),
            FrequencyClass::per_interval("quarterly+", webevo_types::time::FOUR_MONTHS),
        ]
    }

    /// Update the posterior with one observation: the page was seen
    /// `changed` (or not) over an interval of `interval_days` since the
    /// previous visit.
    pub fn observe(&mut self, interval_days: f64, changed: bool) {
        assert!(interval_days > 0.0, "observation interval must be positive");
        let mut total = 0.0;
        for (i, class) in self.classes.iter().enumerate() {
            let p_change = class.rate.change_probability(interval_days);
            let likelihood = if changed { p_change } else { 1.0 - p_change };
            // Floor the likelihood so a single surprising observation cannot
            // zero out a class forever (all-zero posteriors are unusable).
            self.posterior[i] *= likelihood.max(1e-300);
            total += self.posterior[i];
        }
        if total > 0.0 {
            for p in &mut self.posterior {
                *p /= total;
            }
        } else {
            // Complete underflow: reset to uniform rather than NaN.
            let n = self.posterior.len() as f64;
            for p in &mut self.posterior {
                *p = 1.0 / n;
            }
        }
        self.observations += 1;
    }

    /// Posterior probability of each class, in class order.
    pub fn posterior(&self) -> &[f64] {
        &self.posterior
    }

    /// The classes.
    pub fn classes(&self) -> &[FrequencyClass] {
        &self.classes
    }

    /// Observations absorbed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Maximum a-posteriori class.
    pub fn map_class(&self) -> &FrequencyClass {
        let (idx, _) = self
            .posterior
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("posterior has no NaN"))
            .expect("at least one class");
        &self.classes[idx]
    }

    /// Posterior-mean change rate — the scheduling input.
    pub fn posterior_mean_rate(&self) -> ChangeRate {
        let mean = self
            .classes
            .iter()
            .zip(self.posterior.iter())
            .map(|(c, &p)| c.rate.per_day() * p)
            .sum();
        ChangeRate(mean)
    }
}

impl BinEncode for FrequencyClass {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.label.bin_encode(out);
        self.rate.bin_encode(out);
    }
}

impl BinDecode for FrequencyClass {
    fn bin_decode(r: &mut BinReader<'_>) -> std::result::Result<FrequencyClass, BinError> {
        Ok(FrequencyClass {
            label: String::bin_decode(r)?,
            rate: ChangeRate::bin_decode(r)?,
        })
    }
}

impl BinEncode for BayesianEstimator {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.classes.bin_encode(out);
        self.posterior.bin_encode(out);
        self.observations.bin_encode(out);
    }
}

impl BinDecode for BayesianEstimator {
    fn bin_decode(r: &mut BinReader<'_>) -> std::result::Result<BayesianEstimator, BinError> {
        Ok(BayesianEstimator {
            classes: Vec::bin_decode(r)?,
            posterior: Vec::bin_decode(r)?,
            observations: u64::bin_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_stats::{PoissonProcess, SimRng};

    fn weekly_monthly() -> BayesianEstimator {
        BayesianEstimator::uniform_prior(vec![
            FrequencyClass::per_interval("weekly", 7.0),
            FrequencyClass::per_interval("monthly", 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn papers_update_direction() {
        // "if the UpdateModule learns that page p1 did not change for one
        // month, \[it\] increases P{C_M} and decreases P{C_W}".
        let mut e = weekly_monthly();
        let before = e.posterior().to_vec();
        e.observe(30.0, false);
        assert!(e.posterior()[1] > before[1], "P(monthly) should increase");
        assert!(e.posterior()[0] < before[0], "P(weekly) should decrease");
    }

    #[test]
    fn change_observation_favors_fast_class() {
        let mut e = weekly_monthly();
        e.observe(1.0, true);
        assert!(e.posterior()[0] > 0.5, "a quick change favors weekly");
        assert_eq!(e.map_class().label, "weekly");
    }

    #[test]
    fn posterior_stays_normalized() {
        let mut e = weekly_monthly();
        for k in 0..50 {
            e.observe(1.0 + (k % 5) as f64, k % 3 == 0);
            let sum: f64 = e.posterior().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        }
    }

    #[test]
    fn converges_to_true_class() {
        // Simulate a genuinely weekly page observed daily for a year.
        let lambda = 1.0 / 7.0;
        let mut rng = SimRng::seed_from_u64(3);
        let process = PoissonProcess::generate(&mut rng, lambda, 400.0);
        let mut e = BayesianEstimator::uniform_prior(BayesianEstimator::paper_classes()).unwrap();
        let mut last_version = 0;
        for day in 1..=365 {
            let v = process.version_at(day as f64);
            e.observe(1.0, v != last_version);
            last_version = v;
        }
        assert_eq!(e.map_class().label, "weekly");
        assert!(e.posterior_mean_rate().per_day() > 0.05);
        assert!(e.posterior_mean_rate().per_day() < 0.4);
    }

    #[test]
    fn static_page_converges_to_slowest_class() {
        let mut e = BayesianEstimator::uniform_prior(BayesianEstimator::paper_classes()).unwrap();
        for day in 0..120 {
            let _ = day;
            e.observe(1.0, false);
        }
        assert_eq!(e.map_class().label, "quarterly+");
    }

    #[test]
    fn prior_validation() {
        assert!(BayesianEstimator::uniform_prior(vec![]).is_err());
        let classes = BayesianEstimator::paper_classes();
        assert!(BayesianEstimator::with_prior(classes.clone(), vec![1.0]).is_err());
        assert!(BayesianEstimator::with_prior(classes.clone(), vec![0.0; 4]).is_err());
        let ok = BayesianEstimator::with_prior(classes, vec![2.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((ok.posterior()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn informative_prior_shifts_map() {
        let classes = vec![
            FrequencyClass::per_interval("weekly", 7.0),
            FrequencyClass::per_interval("monthly", 30.0),
        ];
        let e = BayesianEstimator::with_prior(classes, vec![0.9, 0.1]).unwrap();
        assert_eq!(e.map_class().label, "weekly");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interval_observation() {
        let mut e = weekly_monthly();
        e.observe(0.0, true);
    }
}
