//! The per-page change history the UpdateModule records.
//!
//! §5.3: *"To implement EP, the UpdateModule has to record how many times
//! the crawler detected changes to a page for, say, last 6 months."* A
//! [`ChangeHistory`] is that record: a bounded log of visits, each tagged
//! with whether the checksum differed from the previous visit, plus running
//! totals so estimators never need to replay the log.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::Checksum;

/// One crawl observation of a page.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// When the page was visited (days).
    pub time: f64,
    /// Days since the previous visit (0 for the first visit).
    pub interval: f64,
    /// Whether the checksum differed from the previous visit. `false` on
    /// the first visit (there is nothing to compare against).
    pub changed: bool,
}

/// A bounded log of change observations for one page.
///
/// The window is bounded by observation count (a proxy for the paper's
/// "last 6 months"): old observations retire from the running totals as
/// they fall out, so long-lived pages adapt when their behaviour drifts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChangeHistory {
    window: usize,
    observations: VecDeque<Observation>,
    last_checksum: Option<Checksum>,
    last_visit: Option<f64>,
    // Running totals over the retained window (excluding first-visit
    // observations, which carry no change information).
    comparisons: u64,
    detections: u64,
    monitored_days: f64,
}

impl ChangeHistory {
    /// Create with a retention window of `window` observations. A window of
    /// 200 daily visits ≈ the paper's 6 months.
    pub fn new(window: usize) -> ChangeHistory {
        assert!(window >= 2, "window must retain at least two observations");
        ChangeHistory {
            window,
            observations: VecDeque::with_capacity(window.min(256)),
            last_checksum: None,
            last_visit: None,
            comparisons: 0,
            detections: 0,
            monitored_days: 0.0,
        }
    }

    /// Record a visit at `time` that produced `checksum`. Returns the
    /// observation (with `changed` resolved against the previous visit).
    pub fn record_visit(&mut self, time: f64, checksum: Checksum) -> Observation {
        if let Some(last) = self.last_visit {
            assert!(time >= last, "visits must be time-ordered");
        }
        let (interval, changed) = match (self.last_visit, self.last_checksum) {
            (Some(last_t), Some(last_c)) => (time - last_t, checksum != last_c),
            _ => (0.0, false),
        };
        let obs = Observation { time, interval, changed };
        if self.last_visit.is_some() {
            self.comparisons += 1;
            self.monitored_days += interval;
            if changed {
                self.detections += 1;
            }
        }
        self.observations.push_back(obs);
        if self.observations.len() > self.window {
            let old = self.observations.pop_front().expect("non-empty");
            // The very first observation carries no comparison; detect that
            // by interval == 0 && !changed at the head position.
            if old.interval > 0.0 || old.changed {
                self.comparisons -= 1;
                self.monitored_days -= old.interval;
                if old.changed {
                    self.detections -= 1;
                }
            }
        }
        self.last_checksum = Some(checksum);
        self.last_visit = Some(time);
        obs
    }

    /// Number of visit-pairs compared within the window.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of detected changes within the window.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Total days of monitoring covered by the retained comparisons.
    pub fn monitored_days(&self) -> f64 {
        self.monitored_days.max(0.0)
    }

    /// Time of the most recent visit.
    pub fn last_visit(&self) -> Option<f64> {
        self.last_visit
    }

    /// The most recent checksum.
    pub fn last_checksum(&self) -> Option<Checksum> {
        self.last_checksum
    }

    /// Retained observations, oldest first.
    pub fn observations(&self) -> impl Iterator<Item = &Observation> {
        self.observations.iter()
    }

    /// Comparison observations only (skipping the first visit), oldest
    /// first — the input shape the estimators consume.
    pub fn comparison_observations(&self) -> impl Iterator<Item = &Observation> {
        self.observations.iter().filter(|o| o.interval > 0.0 || o.changed)
    }

    /// True when the history has enough comparisons for estimation.
    pub fn has_data(&self) -> bool {
        self.comparisons > 0
    }

    /// Average access interval over the window (None without data).
    pub fn mean_access_interval(&self) -> Option<f64> {
        if self.comparisons == 0 {
            None
        } else {
            Some(self.monitored_days / self.comparisons as f64)
        }
    }
}

impl BinEncode for Observation {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.time.bin_encode(out);
        self.interval.bin_encode(out);
        self.changed.bin_encode(out);
    }
}

impl BinDecode for Observation {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Observation, BinError> {
        Ok(Observation {
            time: f64::bin_decode(r)?,
            interval: f64::bin_decode(r)?,
            changed: bool::bin_decode(r)?,
        })
    }
}

impl BinEncode for ChangeHistory {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.window.bin_encode(out);
        self.observations.bin_encode(out);
        self.last_checksum.bin_encode(out);
        self.last_visit.bin_encode(out);
        self.comparisons.bin_encode(out);
        self.detections.bin_encode(out);
        self.monitored_days.bin_encode(out);
    }
}

impl BinDecode for ChangeHistory {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<ChangeHistory, BinError> {
        Ok(ChangeHistory {
            window: usize::bin_decode(r)?,
            observations: VecDeque::bin_decode(r)?,
            last_checksum: Option::bin_decode(r)?,
            last_visit: Option::bin_decode(r)?,
            comparisons: u64::bin_decode(r)?,
            detections: u64::bin_decode(r)?,
            monitored_days: f64::bin_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(v: u64) -> Checksum {
        Checksum(v)
    }

    #[test]
    fn first_visit_is_not_a_comparison() {
        let mut h = ChangeHistory::new(10);
        let obs = h.record_visit(0.0, ck(1));
        assert!(!obs.changed);
        assert_eq!(h.comparisons(), 0);
        assert!(!h.has_data());
    }

    #[test]
    fn detects_changes_via_checksum() {
        let mut h = ChangeHistory::new(10);
        h.record_visit(0.0, ck(1));
        let same = h.record_visit(1.0, ck(1));
        assert!(!same.changed);
        let diff = h.record_visit(2.0, ck(2));
        assert!(diff.changed);
        assert_eq!(h.comparisons(), 2);
        assert_eq!(h.detections(), 1);
        assert!((h.monitored_days() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_retires_old_observations() {
        let mut h = ChangeHistory::new(3);
        h.record_visit(0.0, ck(0));
        h.record_visit(1.0, ck(1)); // change
        h.record_visit(2.0, ck(1)); // no change
        h.record_visit(3.0, ck(2)); // change; first visit falls out
        assert_eq!(h.observations().count(), 3);
        assert_eq!(h.comparisons(), 3);
        h.record_visit(4.0, ck(2)); // the change-at-1.0 falls out
        assert_eq!(h.comparisons(), 3);
        assert_eq!(h.detections(), 1);
        assert!((h.monitored_days() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_access_interval() {
        let mut h = ChangeHistory::new(10);
        h.record_visit(0.0, ck(0));
        assert_eq!(h.mean_access_interval(), None);
        h.record_visit(2.0, ck(0));
        h.record_visit(6.0, ck(0));
        assert!((h.mean_access_interval().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_observations_skip_first() {
        let mut h = ChangeHistory::new(10);
        h.record_visit(0.0, ck(0));
        h.record_visit(1.0, ck(1));
        h.record_visit(2.0, ck(1));
        assert_eq!(h.comparison_observations().count(), 2);
        assert_eq!(h.observations().count(), 3);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unordered_visits() {
        let mut h = ChangeHistory::new(5);
        h.record_visit(5.0, ck(0));
        h.record_visit(4.0, ck(0));
    }

    #[test]
    fn irregular_intervals_tracked() {
        let mut h = ChangeHistory::new(10);
        h.record_visit(0.0, ck(0));
        h.record_visit(0.5, ck(1));
        h.record_visit(10.0, ck(2));
        let intervals: Vec<f64> =
            h.comparison_observations().map(|o| o.interval).collect();
        assert_eq!(intervals, vec![0.5, 9.5]);
    }
}
