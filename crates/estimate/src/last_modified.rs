//! Rate estimation from server-reported last-modified dates (extension).
//!
//! \[CGM99a\] also derives an improved estimator for the case where each
//! access reveals the page's *last modification time*, not just a changed
//! bit. The sufficient statistic per visit is the page copy's age at access
//! time. For a Poisson page observed at an access long after its previous
//! change, the backward recurrence time is Exp(λ); the MLE over `k`
//! observed "time since last change" values `aᵢ` is `λ̂ = k / Σ aᵢ`.
//!
//! The subtlety \[CGM99a\] handles: when the page did **not** change since
//! the previous visit, the last-modified date repeats and carries no new
//! information; only *fresh* modification observations enter the sum, and
//! unchanged stretches contribute censored exposure. We implement the
//! standard censored-exponential MLE:
//!
//! `λ̂ = (#changes observed) / (Σ observed ages + Σ censored exposures)`.

use webevo_types::{ChangeRate, Error, Result};

/// One last-modified observation at a visit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LastModifiedObs {
    /// Days between this visit and the previous one.
    pub interval_days: f64,
    /// Age of the copy at this visit: visit time − reported last-modified
    /// time. `None` when the server reported the same timestamp as the
    /// previous visit (no change since then).
    pub fresh_age_days: Option<f64>,
}

/// Censored-exponential MLE over last-modified observations.
///
/// Observations with `fresh_age_days = Some(a)` contribute one event with
/// exposure `min(a, interval)` (the change happened within this visit
/// interval, `a` days before the visit); unchanged observations contribute
/// censored exposure `interval`.
pub fn estimate_from_last_modified(observations: &[LastModifiedObs]) -> Result<ChangeRate> {
    if observations.is_empty() {
        return Err(Error::InvalidState("no last-modified observations".into()));
    }
    let mut events = 0u64;
    let mut exposure = 0.0f64;
    for obs in observations {
        if obs.interval_days <= 0.0 {
            return Err(Error::invalid("visit interval must be positive"));
        }
        match obs.fresh_age_days {
            Some(age) => {
                if age < 0.0 {
                    return Err(Error::invalid("copy age cannot be negative"));
                }
                events += 1;
                // Backward-recurrence argument: the probability that the
                // *last* change before the visit happened `a` days ago is
                // λe^{−λa}·da (and a < Δ exactly when a change happened
                // within this visit interval), while "no change" has
                // probability e^{−λΔ}. That is a censored exponential
                // likelihood, so a changed visit contributes its observed
                // age as exposure.
                exposure += age.min(obs.interval_days);
            }
            None => exposure += obs.interval_days,
        }
    }
    if exposure <= 0.0 {
        return Err(Error::InvalidState("no exposure accumulated".into()));
    }
    if events == 0 {
        return Ok(ChangeRate::ZERO);
    }
    Ok(ChangeRate(events as f64 / exposure))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_stats::{PoissonProcess, SimRng};

    /// Simulate daily visits with last-modified reporting.
    fn simulate(lambda: f64, days: usize, seed: u64) -> Vec<LastModifiedObs> {
        let mut rng = SimRng::seed_from_u64(seed);
        let process = PoissonProcess::generate(&mut rng, lambda, days as f64 + 1.0);
        let mut out = Vec::new();
        let mut prev_version = process.version_at(0.0);
        for day in 1..=days {
            let t = day as f64;
            let version = process.version_at(t);
            let fresh = if version != prev_version {
                let last_mod = process.last_event_at_or_before(t).expect("changed");
                Some(t - last_mod)
            } else {
                None
            };
            out.push(LastModifiedObs { interval_days: 1.0, fresh_age_days: fresh });
            prev_version = version;
        }
        out
    }

    #[test]
    fn recovers_slow_rate() {
        let lambda = 0.05;
        let obs = simulate(lambda, 2000, 1);
        let est = estimate_from_last_modified(&obs).unwrap();
        assert!(
            (est.per_day() - lambda).abs() < 0.015,
            "est={} true={lambda}",
            est.per_day()
        );
    }

    #[test]
    fn beats_checksum_for_fast_pages() {
        // At λ = 2/day with daily visits, the naive checksum estimator
        // saturates at 1 change/day (≈ 0.86 detected); the last-modified
        // estimator recovers the true rate from the timestamps.
        let lambda = 2.0;
        let obs = simulate(lambda, 3000, 2);
        let est = estimate_from_last_modified(&obs).unwrap();
        assert!(
            (est.per_day() - lambda).abs() < 0.15,
            "est={} true={lambda}",
            est.per_day()
        );
        let naive = obs.iter().filter(|o| o.fresh_age_days.is_some()).count() as f64
            / obs.len() as f64;
        assert!(naive < 1.0, "naive saturates below the true rate");
    }

    #[test]
    fn static_page_estimates_zero() {
        let obs = vec![LastModifiedObs { interval_days: 1.0, fresh_age_days: None }; 100];
        assert_eq!(estimate_from_last_modified(&obs).unwrap(), ChangeRate::ZERO);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(estimate_from_last_modified(&[]).is_err());
        let bad = vec![LastModifiedObs { interval_days: 0.0, fresh_age_days: None }];
        assert!(estimate_from_last_modified(&bad).is_err());
        let neg = vec![LastModifiedObs { interval_days: 1.0, fresh_age_days: Some(-1.0) }];
        assert!(estimate_from_last_modified(&neg).is_err());
    }
}
