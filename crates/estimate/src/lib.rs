//! Change-frequency estimation — the paper's estimators **EP** and **EB**
//! (§5.3, detailed in \[CGM99a\] "Measuring frequency of change").
//!
//! The UpdateModule can only *sample* a page: each crawl compares the new
//! checksum with the stored one, yielding a binary "changed since last
//! visit?" observation (Figure 1's granularity caveat: multiple changes
//! between visits collapse into one detection). From those observations the
//! crawler must estimate the page's Poisson rate λ to schedule revisits.
//!
//! * [`history`] — the per-page observation log the UpdateModule keeps.
//! * [`ep`] — estimator EP: frequentist rate estimates (naive, MLE,
//!   bias-corrected) with the confidence interval §5.3 describes.
//! * [`eb`] — estimator EB: Bayesian inference over frequency classes
//!   ("pages that change every week" vs "every month"), updated per
//!   observation exactly as §5.3 sketches.
//! * [`last_modified`] — extension: the improved estimator available when
//!   servers report a last-modified date.
//! * [`pooling`] — site-level statistics pooling (§5.3's "larger units than
//!   a page" discussion) with its bias/variance trade-off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eb;
pub mod ep;
pub mod history;
pub mod last_modified;
pub mod pooling;

pub use eb::{BayesianEstimator, FrequencyClass};
pub use ep::{
    estimate_ep, estimate_irregular_mle, estimate_naive,
    estimate_regular_bias_corrected, estimate_regular_mle, EpEstimate,
};
pub use history::{ChangeHistory, Observation};
pub use last_modified::{estimate_from_last_modified, LastModifiedObs};
pub use pooling::SitePool;
