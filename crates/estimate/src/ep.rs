//! Estimator **EP**: frequentist Poisson-rate estimation from a change
//! history.
//!
//! With visits every `Δ` days, each comparison is a Bernoulli trial that
//! detects a change with probability `p = 1 − e^{−λΔ}`. \[CGM99a\] observes
//! that the *naive* estimator `X/T` (detections over monitored time) is
//! biased low for fast pages — it can never report more than one change per
//! visit (Figure 1(a) of this paper) — and proposes estimators that invert
//! the detection probability instead:
//!
//! * [`estimate_regular_mle`]: `λ̂ = −ln(1 − X/n)/Δ`, the MLE.
//! * [`estimate_regular_bias_corrected`]: `λ̂ = −ln((n−X+0.5)/(n+0.5))/Δ`,
//!   \[CGM99a\]'s small-sample correction that stays finite at `X = n`.
//! * [`estimate_irregular_mle`]: Newton-solved MLE for irregular visit
//!   intervals, maximizing `Σ_changed ln(1−e^{−λt_i}) − Σ_unchanged λt_i`.
//!
//! The §5.3 confidence interval comes from
//! [`webevo_stats::rate_ci_from_regular_access`].

use crate::history::ChangeHistory;
use serde::{Deserialize, Serialize};
use webevo_stats::{rate_ci_from_regular_access, ConfidenceInterval};
use webevo_types::{ChangeRate, Error, Result};

/// A point estimate of a page's change rate with its confidence interval.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpEstimate {
    /// Estimated Poisson rate (events/day).
    pub rate: ChangeRate,
    /// Two-sided confidence interval on the rate.
    pub ci: ConfidenceInterval,
    /// Comparisons the estimate is based on.
    pub n: u64,
    /// Detections among them.
    pub detections: u64,
}

/// The naive estimator: detected changes per monitored day (`X/T`).
///
/// Consistent only when the page changes much slower than it is visited;
/// saturates at one change per visit interval for fast pages.
pub fn estimate_naive(history: &ChangeHistory) -> Result<ChangeRate> {
    if !history.has_data() || history.monitored_days() <= 0.0 {
        return Err(Error::InvalidState("no comparisons in history".into()));
    }
    Ok(ChangeRate(history.detections() as f64 / history.monitored_days()))
}

/// MLE for regular access intervals: `λ̂ = −ln(1 − X/n)/Δ`.
///
/// Returns an error when every visit saw a change (`X = n`), where the MLE
/// diverges — use [`estimate_regular_bias_corrected`] there.
pub fn estimate_regular_mle(detections: u64, n: u64, interval_days: f64) -> Result<ChangeRate> {
    if n == 0 {
        return Err(Error::InvalidState("no comparisons".into()));
    }
    if interval_days <= 0.0 {
        return Err(Error::invalid("access interval must be positive"));
    }
    if detections > n {
        return Err(Error::invalid("detections cannot exceed comparisons"));
    }
    if detections == n {
        return Err(Error::InvalidState(
            "every visit detected a change; MLE diverges (Figure 1(a) granularity limit)".into(),
        ));
    }
    let p_hat = detections as f64 / n as f64;
    Ok(ChangeRate(-(1.0 - p_hat).ln() / interval_days))
}

/// \[CGM99a\]'s bias-corrected estimator for regular access:
/// `λ̂ = −ln((n − X + 0.5)/(n + 0.5))/Δ`.
///
/// Finite for all `0 ≤ X ≤ n` and nearly unbiased down to small `n`.
pub fn estimate_regular_bias_corrected(
    detections: u64,
    n: u64,
    interval_days: f64,
) -> Result<ChangeRate> {
    if n == 0 {
        return Err(Error::InvalidState("no comparisons".into()));
    }
    if interval_days <= 0.0 {
        return Err(Error::invalid("access interval must be positive"));
    }
    if detections > n {
        return Err(Error::invalid("detections cannot exceed comparisons"));
    }
    let num = n as f64 - detections as f64 + 0.5;
    let den = n as f64 + 0.5;
    Ok(ChangeRate(-(num / den).ln() / interval_days))
}

/// Full EP estimate from a history with (approximately) regular access:
/// bias-corrected point estimate plus the §5.3 confidence interval.
pub fn estimate_ep(history: &ChangeHistory, level: f64) -> Result<EpEstimate> {
    let n = history.comparisons();
    if n == 0 {
        return Err(Error::InvalidState("no comparisons in history".into()));
    }
    let interval = history
        .mean_access_interval()
        .ok_or_else(|| Error::InvalidState("no interval data".into()))?;
    if interval <= 0.0 {
        return Err(Error::InvalidState("all visits at the same instant".into()));
    }
    let detections = history.detections();
    let rate = estimate_regular_bias_corrected(detections, n, interval)?;
    let ci = rate_ci_from_regular_access(detections, n, interval, level);
    Ok(EpEstimate { rate, ci, n, detections })
}

/// MLE for **irregular** access intervals.
///
/// Maximizes `L(λ) = Σ_{changed} ln(1 − e^{−λ tᵢ}) − Σ_{unchanged} λ tᵢ`
/// over the comparison observations. The log-likelihood is strictly concave
/// in λ, so bisection on `dL/dλ` converges globally:
///
/// `dL/dλ = Σ_changed tᵢ e^{−λtᵢ}/(1 − e^{−λtᵢ}) − Σ_unchanged tᵢ`.
///
/// Boundary cases: no detections → rate 0 is the supremum (returned);
/// all detections → the likelihood increases without bound (error, use the
/// bias-corrected estimator on the pooled counts).
pub fn estimate_irregular_mle(history: &ChangeHistory) -> Result<ChangeRate> {
    let obs: Vec<(f64, bool)> = history
        .comparison_observations()
        .map(|o| (o.interval, o.changed))
        .filter(|&(t, _)| t > 0.0)
        .collect();
    if obs.is_empty() {
        return Err(Error::InvalidState("no comparisons in history".into()));
    }
    let changed: Vec<f64> = obs.iter().filter(|&&(_, c)| c).map(|&(t, _)| t).collect();
    let unchanged_sum: f64 = obs.iter().filter(|&&(_, c)| !c).map(|&(t, _)| t).sum();
    if changed.is_empty() {
        return Ok(ChangeRate::ZERO);
    }
    if unchanged_sum == 0.0 {
        return Err(Error::InvalidState(
            "every visit detected a change; irregular MLE diverges".into(),
        ));
    }
    let score = |lambda: f64| -> f64 {
        let gain: f64 = changed
            .iter()
            .map(|&t| {
                let e = (-lambda * t).exp();
                t * e / (1.0 - e)
            })
            .sum();
        gain - unchanged_sum
    };
    // Bracket the root: dL/dλ → +∞ as λ→0⁺ and → −unchanged_sum < 0 as λ→∞.
    let mut lo = 1e-9;
    let mut hi = 1.0;
    let mut iterations = 0;
    while score(hi) > 0.0 {
        hi *= 2.0;
        iterations += 1;
        if iterations > 200 {
            return Err(Error::NoConvergence { what: "irregular MLE bracket", iterations });
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if score(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    Ok(ChangeRate(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_stats::SimRng;
    use webevo_types::Checksum;

    /// Build a history by simulating daily visits to a Poisson page.
    fn simulated_history(lambda: f64, days: usize, interval: f64, seed: u64) -> ChangeHistory {
        use webevo_stats::PoissonProcess;
        let mut rng = SimRng::seed_from_u64(seed);
        let horizon = days as f64 * interval + 1.0;
        let process = PoissonProcess::generate(&mut rng, lambda, horizon);
        let mut h = ChangeHistory::new(days + 2);
        for k in 0..=days {
            let t = k as f64 * interval;
            let version = process.version_at(t);
            h.record_visit(t, Checksum::of_version(1, version));
        }
        h
    }

    #[test]
    fn naive_underestimates_fast_pages() {
        // Page changes 3x/day but is visited daily: naive can see at most
        // one change/day.
        let h = simulated_history(3.0, 200, 1.0, 1);
        let naive = estimate_naive(&h).unwrap();
        assert!(naive.per_day() <= 1.0 + 1e-9);
        assert!(naive.per_day() < 1.5, "naive should saturate, got {}", naive.per_day());
    }

    #[test]
    fn mle_recovers_moderate_rate() {
        let lambda = 0.2;
        let h = simulated_history(lambda, 400, 1.0, 2);
        let est = estimate_regular_mle(h.detections(), h.comparisons(), 1.0).unwrap();
        assert!(
            (est.per_day() - lambda).abs() < 0.05,
            "est={} true={lambda}",
            est.per_day()
        );
    }

    #[test]
    fn bias_corrected_close_to_mle_away_from_boundary() {
        let mle = estimate_regular_mle(30, 100, 1.0).unwrap();
        let bc = estimate_regular_bias_corrected(30, 100, 1.0).unwrap();
        assert!((mle.per_day() - bc.per_day()).abs() < 0.01);
    }

    #[test]
    fn bias_corrected_finite_at_boundary() {
        let bc = estimate_regular_bias_corrected(100, 100, 1.0).unwrap();
        assert!(bc.per_day().is_finite());
        assert!(bc.per_day() > 4.0, "all-changed should imply a fast page");
        assert!(estimate_regular_mle(100, 100, 1.0).is_err());
    }

    #[test]
    fn zero_detections_gives_zero_rate() {
        let bc = estimate_regular_bias_corrected(0, 100, 1.0).unwrap();
        assert!(bc.per_day() < 0.006);
        let mle = estimate_regular_mle(0, 100, 1.0).unwrap();
        assert_eq!(mle.per_day(), 0.0);
    }

    #[test]
    fn ep_ci_covers_truth() {
        let lambda = 0.1;
        let mut covered = 0;
        let trials = 60;
        for seed in 0..trials {
            let h = simulated_history(lambda, 200, 1.0, 100 + seed);
            let est = estimate_ep(&h, 0.95).unwrap();
            if est.ci.contains(lambda) {
                covered += 1;
            }
        }
        // 95% nominal; allow slack for the small trial count.
        assert!(covered as f64 / trials as f64 > 0.85, "covered {covered}/{trials}");
    }

    #[test]
    fn irregular_mle_recovers_rate() {
        // Visits at mixed intervals: 0.5, 1, 2 days repeating.
        use webevo_stats::PoissonProcess;
        let lambda = 0.3;
        let mut rng = SimRng::seed_from_u64(5);
        let process = PoissonProcess::generate(&mut rng, lambda, 2000.0);
        let mut h = ChangeHistory::new(5000);
        let mut t = 0.0;
        let steps = [0.5, 1.0, 2.0];
        let mut i = 0;
        while t < 1500.0 {
            h.record_visit(t, Checksum::of_version(1, process.version_at(t)));
            t += steps[i % 3];
            i += 1;
        }
        let est = estimate_irregular_mle(&h).unwrap();
        assert!(
            (est.per_day() - lambda).abs() < 0.05,
            "est={} true={lambda}",
            est.per_day()
        );
    }

    #[test]
    fn irregular_mle_zero_when_no_changes() {
        let mut h = ChangeHistory::new(50);
        for k in 0..20 {
            h.record_visit(k as f64, Checksum(7));
        }
        assert_eq!(estimate_irregular_mle(&h).unwrap(), ChangeRate::ZERO);
    }

    #[test]
    fn irregular_matches_regular_on_regular_data() {
        let h = simulated_history(0.15, 300, 1.0, 9);
        let irregular = estimate_irregular_mle(&h).unwrap();
        let regular =
            estimate_regular_mle(h.detections(), h.comparisons(), 1.0).unwrap();
        assert!(
            (irregular.per_day() - regular.per_day()).abs() < 1e-6,
            "{} vs {}",
            irregular.per_day(),
            regular.per_day()
        );
    }

    #[test]
    fn errors_on_empty_history() {
        let h = ChangeHistory::new(10);
        assert!(estimate_naive(&h).is_err());
        assert!(estimate_ep(&h, 0.95).is_err());
        assert!(estimate_irregular_mle(&h).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(estimate_regular_mle(5, 10, 0.0).is_err());
        assert!(estimate_regular_mle(11, 10, 1.0).is_err());
        assert!(estimate_regular_bias_corrected(11, 10, 1.0).is_err());
    }
}
