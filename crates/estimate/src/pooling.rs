//! Site-level statistics pooling (§5.3).
//!
//! *"Note that it is also possible to keep update statistics on larger
//! units than a page, such as a web site or a directory. If web pages on a
//! site change at similar frequencies, the crawler may trace how many times
//! the pages on that site changed for last 6 months, and get a confidence
//! interval based on the site-level statistics. In this case, the crawler
//! may get a tighter confidence interval … However, if pages on a site
//! change at highly different frequencies, this average change frequency
//! may not be sufficient."*
//!
//! [`SitePool`] aggregates the comparison counts of many pages and yields a
//! pooled EP estimate with its (tighter) confidence interval. The
//! `ablation_site_pooling` bench quantifies the trade-off the paper warns
//! about.

use crate::ep::EpEstimate;
use crate::history::ChangeHistory;
use serde::{Deserialize, Serialize};
use webevo_stats::rate_ci_from_regular_access;
use webevo_types::{ChangeRate, Error, Result};

/// Pooled change statistics for a group of pages (a site or directory).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SitePool {
    comparisons: u64,
    detections: u64,
    monitored_days: f64,
    pages: u64,
}

impl SitePool {
    /// An empty pool.
    pub fn new() -> SitePool {
        SitePool::default()
    }

    /// Fold one page's history into the pool.
    pub fn add_history(&mut self, history: &ChangeHistory) {
        if history.has_data() {
            self.comparisons += history.comparisons();
            self.detections += history.detections();
            self.monitored_days += history.monitored_days();
            self.pages += 1;
        }
    }

    /// Pages contributing data.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Total comparisons across the pool.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Pooled EP estimate: bias-corrected rate over the pooled counts with
    /// the pooled confidence interval. The rate is the *site-average* rate;
    /// §5.3's caveat is that individual pages may sit far from it.
    pub fn estimate(&self, level: f64) -> Result<EpEstimate> {
        if self.comparisons == 0 {
            return Err(Error::InvalidState("pool has no comparisons".into()));
        }
        let interval = self.monitored_days / self.comparisons as f64;
        if interval <= 0.0 {
            return Err(Error::InvalidState("pool has zero monitored time".into()));
        }
        let num = self.comparisons as f64 - self.detections as f64 + 0.5;
        let den = self.comparisons as f64 + 0.5;
        let rate = ChangeRate(-(num / den).ln() / interval);
        let ci = rate_ci_from_regular_access(self.detections, self.comparisons, interval, level);
        Ok(EpEstimate { rate, ci, n: self.comparisons, detections: self.detections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ep::estimate_ep;
    use webevo_stats::{PoissonProcess, SimRng};
    use webevo_types::Checksum;

    fn history_for(lambda: f64, days: usize, seed: u64) -> ChangeHistory {
        let mut rng = SimRng::seed_from_u64(seed);
        let process = PoissonProcess::generate(&mut rng, lambda, days as f64 + 1.0);
        let mut h = ChangeHistory::new(days + 2);
        for day in 0..=days {
            let t = day as f64;
            h.record_visit(t, Checksum::of_version(seed, process.version_at(t)));
        }
        h
    }

    #[test]
    fn pooling_tightens_ci_for_homogeneous_site() {
        let lambda = 0.05;
        let mut pool = SitePool::new();
        let mut single_width = 0.0;
        for seed in 0..30 {
            let h = history_for(lambda, 60, seed);
            if seed == 0 {
                if let Ok(e) = estimate_ep(&h, 0.95) {
                    single_width = e.ci.width();
                }
            }
            pool.add_history(&h);
        }
        let pooled = pool.estimate(0.95).unwrap();
        assert!(pooled.ci.width() < single_width, "pooled CI should be tighter");
        assert!(pooled.ci.contains(lambda), "pooled CI covers the shared rate");
        assert_eq!(pool.pages(), 30);
    }

    #[test]
    fn pooled_rate_is_average_for_heterogeneous_site() {
        // Half the pages change at 0.01/day, half at 0.3/day: the pooled
        // estimate lands between — the paper's "less-than optimal" caveat.
        let mut pool = SitePool::new();
        for seed in 0..20 {
            let lambda = if seed % 2 == 0 { 0.01 } else { 0.3 };
            pool.add_history(&history_for(lambda, 120, 100 + seed));
        }
        let pooled = pool.estimate(0.95).unwrap();
        let r = pooled.rate.per_day();
        assert!(r > 0.02 && r < 0.3, "pooled rate {r} should sit between extremes");
    }

    #[test]
    fn empty_pool_errors() {
        assert!(SitePool::new().estimate(0.95).is_err());
    }

    #[test]
    fn histories_without_data_are_skipped() {
        let mut pool = SitePool::new();
        let h = ChangeHistory::new(10); // never visited
        pool.add_history(&h);
        assert_eq!(pool.pages(), 0);
    }
}
