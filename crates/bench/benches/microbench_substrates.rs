//! Micro-benchmarks of the hot substrate paths: PageRank, Poisson
//! schedules, estimators, queue operations, fetches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webevo::prelude::*;
use webevo_bench::bench_universe;

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    let mut g = c.benchmark_group("substrates");

    // PageRank on the live snapshot.
    let graph = universe.snapshot_graph(0.0);
    g.bench_function("pagerank_snapshot", |b| {
        b.iter(|| black_box(pagerank(&graph, &PageRankConfig::conventional()).unwrap()))
    });
    // The default 1e-10 tolerance stalls in float noise on this snapshot
    // and never converges; bench the solver at a tolerance it can reach.
    let hits_cfg = webevo::graph::HitsConfig { tolerance: 1e-8, max_iterations: 500 };
    g.bench_function("hits_snapshot", |b| {
        b.iter(|| black_box(webevo::graph::hits(&graph, &hits_cfg).unwrap()))
    });

    // Poisson process generation + queries.
    g.bench_function("poisson_generate_1k_events", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| black_box(PoissonProcess::generate(&mut rng, 10.0, 100.0)))
    });
    let mut rng = SimRng::seed_from_u64(2);
    let process = PoissonProcess::generate(&mut rng, 5.0, 1000.0);
    g.bench_function("poisson_count_in", |b| {
        b.iter(|| black_box(process.count_in(black_box(100.0), black_box(500.0))))
    });

    // Estimators.
    let mut history = ChangeHistory::new(300);
    let mut hr = SimRng::seed_from_u64(3);
    let hp = PoissonProcess::generate(&mut hr, 0.1, 300.0);
    for day in 0..300 {
        history.record_visit(day as f64, Checksum::of_version(1, hp.version_at(day as f64)));
    }
    g.bench_function("ep_estimate", |b| {
        b.iter(|| black_box(estimate_ep(black_box(&history), 0.95).unwrap()))
    });
    g.bench_function("irregular_mle", |b| {
        b.iter(|| black_box(estimate_irregular_mle(black_box(&history)).unwrap()))
    });
    let mut bayes =
        BayesianEstimator::uniform_prior(BayesianEstimator::paper_classes()).unwrap();
    g.bench_function("eb_observe", |b| {
        b.iter(|| {
            bayes.observe(1.0, black_box(false));
            black_box(bayes.posterior_mean_rate())
        })
    });

    // Dense substrates vs. the ordered maps they replaced: point lookups
    // and full ascending-order iteration sweeps, the two access patterns
    // on the per-fetch and per-pass hot paths.
    for n in [1_000u64, 100_000] {
        use std::collections::BTreeMap;
        let dense: webevo::types::DenseMap<f64> =
            (0..n).map(|i| (PageId(i), i as f64 * 0.5)).collect();
        let tree: BTreeMap<PageId, f64> =
            (0..n).map(|i| (PageId(i), i as f64 * 0.5)).collect();
        // Probe ids in a scrambled order so the branch predictor cannot
        // learn the sweep.
        let probes: Vec<PageId> = (0..n).map(|i| PageId((i * 7919) % n)).collect();
        g.bench_with_input(BenchmarkId::new("dense_map_lookup", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for &p in &probes {
                    sum += dense.get(p).copied().unwrap_or(0.0);
                }
                black_box(sum)
            })
        });
        g.bench_with_input(BenchmarkId::new("btree_map_lookup", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for &p in &probes {
                    sum += tree.get(&p).copied().unwrap_or(0.0);
                }
                black_box(sum)
            })
        });
        g.bench_with_input(BenchmarkId::new("dense_map_iterate", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for (_, v) in dense.iter() {
                    sum += v;
                }
                black_box(sum)
            })
        });
        g.bench_with_input(BenchmarkId::new("btree_map_iterate", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for (_, v) in tree.iter() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }

    // Precomputed change schedules (the event arena) vs deriving the
    // schedule on the fly: the crawl's checksum path queries a page's
    // events thousands of times, so materializing each schedule once and
    // binary-searching a shared arena beats regenerating the Poisson
    // realization per query by orders of magnitude.
    {
        let pages: Vec<PageId> = universe
            .pages()
            .iter()
            .step_by(universe.page_count() / 256)
            .map(|p| p.id)
            .collect();
        let times = [3.0, 31.0, 67.0, 113.0];
        g.bench_function("checksum_queries_arena", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &pages {
                    for t in times {
                        acc ^= universe.checksum_at(p, black_box(t)).0;
                    }
                }
                black_box(acc)
            })
        });
        g.bench_function("checksum_queries_on_the_fly", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (i, &p) in pages.iter().enumerate() {
                    let page = universe.page(p);
                    let span = (page.death.min(universe.config().horizon_days)
                        - page.birth)
                        .max(0.0);
                    for t in times {
                        // What the pre-arena path amounts to per query:
                        // realize the page's schedule, then search it.
                        let mut rng = SimRng::seed_from_u64(i as u64);
                        let process =
                            PoissonProcess::generate(&mut rng, page.rate.per_day(), span);
                        acc ^= Checksum::of_version(
                            p.0,
                            process.version_at(black_box(t) - page.birth),
                        )
                        .0;
                    }
                }
                black_box(acc)
            })
        });
    }

    // Politeness bookkeeping, dense per-SiteId arena vs the `HashMap` it
    // replaced: the fetcher consults and updates a per-site next-allowed
    // time on every single fetch slot.
    {
        use std::collections::HashMap;
        let n_sites = 4_096u32;
        let dense: Vec<f64> = (0..n_sites).map(|i| i as f64 * 0.25).collect();
        let map: HashMap<SiteId, f64> =
            (0..n_sites).map(|i| (SiteId(i), i as f64 * 0.25)).collect();
        let probes: Vec<SiteId> =
            (0..n_sites).map(|i| SiteId((i * 7919) % n_sites)).collect();
        g.bench_function("politeness_lookup_dense", |b| {
            b.iter(|| {
                let mut sum = 0.0;
                for &s in &probes {
                    sum += dense[s.0 as usize];
                }
                black_box(sum)
            })
        });
        g.bench_function("politeness_lookup_hashmap", |b| {
            b.iter(|| {
                let mut sum = 0.0;
                for &s in &probes {
                    sum += map.get(&s).copied().unwrap_or(0.0);
                }
                black_box(sum)
            })
        });
    }

    // Revisit queue throughput.
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("queue_push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = webevo::schedule::RevisitQueue::new();
                for i in 0..n {
                    q.push(Url::new(SiteId(0), PageId(i as u64)), (i % 97) as f64);
                }
                while let Some(v) = q.pop() {
                    black_box(v);
                }
            })
        });
    }

    // Simulated fetch path.
    let root = universe.sites()[0].slots[0][0];
    let url = universe.url_of(root);
    g.bench_function("sim_fetch", |b| {
        let mut fetcher = SimFetcher::new(&universe);
        let mut t = 0.0;
        b.iter(|| {
            t += 0.001;
            black_box(webevo::sim::Fetcher::fetch(&mut fetcher, url, t))
        })
    });

    // Slot-occupancy resolution (binary search over birth-ordered
    // incarnations) — `out_links`/`window` hammer this per BFS child on
    // the fetch hot path, so it gets its own datapoint: a full
    // window-sweep of every site at churn-heavy times.
    g.bench_function("occupant_window_sweep", |b| {
        b.iter(|| {
            let mut pages = 0usize;
            for t in [0.0, 40.0, 80.0, 120.0] {
                for site in universe.sites() {
                    pages += universe.window(site.id, black_box(t)).len();
                }
            }
            black_box(pages)
        })
    });
    g.bench_function("occupant_point_lookups", |b| {
        let site = universe.sites()[0].id;
        b.iter(|| {
            let mut hits = 0usize;
            for slot in 0..universe.sites()[0].slot_count() {
                for t in [5.0, 65.0, 125.0] {
                    hits += usize::from(universe.occupant(site, slot, black_box(t)).is_some());
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
