//! Micro-benchmarks of the durability layer: snapshot encode/decode
//! throughput — binary (version 3) against the legacy JSON (version 2)
//! codec, at collection sizes bracketing a production shard — and WAL
//! append latency.
//!
//! The numbers to watch: binary snapshot cost must stay ≥5× below the
//! JSON baseline at 100k pages (the `repro bench` target enforces the same
//! bar in CI); WAL appends are the per-boundary steady-state cost and must
//! stay flat regardless of collection size (they scale with the *fetch
//! rate*, not the corpus).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webevo::store::{
    decode_snapshot, encode_snapshot, encode_snapshot_json, WalWriter,
};
use webevo_bench::{synthetic_records, synthetic_state};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.sample_size(10);

    for &pages in &[10_000u64, 100_000] {
        let state = synthetic_state(pages);
        let binary_doc = encode_snapshot(&state);
        let json_doc = encode_snapshot_json(&state);
        g.bench_with_input(
            BenchmarkId::new("snapshot_encode_pages", pages),
            &state,
            |b, state| b.iter(|| black_box(encode_snapshot(black_box(state)))),
        );
        g.bench_with_input(
            BenchmarkId::new("snapshot_decode_pages", pages),
            &binary_doc,
            |b, doc| b.iter(|| black_box(decode_snapshot(black_box(doc)).expect("decodes"))),
        );
        // The legacy JSON codec, as the measured baseline for the same
        // state (decode goes through the same version-sniffing entry).
        g.bench_with_input(
            BenchmarkId::new("snapshot_encode_json_pages", pages),
            &state,
            |b, state| b.iter(|| black_box(encode_snapshot_json(black_box(state)))),
        );
        g.bench_with_input(
            BenchmarkId::new("snapshot_decode_json_pages", pages),
            &json_doc,
            |b, doc| {
                b.iter(|| {
                    black_box(decode_snapshot(black_box(doc.as_bytes())).expect("decodes"))
                })
            },
        );
    }

    // WAL append latency: one pass-boundary flush of a day's worth of
    // fetch records (the batch size tracks crawl rate, not corpus size).
    for &batch in &[64u64, 512] {
        let records = synthetic_records(batch);
        let path = std::env::temp_dir()
            .join(format!("webevo-bench-wal-{}-{batch}.wlog", std::process::id()));
        let mut writer = WalWriter::create(&path).expect("temp WAL writable");
        let mut seq = 0u64;
        g.bench_with_input(
            BenchmarkId::new("wal_append_records", batch),
            &records,
            |b, records| {
                b.iter(|| {
                    seq += batch;
                    writer.append_committed(black_box(records), seq).expect("append")
                })
            },
        );
        let _ = std::fs::remove_file(&path);
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
