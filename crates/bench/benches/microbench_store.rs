//! Micro-benchmarks of the durability layer: snapshot encode/decode
//! throughput and WAL append latency, at collection sizes bracketing a
//! production shard (10k and 100k pages).
//!
//! The numbers to watch: snapshot cost scales with collection size but is
//! paid only every `snapshot_every_days`; WAL appends are the per-boundary
//! steady-state cost and must stay flat regardless of collection size
//! (they scale with the *fetch rate*, not the corpus).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webevo::prelude::*;
use webevo::store::{decode_snapshot, encode_snapshot, WalWriter};
use webevo::core::{CrawlModule, EngineClock, EngineKind, QueueEntry, UpdateModule};
use webevo::prelude::EngineConfig;

/// Build a synthetic engine state with `pages` stored pages carrying
/// realistic per-page baggage: a few links, a populated change history,
/// Bayesian posteriors, and a queue entry each.
fn synthetic_state(pages: u64) -> CrawlerState {
    let config = IncrementalConfig::monthly(pages as usize);
    let mut collection = Collection::new(pages as usize, 50);
    let mut all_urls = AllUrls::new();
    let mut queue = Vec::with_capacity(pages as usize);
    for i in 0..pages {
        let url = Url::new(SiteId((i % 997) as u32), PageId(i));
        let links = vec![
            Url::new(url.site, PageId((i + 1) % pages)),
            Url::new(url.site, PageId((i + 7) % pages)),
        ];
        collection.save(url, Checksum(i), links, 0.0);
        // A short revisit history so estimator state is non-trivial.
        for day in 1..=4u64 {
            collection.update(PageId(i), Checksum(i + day / 2), vec![], day as f64);
        }
        all_urls.add_in_link(url, PageId((i + 3) % pages), 0.0);
        queue.push(QueueEntry { due_bits: (5.0 + (i % 30) as f64).to_bits(), url });
    }
    CrawlerState {
        engine: EngineKind::Incremental,
        run_start: 0.0,
        seeded: true,
        clock: EngineClock { t: 4.0, next_ranking: 5.0, next_sample: 5.0 },
        fetch_seq: pages * 5,
        update: UpdateModule::new(config.revisit, config.estimator, 30.0),
        config: EngineConfig::Incremental(config),
        collection,
        all_urls,
        queue,
        queued: (0..pages).map(PageId).collect(),
        admissions: Vec::new(),
        ranking_runs: 4,
        ranking_applied: 0,
        rank_pending: false,
        crawl: CrawlModule::default(),
        periodic: None,
        metrics: CrawlMetrics::default(),
        fetcher: None,
    }
}

fn fetch_records(n: u64) -> Vec<FetchRecord> {
    (1..=n)
        .map(|seq| FetchRecord {
            seq,
            url: Url::new(SiteId((seq % 97) as u32), PageId(seq)),
            t: seq as f64 * 0.01,
            result: Ok(FetchOutcome {
                checksum: Checksum(seq),
                links: vec![Url::new(SiteId(1), PageId(seq + 1))],
                last_modified: None,
            }),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.sample_size(10);

    for &pages in &[10_000u64, 100_000] {
        let state = synthetic_state(pages);
        let doc = encode_snapshot(&state);
        g.bench_with_input(
            BenchmarkId::new("snapshot_encode_pages", pages),
            &state,
            |b, state| b.iter(|| black_box(encode_snapshot(black_box(state)))),
        );
        g.bench_with_input(
            BenchmarkId::new("snapshot_decode_pages", pages),
            &doc,
            |b, doc| b.iter(|| black_box(decode_snapshot(black_box(doc)).expect("decodes"))),
        );
    }

    // WAL append latency: one pass-boundary flush of a day's worth of
    // fetch records (the batch size tracks crawl rate, not corpus size).
    for &batch in &[64u64, 512] {
        let records = fetch_records(batch);
        let path = std::env::temp_dir()
            .join(format!("webevo-bench-wal-{}-{batch}.wlog", std::process::id()));
        let mut writer = WalWriter::create(&path).expect("temp WAL writable");
        let mut seq = 0u64;
        g.bench_with_input(
            BenchmarkId::new("wal_append_records", batch),
            &records,
            |b, records| {
                b.iter(|| {
                    seq += batch;
                    writer.append_committed(black_box(records), seq).expect("append")
                })
            },
        );
        let _ = std::fs::remove_file(&path);
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
