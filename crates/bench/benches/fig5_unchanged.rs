//! Figure 5: fraction-unchanged survival curves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::experiment::unchanged_curves;
use webevo::prelude::*;
use webevo_bench::bench_universe;

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let data = DailyMonitor::new(MonitorConfig {
        days: 120,
        failure_rate: 0.0,
        time_of_day: 0.0,
    })
    .run(&universe, &sites);
    let mut g = c.benchmark_group("fig5");
    g.bench_function("unchanged_curves", |b| {
        b.iter(|| {
            let (overall, by_domain) = unchanged_curves(black_box(&data));
            black_box((overall.half_life_days(), by_domain))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
