//! Ablation: the two Figure 10 architectures end to end, plus the §5.3
//! decision-separation argument (ranking cadence vs throughput).
//!
//! Prints the comparison once so `cargo bench` output records the
//! reproduced Figure 10 numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::prelude::*;
use webevo_bench::bench_universe;

fn incremental_cfg(capacity: usize, cycle: f64, ranking_interval: f64) -> IncrementalConfig {
    IncrementalConfig {
        capacity,
        crawl_rate_per_day: capacity as f64 / cycle,
        ranking_interval_days: ranking_interval,
        revisit: RevisitStrategy::Optimal,
        estimator: EstimatorKind::Ep,
        history_window: 150,
        sample_interval_days: 1.0,
        ranking: RankingConfig::default(),
    }
}

fn print_comparison(universe: &WebUniverse) {
    let capacity = 150;
    let cycle = 10.0;
    let run = |kind: EngineKind| {
        let mut session = CrawlSession::builder()
            .engine(kind)
            .incremental(incremental_cfg(capacity, cycle, 1.0))
            .periodic(PeriodicConfig {
                capacity,
                cycle_days: cycle,
                window_days: cycle / 4.0,
                sample_interval_days: 1.0,
            })
            .universe(universe)
            .build()
            .expect("a valid session");
        session.run(60.0).expect("the crawl runs");
        session.metrics().clone()
    };
    let inc = run(EngineKind::Incremental);
    let per = run(EngineKind::Periodic);
    println!("\n[ablation_crawler_architectures] incremental vs periodic (60 days):");
    println!(
        "  freshness {:.3} vs {:.3} | found->visible {:.2}d vs {:.2}d | peak {:.0} vs {:.0} pages/day",
        inc.average_freshness_from(20.0),
        per.average_freshness_from(20.0),
        inc.discovery_latency.mean(),
        per.discovery_latency.mean(),
        inc.peak_speed,
        per.peak_speed,
    );
}

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    print_comparison(&universe);
    let mut g = c.benchmark_group("crawler_architectures");
    g.sample_size(10);
    g.bench_function("incremental_30d", |b| {
        b.iter(|| {
            let mut session = CrawlSession::builder()
                .engine(EngineKind::Incremental)
                .incremental(incremental_cfg(100, 10.0, 1.0))
                .universe(&universe)
                .build()
                .expect("a valid session");
            session.run(30.0).expect("the crawl runs");
            black_box(session.metrics().fetches)
        })
    });
    g.bench_function("periodic_30d", |b| {
        b.iter(|| {
            let mut session = CrawlSession::builder()
                .engine(EngineKind::Periodic)
                .periodic(PeriodicConfig {
                    capacity: 100,
                    cycle_days: 10.0,
                    window_days: 2.5,
                    sample_interval_days: 1.0,
                })
                .universe(&universe)
                .build()
                .expect("a valid session");
            session.run(30.0).expect("the crawl runs");
            black_box(session.metrics().fetches)
        })
    });
    // §5.3 decision separation: a fast ranking cadence costs crawl-loop
    // time; the architecture keeps it off the per-crawl path, so even a
    // 10x cadence change must not change throughput 10x.
    for ranking_interval in [0.25, 2.5] {
        g.bench_function(
            format!("incremental_ranking_every_{ranking_interval}d"),
            |b| {
                b.iter(|| {
                    let mut session = CrawlSession::builder()
                        .engine(EngineKind::Incremental)
                        .incremental(incremental_cfg(100, 10.0, ranking_interval))
                        .universe(&universe)
                        .build()
                        .expect("a valid session");
                    session.run(30.0).expect("the crawl runs");
                    black_box(session.metrics().fetches)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
