//! Ablation: freshness gain of optimal vs uniform vs proportional
//! scheduling across budget levels (the §4.3 10-23% claim).
//!
//! Also *prints* the gain table once so `cargo bench` output records the
//! reproduced numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webevo::prelude::*;
use webevo_bench::paper_rate_mixture;

fn print_gain_table() {
    let rates = paper_rate_mixture(2, 200);
    println!("\n[ablation_schedule_gain] optimal-vs-uniform freshness gain:");
    for cycle in [5.0, 10.0, 30.0, 60.0] {
        let budget = rates.len() as f64 / cycle;
        let f_uni =
            evaluate_allocation(&rates, &uniform_allocation(&rates, budget).unwrap());
        let f_opt = evaluate_allocation(
            &rates,
            &optimal_allocation(&rates, budget).unwrap().allocation,
        );
        println!(
            "  cycle {cycle:>4.0}d: uniform {f_uni:.3} optimal {f_opt:.3} gain {:+.1}%",
            (f_opt / f_uni - 1.0) * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    print_gain_table();
    let rates = paper_rate_mixture(2, 200);
    let mut g = c.benchmark_group("schedule_gain");
    for cycle in [5.0f64, 30.0] {
        let budget = rates.len() as f64 / cycle;
        g.bench_with_input(
            BenchmarkId::new("evaluate_all_policies", cycle as u64),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let u = evaluate_allocation(
                        &rates,
                        &uniform_allocation(&rates, budget).unwrap(),
                    );
                    let p = evaluate_allocation(
                        &rates,
                        &proportional_allocation(&rates, budget).unwrap(),
                    );
                    let o = evaluate_allocation(
                        &rates,
                        &optimal_allocation(&rates, budget).unwrap().allocation,
                    );
                    black_box((u, p, o))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
