//! Figure 6: Poisson-model verification (interval grouping + GoF tests).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::experiment::poisson_fit_for_interval;
use webevo::prelude::*;
use webevo::stats::gof::{chi_square_geometric_fit, ks_test_exponential};
use webevo_bench::bench_universe;

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let data = DailyMonitor::new(MonitorConfig {
        days: 120,
        failure_rate: 0.0,
        time_of_day: 0.0,
    })
    .run(&universe, &sites);
    let mut g = c.benchmark_group("fig6");
    g.bench_function("fit_10day_group", |b| {
        b.iter(|| black_box(poisson_fit_for_interval(black_box(&data), 10.0, 0.3)))
    });
    // GoF micro-benches on synthetic exponential samples.
    let mut rng = SimRng::seed_from_u64(1);
    let sample: Vec<f64> = (0..5000)
        .map(|_| webevo::stats::dist::sample_exponential(&mut rng, 0.1).ceil())
        .collect();
    g.bench_function("chi_square_geometric_5k", |b| {
        b.iter(|| black_box(chi_square_geometric_fit(black_box(&sample))))
    });
    g.bench_function("ks_exponential_5k", |b| {
        b.iter(|| black_box(ks_test_exponential(black_box(&sample))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
