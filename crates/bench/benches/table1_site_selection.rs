//! Table 1: site selection by site-level PageRank over a snapshot graph.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::prelude::*;
use webevo_bench::bench_universe;

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    let mut g = c.benchmark_group("table1");
    g.sample_size(20);
    g.bench_function("snapshot_graph", |b| {
        b.iter(|| black_box(universe.snapshot_graph(0.0)))
    });
    g.bench_function("site_selection", |b| {
        b.iter(|| {
            let sel = select_sites(black_box(&universe), 0.0, 8, 6);
            black_box(sel.total())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
