//! Figure 8: shadowing curves (crawler's vs current collection).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::freshness::curves::policy_curves;
use webevo::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    for (label, mode) in [
        ("steady_shadow", CrawlMode::Steady),
        ("batch_shadow", CrawlMode::Batch { window_days: 7.0 }),
    ] {
        let policy = CrawlPolicy { mode, update: UpdateMode::Shadow, cycle_days: 30.0 };
        g.bench_function(label, |b| {
            b.iter(|| {
                let curves = policy_curves(black_box(&policy), 0.2, 2, 100);
                black_box((curves.crawlers.time_average(), curves.current.time_average()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
