//! Figure 7: instantaneous freshness curves for batch vs steady crawlers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::freshness::curves::{inplace_freshness_at, policy_curves};
use webevo::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.bench_function("pointwise_eval", |b| {
        b.iter(|| black_box(inplace_freshness_at(black_box(0.2), 30.0, 7.0, 17.3)))
    });
    g.bench_function("full_curve_2cycles_x100", |b| {
        let policy = CrawlPolicy {
            mode: CrawlMode::Batch { window_days: 7.0 },
            update: UpdateMode::InPlace,
            cycle_days: 30.0,
        };
        b.iter(|| black_box(policy_curves(black_box(&policy), 0.2, 2, 100)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
