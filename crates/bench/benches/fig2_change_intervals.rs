//! Figure 2: the daily monitor plus change-interval histogram pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::experiment::change_interval_histograms;
use webevo::prelude::*;
use webevo_bench::bench_universe;

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let monitor = DailyMonitor::new(MonitorConfig {
        days: 60,
        failure_rate: 0.0,
        time_of_day: 0.0,
    });
    let data = monitor.run(&universe, &sites);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("daily_monitor_60d", |b| {
        b.iter(|| black_box(monitor.run(&universe, &sites).page_count()))
    });
    g.bench_function("interval_histograms", |b| {
        b.iter(|| black_box(change_interval_histograms(black_box(&data))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
