//! Figure 9: the optimal revisit-frequency solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webevo::prelude::*;
use webevo_bench::paper_rate_mixture;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.bench_function("frequency_curve_80pts", |b| {
        b.iter(|| black_box(optimal_frequency_curve(0.001, 10.0, 80, 25.0).unwrap()))
    });
    for n in [100usize, 1000, 10_000] {
        let rates = paper_rate_mixture(1, n / 4);
        g.bench_with_input(BenchmarkId::new("optimal_allocation", n), &rates, |b, rates| {
            b.iter(|| black_box(optimal_allocation(rates, rates.len() as f64 / 30.0).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
