//! Figure 4: visible-lifespan histograms (Methods 1 and 2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::experiment::{lifespan_histograms, LifespanMethod};
use webevo::prelude::*;
use webevo_bench::bench_universe;

fn bench(c: &mut Criterion) {
    let universe = bench_universe();
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let data = DailyMonitor::new(MonitorConfig {
        days: 90,
        failure_rate: 0.0,
        time_of_day: 0.0,
    })
    .run(&universe, &sites);
    let mut g = c.benchmark_group("fig4");
    g.bench_function("lifespan_method1", |b| {
        b.iter(|| black_box(lifespan_histograms(black_box(&data), LifespanMethod::Method1)))
    });
    g.bench_function("lifespan_method2", |b| {
        b.iter(|| black_box(lifespan_histograms(black_box(&data), LifespanMethod::Method2)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
