//! Table 2 + §4 sensitivity: analytic freshness for the four policy
//! combinations, and the Monte Carlo cross-check.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webevo::freshness::montecarlo::simulate_policy;
use webevo::prelude::*;
use webevo_bench::TABLE2_LAMBDA;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.bench_function("analytic_four_entries", |b| {
        b.iter(|| {
            let l = black_box(TABLE2_LAMBDA);
            black_box((
                freshness_steady_inplace(l, 30.0),
                freshness_batch_inplace(l, 30.0, 7.0),
                freshness_steady_shadow(l, 30.0),
                freshness_batch_shadow(l, 30.0, 7.0),
            ))
        })
    });
    g.sample_size(10);
    g.bench_function("montecarlo_cross_check", |b| {
        let policy = CrawlPolicy::table2_policies()[3];
        b.iter(|| {
            black_box(simulate_policy(&policy, TABLE2_LAMBDA, 100, 2, 20, 42).current_avg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
