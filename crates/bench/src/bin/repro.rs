//! Regenerate every table and figure of the paper from the simulator and
//! the analytic layer — and run durable, resumable crawls.
//!
//! ```sh
//! cargo run --release -p webevo-bench --bin repro -- all
//! cargo run --release -p webevo-bench --bin repro -- table2 fig9
//!
//! # A 75-day crawl checkpointed to disk, killed, and continued:
//! cargo run --release -p webevo-bench --bin repro -- crawl \
//!     --checkpoint-dir /tmp/webevo-crawl --checkpoint-every 5
//! cargo run --release -p webevo-bench --bin repro -- crawl \
//!     --checkpoint-dir /tmp/webevo-crawl --resume
//! ```
//!
//! Available targets: `table1 table2 sensitivity fig2 fig4 fig5 fig6 fig7
//! fig8 fig9 gain crawlers crawl fleet serve bench e2e analyze all` (`all`
//! excludes `bench`, `fleet`, `serve`, `e2e` and `analyze`).
//!
//! Flags (for the `analyze` target — the static-analysis gate):
//! * `--deny-warnings` — also fail on warnings (the CI mode).
//! * `--update-schema` — regenerate `SCHEMA.lock` from the sources.
//! * `--root DIR` — scan a different workspace root.
//! * `--out FILE` — also write the findings as JSON to `FILE`.
//!
//! Flags (for the `crawl` target):
//! * `--checkpoint-dir DIR` — persist snapshots + WAL under `DIR`.
//! * `--checkpoint-every DAYS` — full-snapshot cadence (default 5).
//! * `--resume` — recover from `--checkpoint-dir` and continue instead of
//!   starting fresh.
//! * `--days N` — crawl horizon in simulated days (default 75).
//! * `--sites N` / `--pages N` — swap the default medium-scale universe
//!   for a ratio-preserving scaled one with `N` sites / roughly `N` page
//!   slots, materialized to `--days` (for scale runs; not compatible with
//!   resuming to a later horizon).
//!
//! Flags (for the `e2e` target):
//! * `--days N` — simulated days for the timed crawl (default 12).
//! * `--sites N` — sites in the scaled universe (default 270).
//! * `--pages N` — page slots in the scaled universe (default 1,000,000).
//! * `--out FILE` — also write the JSON report to `FILE`.
//!
//! `e2e` is the hot-loop overhaul's headline measurement: generate a
//! million-page universe (event arena + page table byte counts reported
//! as the RSS proxy) and time an incremental crawl end to end. One JSON
//! document (see `BENCH_e2e.json` at the repo root), non-zero exit on its
//! fetch-throughput regression marker.
//!
//! Observability flags (for the `crawl` and `fleet` targets; any of them
//! switches the run/an extra fleet run to a recording [`ObsSink`] and
//! prints the end-of-run stage-time report):
//! * `--trace FILE` — write the span trace as JSON lines.
//! * `--metrics-out FILE` — write the metrics registry in Prometheus text
//!   exposition format (per-shard series under a `shard` label).
//! * `--folded FILE` — write folded stacks (flamegraph input).
//!
//! Flags (for the `fleet` target):
//! * `--shards N` — shard count for the fleet leg (default 4).
//! * `--days N` — horizon for both legs (default 15).
//! * `--out FILE` — also write the JSON report to `FILE`.
//!
//! `fleet` runs the same crawl budget as one engine and as an N-shard
//! [`FleetSession`], emits one machine-readable JSON document (per-shard
//! and merged throughput, scaling efficiency — see `BENCH_fleet.json` at
//! the repo root for a checked-in run), and exits non-zero on its
//! regression marker. The throughput floor scales with the machine:
//! `max(0.75, min(shards, cores)/2)` — on a multi-core runner a 4-shard
//! fleet must beat the single engine ≥ 2×, while a single-core machine
//! only checks that sharding does not regress throughput.
//!
//! Flags (for the `serve` target):
//! * `--days N` — crawl horizon for every leg (default 15).
//! * `--readers N` — reader threads hammering the query service during
//!   the served leg (default 4).
//! * `--out FILE` — also write the JSON report to `FILE`.
//!
//! `serve` measures the epoch-swapped query layer under a live crawl:
//! an unserved baseline, a served-but-unqueried leg (the boundary
//! publisher's cost, gated: serving must stay within 10% of the unserved
//! wall time), and a served leg with `--readers` threads hammering the
//! [`QueryService`] concurrently (sustained QPS with a conservative
//! floor, p50/p99 query latency, and a swap-stall gate on the p99 of the
//! cheapest query — which only stalls when a reader blocks behind an
//! epoch swap). One JSON document (see `BENCH_serve.json` at the repo
//! root), non-zero exit on its regression marker.
//!
//! Flags (for the `bench` target):
//! * `--bench-days N` — simulated days for the end-to-end throughput leg
//!   (default 30).
//! * `--bench-pages A,B,…` — synthetic collection sizes for the codec leg
//!   (default `10000,100000`).
//! * `--out FILE` — also write the JSON report to `FILE`.
//!
//! `bench` emits one machine-readable JSON document (see
//! `BENCH_substrates.json` at the repo root for a checked-in run) and
//! exits non-zero if the binary codec fails to clearly beat the JSON
//! baseline — the perf-regression smoke CI runs.

use std::path::PathBuf;
use webevo::experiment::report;
use webevo::freshness::curves::policy_curves;
use webevo::prelude::*;
use webevo::store::{decode_snapshot, encode_snapshot, encode_snapshot_json, WalWriter};
use webevo_bench::{
    median_secs, paper_rate_mixture, repro_experiment, repro_universe, synthetic_records,
    synthetic_state, TABLE2_LAMBDA,
};

/// Where the observability flags send their exports.
#[derive(Clone, Default)]
struct ObsOutputs {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    folded: Option<PathBuf>,
}

impl ObsOutputs {
    fn any(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.folded.is_some()
    }

    /// Dump whatever was requested from `obs`, plus the stage report to
    /// stdout. Exits nonzero on an unwritable path — the operator asked
    /// for the file, so silently losing it is not an option.
    fn dump(&self, obs: &ObsSink) {
        let write = |path: &PathBuf, what: &str, body: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| {
            let mut buf = Vec::new();
            body(&mut buf).expect("in-memory export cannot fail");
            std::fs::write(path, &buf).unwrap_or_else(|e| {
                eprintln!("[repro] cannot write {what} to {path:?}: {e}");
                std::process::exit(1);
            });
            eprintln!("[repro] wrote {what} to {path:?}");
        };
        if let Some(path) = &self.trace {
            write(path, "span trace (JSON lines)", &|out| obs.write_trace_jsonl(out));
        }
        if let Some(path) = &self.metrics {
            write(path, "metrics (Prometheus text)", &|out| obs.write_prometheus(out));
        }
        if let Some(path) = &self.folded {
            write(path, "folded stacks", &|out| obs.write_folded(out));
        }
        // The stage report only means something when a recording sink
        // actually captured spans — a noop sink would print an empty
        // "no spans recorded" stub, so skip it.
        if obs.enabled() {
            println!("{}", obs.stage_report());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every = 5.0f64;
    let mut resume = false;
    let mut days: Option<f64> = None;
    let mut shards = 4u32;
    let mut readers = 4usize;
    let mut sites: Option<usize> = None;
    let mut pages: Option<usize> = None;
    let mut bench_days = 30.0f64;
    let mut bench_pages: Vec<u64> = vec![10_000, 100_000];
    let mut bench_out: Option<PathBuf> = None;
    let mut obs_out = ObsOutputs::default();
    let mut deny_warnings = false;
    let mut update_schema = false;
    let mut analyze_root: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--checkpoint-dir" => {
                let dir = iter.next().expect("--checkpoint-dir needs a path");
                checkpoint_dir = Some(PathBuf::from(dir));
            }
            "--checkpoint-every" => {
                checkpoint_every = iter
                    .next()
                    .expect("--checkpoint-every needs a day count")
                    .parse()
                    .ok()
                    .filter(|&v: &f64| v > 0.0)
                    .expect("--checkpoint-every must be a positive number");
            }
            "--resume" => resume = true,
            "--days" => {
                days = Some(
                    iter.next()
                        .expect("--days needs a day count")
                        .parse()
                        .ok()
                        .filter(|&v: &f64| v > 0.0)
                        .expect("--days must be a positive number"),
                );
            }
            "--shards" => {
                shards = iter
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .ok()
                    .filter(|&v: &u32| v > 0)
                    .expect("--shards must be a positive integer");
            }
            "--sites" => {
                sites = Some(
                    iter.next()
                        .expect("--sites needs a count")
                        .parse()
                        .ok()
                        .filter(|&v: &usize| v > 0)
                        .expect("--sites must be a positive integer"),
                );
            }
            "--pages" => {
                pages = Some(
                    iter.next()
                        .expect("--pages needs a count")
                        .parse()
                        .ok()
                        .filter(|&v: &usize| v > 0)
                        .expect("--pages must be a positive integer"),
                );
            }
            "--readers" => {
                readers = iter
                    .next()
                    .expect("--readers needs a count")
                    .parse()
                    .ok()
                    .filter(|&v: &usize| v > 0)
                    .expect("--readers must be a positive integer");
            }
            "--bench-days" => {
                bench_days = iter
                    .next()
                    .expect("--bench-days needs a day count")
                    .parse()
                    .ok()
                    .filter(|&v: &f64| v > 0.0)
                    .expect("--bench-days must be a positive number");
            }
            "--bench-pages" => {
                bench_pages = iter
                    .next()
                    .expect("--bench-pages needs a comma-separated list")
                    .split(',')
                    .map(|p| {
                        p.parse::<u64>()
                            .ok()
                            .filter(|&v| v > 0)
                            .expect("--bench-pages entries must be positive integers")
                    })
                    .collect();
            }
            "--out" => {
                bench_out = Some(PathBuf::from(iter.next().expect("--out needs a path")));
            }
            "--trace" => {
                obs_out.trace = Some(PathBuf::from(iter.next().expect("--trace needs a path")));
            }
            "--metrics-out" => {
                obs_out.metrics =
                    Some(PathBuf::from(iter.next().expect("--metrics-out needs a path")));
            }
            "--folded" => {
                obs_out.folded =
                    Some(PathBuf::from(iter.next().expect("--folded needs a path")));
            }
            "--deny-warnings" => deny_warnings = true,
            "--update-schema" => update_schema = true,
            "--root" => {
                analyze_root = Some(PathBuf::from(iter.next().expect("--root needs a path")));
            }
            other => positional.push(other.to_string()),
        }
    }
    let targets: Vec<&str> = if positional.is_empty() || positional.iter().any(|a| a == "all") {
        vec![
            "table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "table2",
            "sensitivity", "fig9", "gain", "crawlers",
        ]
    } else {
        positional.iter().map(|s| s.as_str()).collect()
    };
    if (checkpoint_dir.is_some() || resume) && !targets.contains(&"crawl") {
        eprintln!(
            "[repro] warning: checkpoint/resume flags only apply to the `crawl` target, \
             which is not among the requested targets — they will be ignored"
        );
    }

    // The measurement-study targets share one monitored run.
    let needs_experiment = targets
        .iter()
        .any(|t| matches!(*t, "table1" | "fig2" | "fig4" | "fig5" | "fig6"));
    let experiment = needs_experiment.then(|| {
        eprintln!("[repro] running the 128-day monitoring experiment (medium scale)...");
        repro_experiment()
    });

    for target in targets {
        match target {
            "table1" => {
                let e = experiment.as_ref().expect("experiment ran");
                println!("{}", report::render_table1(&e.selection.domain_counts));
                println!(
                    "(paper: com 132, edu 78, netorg 30, gov 30 of 270 — scaled mix here)\n"
                );
            }
            "fig2" => {
                let e = experiment.as_ref().expect("experiment ran");
                println!("{}", report::render_fig2(&e.fig2_overall, &e.fig2_by_domain));
                println!(
                    "(paper: >20% of all pages and >40% of com changed every visit;\n\
                     >50% of edu/gov never changed in 4 months)\n"
                );
            }
            "fig4" => {
                let e = experiment.as_ref().expect("experiment ran");
                println!(
                    "{}",
                    report::render_fig4(&e.fig4_method1, &e.fig4_method2, &e.fig4_by_domain)
                );
                println!(
                    "(paper: >70% of pages live beyond a month; >50% of edu/gov beyond 4 months)\n"
                );
            }
            "fig5" => {
                let e = experiment.as_ref().expect("experiment ran");
                println!(
                    "{}",
                    report::render_fig5(&e.fig5_overall, &e.fig5_by_domain, 10)
                );
                println!(
                    "(paper: 50% of the web changed by ~day 50, com by ~day 11, gov ~4 months;\n\
                     see EXPERIMENTS.md on the Fig2/Fig5 internal tension)\n"
                );
            }
            "fig6" => {
                let e = experiment.as_ref().expect("experiment ran");
                for f in &e.fig6 {
                    println!("{}", report::render_fig6(f));
                }
                println!("(paper: a Poisson process predicts the observed data very well)\n");
            }
            "fig7" => {
                println!("Figure 7: freshness evolution, batch-mode vs steady (in-place)");
                let lambda = 0.2; // the paper uses a high rate to show the trends
                let batch = CrawlPolicy {
                    mode: CrawlMode::Batch { window_days: 7.0 },
                    update: UpdateMode::InPlace,
                    cycle_days: 30.0,
                };
                let steady = CrawlPolicy {
                    mode: CrawlMode::Steady,
                    update: UpdateMode::InPlace,
                    cycle_days: 30.0,
                };
                let bc = policy_curves(&batch, lambda, 2, 30);
                let sc = policy_curves(&steady, lambda, 2, 30);
                println!("{:<10}{:>14}{:>14}", "day", "batch", "steady");
                for ((t, fb), (_, fs)) in bc.current.rows().zip(sc.current.rows()).step_by(5) {
                    println!("{t:<10.1}{fb:>14.3}{fs:>14.3}");
                }
                println!(
                    "time averages: batch {:.3}, steady {:.3} (equal, as the paper proves)\n",
                    bc.current.time_average(),
                    sc.current.time_average()
                );
            }
            "fig8" => {
                println!("Figure 8: freshness with shadowing (crawler's vs current collection)");
                let lambda = 0.2;
                for (label, mode) in [
                    ("steady", CrawlMode::Steady),
                    ("batch(1wk)", CrawlMode::Batch { window_days: 7.0 }),
                ] {
                    let shadow = CrawlPolicy {
                        mode,
                        update: UpdateMode::Shadow,
                        cycle_days: 30.0,
                    };
                    let inplace = CrawlPolicy { update: UpdateMode::InPlace, ..shadow };
                    let sh = policy_curves(&shadow, lambda, 2, 30);
                    let ip = policy_curves(&inplace, lambda, 2, 30);
                    println!("--- {label} ---");
                    println!(
                        "{:<10}{:>14}{:>14}{:>16}",
                        "day", "crawler's", "current", "in-place (dash)"
                    );
                    for (((t, fc), (_, fcur)), (_, fip)) in sh
                        .crawlers
                        .rows()
                        .zip(sh.current.rows())
                        .zip(ip.current.rows())
                        .step_by(10)
                    {
                        println!("{t:<10.1}{fc:>14.3}{fcur:>14.3}{fip:>16.3}");
                    }
                    println!(
                        "time-averaged current: shadow {:.3} vs in-place {:.3}\n",
                        sh.current.time_average(),
                        ip.current.time_average()
                    );
                }
            }
            "table2" => {
                println!("Table 2: Freshness of the collection for various choices");
                println!("(all pages change every 4 months; 1-month cycle, 1-week batch window)\n");
                println!("{:<14}{:>10}{:>12}", "", "steady", "batch-mode");
                let s_ip = freshness_steady_inplace(TABLE2_LAMBDA, 30.0);
                let b_ip = freshness_batch_inplace(TABLE2_LAMBDA, 30.0, 7.0);
                let s_sh = freshness_steady_shadow(TABLE2_LAMBDA, 30.0);
                let b_sh = freshness_batch_shadow(TABLE2_LAMBDA, 30.0, 7.0);
                println!("{:<14}{s_ip:>10.2}{b_ip:>12.2}", "In-place");
                println!("{:<14}{s_sh:>10.2}{b_sh:>12.2}", "Shadowing");
                println!("\n(paper: 0.88 / 0.88 / 0.77 / 0.86)");
                // Monte Carlo cross-check.
                use webevo::freshness::montecarlo::simulate_policy;
                println!("\nMonte Carlo cross-check (400 pages, 4 cycles):");
                for policy in CrawlPolicy::table2_policies() {
                    let mc =
                        simulate_policy(&policy, TABLE2_LAMBDA, 400, 4, 60, 42).current_avg;
                    println!("  {:<18} {mc:.3}", policy.label());
                }
                println!();
            }
            "sensitivity" => {
                println!("§4 sensitivity: pages change monthly, batch window = 2 weeks");
                let lambda = 1.0 / 30.0;
                println!(
                    "  in-place:  {:.2}  (paper: 0.63)",
                    freshness_batch_inplace(lambda, 30.0, 15.0)
                );
                println!(
                    "  shadowing: {:.2}  (paper: 0.50)\n",
                    freshness_batch_shadow(lambda, 30.0, 15.0)
                );
            }
            "fig9" => {
                println!("Figure 9: change frequency vs optimal revisit frequency");
                let curve = optimal_frequency_curve(0.001, 10.0, 80, 25.0)
                    .expect("valid sweep");
                println!("{:<16}{:>16}", "lambda (1/day)", "f* (visits/day)");
                for (l, f) in curve.iter().step_by(4) {
                    let bar = "#".repeat((f * 50.0).round() as usize);
                    println!("{l:<16.4}{f:>16.4}  {bar}");
                }
                println!("(paper: rises below the threshold, falls above — shape matches)\n");
            }
            "gain" => {
                println!("§4.3: freshness gain from optimizing revisit frequencies");
                println!("(paper: 10%-23% over the naive policies)\n");
                let rates = paper_rate_mixture(2, 200);
                println!(
                    "{:<24}{:>10}{:>14}{:>10}{:>12}{:>12}",
                    "budget (cycle days)", "uniform", "proportional", "optimal", "vs uni", "vs prop"
                );
                for cycle in [5.0, 10.0, 30.0, 60.0] {
                    let budget = rates.len() as f64 / cycle;
                    let f_uni = evaluate_allocation(
                        &rates,
                        &uniform_allocation(&rates, budget).unwrap(),
                    );
                    let f_prop = evaluate_allocation(
                        &rates,
                        &proportional_allocation(&rates, budget).unwrap(),
                    );
                    let f_opt = evaluate_allocation(
                        &rates,
                        &optimal_allocation(&rates, budget).unwrap().allocation,
                    );
                    println!(
                        "{:<24}{:>10.3}{:>14.3}{:>10.3}{:>11.1}%{:>11.1}%",
                        format!("1/{cycle} days"),
                        f_uni,
                        f_prop,
                        f_opt,
                        (f_opt / f_uni - 1.0) * 100.0,
                        (f_opt / f_prop - 1.0) * 100.0
                    );
                }
                println!();
            }
            "crawlers" => {
                println!("Figure 10 face-off: incremental vs periodic crawler");
                println!(
                    "(coverage regime: capacity spans the reachable population, so the\n\
                     comparison isolates scheduling and swap mechanics, not page choice)\n"
                );
                let universe = repro_universe();
                // All slots can be alive: capacity covers them.
                let capacity = universe.site_count() * universe.config().pages_per_site;
                let cycle = 15.0;
                let horizon = 75.0;
                // One budget, two engines: the comparison the paper runs.
                let budget = CrawlBudget::paper_monthly(capacity)
                    .with_cycle_days(cycle)
                    .with_batch_window_days(cycle / 4.0);
                let face_off = |kind: EngineKind| {
                    eprintln!("[repro] running {} crawler ({horizon} days)...", kind.name());
                    let mut session = CrawlSession::builder()
                        .engine(kind)
                        .budget(budget)
                        .universe(&universe)
                        .build()
                        .expect("a valid session");
                    session.run(horizon).expect("the crawl runs");
                    session.metrics().clone()
                };
                let inc = face_off(EngineKind::Incremental);
                let per = face_off(EngineKind::Periodic);
                let warmup = 2.0 * cycle;
                println!(
                    "{}",
                    CrawlMetrics::comparison_table(
                        &[("incremental", &inc), ("periodic", &per)],
                        warmup
                    )
                );
            }
            "crawl" => {
                let days = days.unwrap_or(75.0);
                println!("Durable incremental crawl ({days} simulated days)");
                // `--sites` / `--pages` swap the default medium-scale
                // universe for a ratio-preserving scaled one, materialized
                // only as far as the run needs (schedules to `--days`).
                let universe = if sites.is_some() || pages.is_some() {
                    let n_sites = sites.unwrap_or(270);
                    let n_pages = pages.unwrap_or(n_sites * 120);
                    eprintln!(
                        "[repro] generating scaled universe: {n_sites} sites, \
                         ~{n_pages} pages..."
                    );
                    WebUniverse::generate(UniverseConfig::scaled(
                        1999, n_sites, n_pages, days + 1.0,
                    ))
                } else {
                    repro_universe()
                };
                let capacity = universe.site_count() * universe.config().pages_per_site;
                let budget = CrawlBudget::paper_monthly(capacity).with_cycle_days(15.0);
                let obs = if obs_out.any() { ObsSink::recording() } else { ObsSink::noop() };
                let mut builder = CrawlSession::builder()
                    .engine(EngineKind::Incremental)
                    .budget(budget)
                    .universe(&universe)
                    .obs(obs.clone());
                if let Some(dir) = checkpoint_dir.clone() {
                    builder = builder.checkpoint(dir, checkpoint_every);
                }
                let mut session = builder.build().unwrap_or_else(|e| {
                    eprintln!("[repro] invalid crawl session: {e}");
                    std::process::exit(1);
                });
                if resume {
                    let Some(dir) = checkpoint_dir.clone() else {
                        eprintln!("[repro] --resume requires --checkpoint-dir");
                        std::process::exit(1);
                    };
                    // A reporting-only peek at the snapshot before
                    // session.resume() recovers it for real: decoding
                    // twice costs ~a second at 100k pages, which a CLI
                    // accepts for an informative banner.
                    let on_disk = match recover(&dir) {
                        Ok(Some(recovered)) => recovered,
                        Ok(None) => {
                            eprintln!(
                                "[repro] no snapshot in {dir:?}: run without --resume first"
                            );
                            std::process::exit(1);
                        }
                        Err(e) => {
                            eprintln!("[repro] checkpoint directory does not decode: {e}");
                            std::process::exit(1);
                        }
                    };
                    eprintln!(
                        "[repro] recovered snapshot at day {:.2} (fetch #{}) + {} WAL records",
                        on_disk.state.clock.t,
                        on_disk.state.fetch_seq,
                        on_disk.wal.len()
                    );
                    if days <= on_disk.state.clock.t {
                        eprintln!(
                            "[repro] checkpoint already covers day {:.2} (requested --days \
                             {days}); reporting recovered state as-is",
                            on_disk.state.clock.t
                        );
                    } else {
                        eprintln!("[repro] resuming to day {days}");
                    }
                    drop(on_disk);
                    session.resume(days).unwrap_or_else(|e| {
                        eprintln!("[repro] resume failed: {e}");
                        std::process::exit(1);
                    });
                } else {
                    session.run(days).expect("the crawl runs");
                }
                println!(
                    "{:<34}{:>13}",
                    "pages in collection",
                    session.collection_len()
                );
                println!(
                    "{}",
                    CrawlMetrics::comparison_table(
                        &[("value", session.metrics())],
                        days / 2.0
                    )
                );
                if let Some(stats) = session.checkpoint_stats() {
                    println!(
                        "{:<34}{:>13}",
                        "snapshots written", stats.snapshots
                    );
                    println!(
                        "{:<34}{:>13}",
                        "WAL flushes (records)",
                        format!("{} ({})", stats.flushes, stats.records_logged)
                    );
                }
                println!();
                if obs_out.any() {
                    obs_out.dump(&obs);
                }
            }
            "fleet" => {
                let (report, regression) =
                    run_fleet_bench(days.unwrap_or(15.0), shards, &obs_out);
                println!("{report}");
                if let Some(path) = bench_out.clone() {
                    std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
                        eprintln!("[repro] cannot write {path:?}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("[repro] wrote {path:?}");
                }
                if regression {
                    eprintln!(
                        "[repro] PERF REGRESSION: the sharded fleet fails its throughput \
                         floor against the single-engine run (see the report above)"
                    );
                    std::process::exit(1);
                }
            }
            "serve" => {
                let (report, regression) = run_serve_bench(days.unwrap_or(15.0), readers);
                println!("{report}");
                if let Some(path) = bench_out.clone() {
                    std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
                        eprintln!("[repro] cannot write {path:?}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("[repro] wrote {path:?}");
                }
                if regression {
                    eprintln!(
                        "[repro] PERF REGRESSION: the serving layer fails its gates — \
                         boundary-publish overhead, sustained QPS, or swap-stall p99 \
                         (see the report above)"
                    );
                    std::process::exit(1);
                }
            }
            "e2e" => {
                let (report, regression) = run_e2e_bench(
                    days.unwrap_or(12.0),
                    sites.unwrap_or(270),
                    pages.unwrap_or(1_000_000),
                );
                println!("{report}");
                if let Some(path) = bench_out.clone() {
                    std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
                        eprintln!("[repro] cannot write {path:?}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("[repro] wrote {path:?}");
                }
                if regression {
                    eprintln!(
                        "[repro] PERF REGRESSION: the million-page crawl fails its \
                         fetch-throughput floor (see the report above)"
                    );
                    std::process::exit(1);
                }
            }
            "bench" => {
                let (report, regression) = run_perf_bench(bench_days, &bench_pages);
                println!("{report}");
                if let Some(path) = bench_out.clone() {
                    std::fs::write(&path, format!("{report}\n")).unwrap_or_else(|e| {
                        eprintln!("[repro] cannot write {path:?}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("[repro] wrote {path:?}");
                }
                if regression {
                    eprintln!(
                        "[repro] PERF REGRESSION: binary codec no longer clearly beats \
                         the JSON baseline (see the report above)"
                    );
                    std::process::exit(1);
                }
            }
            "analyze" => {
                run_analyze(
                    analyze_root.clone(),
                    deny_warnings,
                    update_schema,
                    bench_out.clone(),
                );
            }
            other => eprintln!("[repro] unknown target: {other}"),
        }
    }
}

/// The `analyze` target: the static-analysis gate. Scans the workspace
/// sources, checks `SCHEMA.lock`, prints findings, and exits non-zero on
/// errors (or on warnings too, under `--deny-warnings` — the CI mode).
/// `--update-schema` regenerates `SCHEMA.lock` instead of just checking it.
fn run_analyze(
    root: Option<PathBuf>,
    deny_warnings: bool,
    update_schema: bool,
    out: Option<PathBuf>,
) {
    use webevo::analyze::{analyze, render_json, schema, scan_workspace, AnalyzeConfig, Severity};

    // Default to the workspace this binary was built from; `--root`
    // overrides (used by the fixture tests and for scanning checkouts).
    let root = root
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    let ws = scan_workspace(&root).unwrap_or_else(|e| {
        eprintln!("[repro] cannot scan {root:?}: {e}");
        std::process::exit(1);
    });
    let lock_path = root.join("SCHEMA.lock");
    if update_schema {
        let lock = schema::render_lock(&ws);
        std::fs::write(&lock_path, &lock).unwrap_or_else(|e| {
            eprintln!("[repro] cannot write {lock_path:?}: {e}");
            std::process::exit(1);
        });
        eprintln!("[repro] wrote {lock_path:?}");
    }
    let lock_text = std::fs::read_to_string(&lock_path).ok();
    let findings = analyze(&ws, &AnalyzeConfig::workspace_default(), lock_text.as_deref());

    let file_count: usize = ws.crates.iter().map(|c| c.files.len()).sum();
    for f in &findings {
        println!("{f}");
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.iter().filter(|f| f.severity == Severity::Warning).count();
    let notes = findings.len() - errors - warnings;
    println!(
        "[repro] analyze: {file_count} files in {} crates — {errors} error(s), \
         {warnings} warning(s), {notes} note(s)",
        ws.crates.len()
    );
    if let Some(path) = out {
        std::fs::write(&path, render_json(&findings)).unwrap_or_else(|e| {
            eprintln!("[repro] cannot write {path:?}: {e}");
            std::process::exit(1);
        });
        eprintln!("[repro] wrote {path:?}");
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        eprintln!(
            "[repro] ANALYZE FAILED: fix the findings above, or add a justified \
             ANALYZE.allow entry / regenerate SCHEMA.lock where the report says so"
        );
        std::process::exit(1);
    }
}

/// The `fleet` target: end-to-end scale-out. Runs the same fleet-wide
/// budget as a 1-shard fleet (the single-engine baseline through the
/// identical code path) and as an N-shard fleet, and reports per-shard and
/// merged throughput, cross-shard link routing, ownership imbalance, and
/// scaling efficiency as one machine-readable JSON document. The
/// `regression` field (and returned flag) is the CI smoke marker, `true`
/// when either gate fails:
///
/// * throughput — the N-shard fleet falls below `max(0.75, min(shards,
///   cores)/2)` × the 1-shard run: on a multi-core runner that demands ≥
///   half-linear scaling (2× at 4 shards), while a single-core machine
///   only verifies that sharding itself does not cost more than 25%;
/// * collection — the fleet collects fewer than 99% of the single-node
///   run's pages. Before the link-exchange protocol, shards silently
///   dropped cross-boundary discoveries (~12% of the collection at 4
///   shards); this gate pins the fix.
fn run_fleet_bench(days: f64, shards: u32, obs_out: &ObsOutputs) -> (String, bool) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let universe = repro_universe();
    let capacity = universe.site_count() * universe.config().pages_per_site;
    let budget = CrawlBudget::paper_monthly(capacity).with_cycle_days(15.0);

    // Three timed repetitions per leg, median wall time: fleet runs are
    // deterministic (identical results every repetition), so the median
    // only damps scheduler noise — one noisy-neighbor stall on a shared
    // CI runner must not trip the regression gate.
    let leg = |n: u32| {
        eprintln!("[repro] fleet: {n}-shard leg ({days} simulated days, median of 3)...");
        let mut results = None;
        let secs = median_secs(3, || {
            let mut fleet = FleetSession::builder()
                .shards(n)
                .budget(budget)
                .universe(&universe)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("[repro] invalid fleet: {e}");
                    std::process::exit(1);
                });
            fleet
                .run(days)
                .unwrap_or_else(|e| {
                    eprintln!("[repro] fleet run failed: {e}");
                    std::process::exit(1);
                });
            results = Some(fleet.results().expect("just ran").clone());
        });
        (results.expect("at least one repetition ran"), secs)
    };
    let (single, single_secs) = leg(1);
    let (fleet, fleet_secs) = leg(shards);

    // One extra *traced* fleet run when observability output was asked
    // for, outside the timed legs so tracing can never skew the speedup
    // the regression marker judges. Checkpointing into a scratch
    // directory lights up the WAL-flush and snapshot-encode stages that
    // a memory-only run never enters; determinism-under-observation is
    // pinned by tests/determinism.rs, not re-derived here.
    if obs_out.any() {
        eprintln!("[repro] fleet: traced {shards}-shard run for the observability dump...");
        let scratch = std::env::temp_dir()
            .join(format!("webevo-repro-fleet-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let obs = ObsSink::recording();
        let mut fleet = FleetSession::builder()
            .shards(shards)
            .budget(budget)
            .universe(&universe)
            .checkpoint(&scratch, (days / 3.0).max(1.0))
            .obs(obs.clone())
            .build()
            .unwrap_or_else(|e| {
                eprintln!("[repro] invalid traced fleet: {e}");
                std::process::exit(1);
            });
        fleet.run(days).unwrap_or_else(|e| {
            eprintln!("[repro] traced fleet run failed: {e}");
            std::process::exit(1);
        });
        let _ = std::fs::remove_dir_all(&scratch);
        obs_out.dump(&obs);
    }

    // Throughput counts *owned* fetch attempts only: a shard's rejections
    // of foreign URLs (routing-boundary hits absent from the 1-shard
    // baseline) cost near nothing and must not inflate the speedup the
    // regression marker judges.
    let owned = |results: &webevo::prelude::FleetMetrics| {
        results.merged.fetches
            - results.shards.iter().map(|s| s.foreign_rejects).sum::<u64>()
    };
    let single_owned = owned(&single);
    let fleet_owned = owned(&fleet);
    let single_fps = single_owned as f64 / single_secs;
    let fleet_fps = fleet_owned as f64 / fleet_secs;
    let speedup = fleet_fps / single_fps;
    let speedup_floor = (0.75f64).max(shards.min(cores as u32) as f64 / 2.0);

    // The page-loss gate: cross-shard links must actually route, so the
    // fleet's collection stays within 1% of the single-node run's.
    let single_pages = single.collection_len();
    let fleet_pages = fleet.collection_len();
    let deficit = 1.0 - fleet_pages as f64 / single_pages.max(1) as f64;
    let routed_links = fleet.routed_links();
    let min_sites = fleet.shards.iter().map(|s| s.sites).min().unwrap_or(0);
    let max_sites = fleet.shards.iter().map(|s| s.sites).max().unwrap_or(0);
    let regression =
        !(fleet_owned > 0 && speedup >= speedup_floor && deficit <= 0.01);

    let mut out = String::from("{\n  \"schema\": \"webevo-repro-fleet/2\",\n");
    out.push_str(&format!(
        "  \"shards\": {shards}, \"sim_days\": {days}, \"cores\": {cores}, \
         \"sites\": {}, \"capacity\": {capacity},\n",
        universe.site_count()
    ));
    out.push_str(&format!(
        "  \"single\": {{\"fetches\": {}, \"owned_fetches\": {single_owned}, \
         \"collection\": {single_pages}, \"wall_seconds\": {single_secs:.3}, \
         \"owned_fetches_per_wall_second\": {single_fps:.1}}},\n",
        single.merged.fetches
    ));
    out.push_str(&format!(
        "  \"fleet\": {{\"fetches\": {}, \"owned_fetches\": {fleet_owned}, \
         \"wall_seconds\": {fleet_secs:.3}, \
         \"owned_fetches_per_wall_second\": {fleet_fps:.1}, \
         \"collection\": {fleet_pages}, \"routed_links\": {routed_links},\n",
        fleet.merged.fetches,
    ));
    out.push_str(&format!(
        "    \"ownership\": {{\"min_sites\": {min_sites}, \"max_sites\": {max_sites}, \
         \"imbalance_sites\": {}}},\n",
        max_sites - min_sites
    ));
    out.push_str("    \"per_shard\": [\n");
    for (i, report) in fleet.shards.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"shard\": {}, \"sites\": {}, \"capacity\": {}, \"fetches\": {}, \
             \"collection\": {}, \"routed_links\": {}, \"foreign_rejects\": {}}}{}\n",
            report.shard.0,
            report.sites,
            report.capacity,
            report.metrics.fetches,
            report.collection_len,
            report.routed_links,
            report.foreign_rejects,
            if i + 1 == fleet.shards.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str(&format!(
        "  \"speedup\": {speedup:.2}, \"scaling_efficiency\": {:.2},\n",
        speedup / shards as f64
    ));
    out.push_str(&format!(
        "  \"collection_deficit_vs_single\": {deficit:.4}, \
         \"collection_deficit_ceiling\": 0.01,\n"
    ));
    out.push_str(&format!(
        "  \"speedup_floor\": {speedup_floor:.2},\n  \"regression\": {regression}\n}}"
    ));
    (out, regression)
}

/// The `serve` target: the epoch-swapped query layer under a live crawl.
/// Three legs over the same universe and budget:
///
/// 1. **unserved** — the plain crawl, median of 3 (the baseline);
/// 2. **served, unqueried** — `.serve()` attached but no readers, median
///    of 3: what the boundary publisher itself costs the crawl;
/// 3. **served + readers** — one run with `readers` threads hammering
///    the [`QueryService`] (a rotating mix of point lookups, stats,
///    rollups, and top-k) for the whole crawl, timed once.
///
/// The `regression` field (and returned flag) is the CI smoke marker,
/// `true` when any gate fails:
///
/// * overhead — leg 2 costs more than 10% over leg 1 (plus a small
///   absolute slack so the ratio cannot trip on sub-second timer noise):
///   "serving is free" in wall-clock terms, not just byte-identical
///   output (that part is pinned by `tests/determinism.rs`);
/// * QPS — the readers sustain fewer than 200 queries/second in total, a
///   floor conservative enough for a single-core runner where the crawl
///   thread and every reader share one core;
/// * swap stall — the p99 of the cheapest query (`epoch_info`, a few
///   field reads off the current view) exceeds 100 ms. That query only
///   stalls when a reader blocks behind an epoch swap or the scheduler,
///   so its p99 bounds how long a swap can hold readers up.
fn run_serve_bench(days: f64, readers: usize) -> (String, bool) {
    const OVERHEAD_CEILING: f64 = 1.10;
    const ABSOLUTE_SLACK_SECS: f64 = 0.25;
    const QPS_FLOOR: f64 = 200.0;
    const STALL_P99_CEILING_US: u64 = 100_000;

    let universe = repro_universe();
    let capacity = universe.site_count() * universe.config().pages_per_site;
    // A 5-day cadence gives run(15) three pass boundaries — three epoch
    // swaps for the readers to live through.
    let budget = CrawlBudget::paper_monthly(capacity).with_cycle_days(5.0);
    fn build_session<'u>(universe: &'u WebUniverse, budget: CrawlBudget) -> CrawlSession<'u> {
        CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .budget(budget)
            .universe(universe)
            .build()
            .expect("a valid session")
    }

    eprintln!("[repro] serve: unserved baseline ({days} simulated days, median of 3)...");
    let mut fetches = 0u64;
    let unserved_secs = median_secs(3, || {
        let mut s = build_session(&universe, budget);
        s.run(days).expect("the crawl runs");
        fetches = s.metrics().fetches;
    });

    eprintln!("[repro] serve: served leg, no readers (median of 3)...");
    let mut epochs = 0u64;
    let mut view_pages = 0usize;
    let served_secs = median_secs(3, || {
        let mut s = build_session(&universe, budget);
        let queries = s.serve();
        s.run(days).expect("the crawl runs");
        epochs = queries.epoch();
        view_pages = queries.epoch_info().pages;
    });
    let overhead = served_secs / unserved_secs.max(f64::EPSILON);
    let overhead_ok =
        served_secs <= unserved_secs * OVERHEAD_CEILING + ABSOLUTE_SLACK_SECS;

    eprintln!("[repro] serve: served leg with {readers} reader threads...");
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut s = build_session(&universe, budget);
    let queries = s.serve();
    let start = std::time::Instant::now();
    let mut lats: Vec<u64> = Vec::new();
    let mut stalls: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let queries = queries.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut lat: Vec<u64> = Vec::new();
                    let mut stall: Vec<u64> = Vec::new();
                    let mut i = r; // stagger the mix across readers
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let t0 = std::time::Instant::now();
                        match i % 8 {
                            0 => drop(queries.epoch_info()),
                            1 => drop(queries.staleness(days)),
                            2 => drop(queries.lookup(PageId((i as u64 * 7919) % capacity as u64))),
                            3 => drop(queries.freshness()),
                            4 => drop(queries.top_k_change_rate(10)),
                            5 => drop(queries.site_rollups()),
                            6 => drop(queries.top_k_pagerank(10)),
                            _ => drop(queries.lookup(PageId(i as u64 % capacity as u64))),
                        }
                        let us = t0.elapsed().as_micros() as u64;
                        lat.push(us);
                        if i % 8 == 0 {
                            stall.push(us);
                        }
                        i += 1;
                        // Throttle: cap reader CPU so a single-core runner
                        // still lets the crawl thread make progress.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    (lat, stall)
                })
            })
            .collect();
        s.run(days).expect("the crawl runs");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for handle in handles {
            let (lat, stall) = handle.join().expect("reader thread");
            lats.extend(lat);
            stalls.extend(stall);
        }
    });
    let reader_secs = start.elapsed().as_secs_f64();
    lats.sort_unstable();
    stalls.sort_unstable();
    let pct = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };
    let queries_total = lats.len() as u64;
    let qps = queries_total as f64 / reader_secs.max(f64::EPSILON);
    let (p50, p99) = (pct(&lats, 0.50), pct(&lats, 0.99));
    let stall_p99 = pct(&stalls, 0.99);
    let qps_ok = qps >= QPS_FLOOR;
    let stall_ok = stall_p99 <= STALL_P99_CEILING_US;

    let regression = !(fetches > 0
        && epochs >= 1
        && view_pages > 0
        && queries_total > 0
        && overhead_ok
        && qps_ok
        && stall_ok);

    let mut out = String::from("{\n  \"schema\": \"webevo-repro-serve/1\",\n");
    out.push_str(&format!(
        "  \"sim_days\": {days}, \"readers\": {readers}, \"capacity\": {capacity}, \
         \"fetches\": {fetches},\n"
    ));
    out.push_str(&format!(
        "  \"unserved\": {{\"wall_seconds\": {unserved_secs:.3}}},\n"
    ));
    out.push_str(&format!(
        "  \"served\": {{\"wall_seconds\": {served_secs:.3}, \"epochs\": {epochs}, \
         \"view_pages\": {view_pages}, \"overhead_ratio\": {overhead:.3}, \
         \"overhead_ceiling\": {OVERHEAD_CEILING}, \
         \"absolute_slack_seconds\": {ABSOLUTE_SLACK_SECS}, \
         \"within_budget\": {overhead_ok}}},\n"
    ));
    out.push_str(&format!(
        "  \"queries\": {{\"wall_seconds\": {reader_secs:.3}, \"total\": {queries_total}, \
         \"sustained_qps\": {qps:.1}, \"qps_floor\": {QPS_FLOOR}, \
         \"p50_us\": {p50}, \"p99_us\": {p99}, \
         \"swap_stall_p99_us\": {stall_p99}, \
         \"swap_stall_ceiling_us\": {STALL_P99_CEILING_US}}},\n"
    ));
    out.push_str(&format!("  \"regression\": {regression}\n}}"));
    (out, regression)
}

/// The `e2e` target: the hot-loop overhaul's headline measurement — a
/// million-page incremental crawl, timed end to end. One generation leg
/// (the event arena and page/site tables are the dominant allocations, so
/// their byte counts stand in for RSS) and one timed crawl leg; a single
/// repetition, because at this scale the run is long enough that scheduler
/// noise is amortized away and a median-of-3 would triple a deliberately
/// heavy smoke step.
///
/// The `regression` field (and returned flag) is the CI smoke marker,
/// `true` when the crawl sustains fewer than `FETCH_RATE_FLOOR` fetches
/// per wall-second. Calibration: the overhauled path sustains 11–13k
/// fetches/s at a million pages on a single-core runner (see
/// `BENCH_e2e.json`), while the pre-overhaul path — bisection allocation
/// solver, per-page `PoissonProcess` allocations, `HashMap` politeness,
/// per-BFS-child occupant scans — lands well under 1k at this scale (the
/// solver alone cost 23× end to end at a hundredth of the size). The
/// floor sits ~5× under the measured rate to absorb noisy shared
/// runners, yet above anything the old path can reach.
fn run_e2e_bench(days: f64, sites: usize, pages: usize) -> (String, bool) {
    const FETCH_RATE_FLOOR: f64 = 2_000.0;

    eprintln!("[repro] e2e: generating {sites}-site, ~{pages}-page universe...");
    let gen_start = std::time::Instant::now();
    let universe =
        WebUniverse::generate(UniverseConfig::scaled(1999, sites, pages, days + 1.0));
    let gen_secs = gen_start.elapsed().as_secs_f64();
    let total_pages = universe.page_count();
    let arena_bytes = universe.arena_bytes();
    let page_table_bytes = total_pages * std::mem::size_of::<webevo::sim::SimPage>();
    eprintln!(
        "[repro] e2e: generated {total_pages} pages in {gen_secs:.1}s \
         (arena {:.1} MiB, page table {:.1} MiB); crawling {days} days...",
        arena_bytes as f64 / (1 << 20) as f64,
        page_table_bytes as f64 / (1 << 20) as f64,
    );

    let capacity = universe.site_count() * universe.config().pages_per_site;
    let budget = CrawlBudget::paper_monthly(capacity).with_cycle_days(15.0);
    let crawl_start = std::time::Instant::now();
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&universe)
        .build()
        .expect("a valid session");
    session.run(days).expect("the crawl runs");
    let crawl_secs = crawl_start.elapsed().as_secs_f64();
    let fetches = session.metrics().fetches;
    let fetches_per_sec = fetches as f64 / crawl_secs.max(f64::EPSILON);
    let regression = !(fetches > 0 && fetches_per_sec >= FETCH_RATE_FLOOR);

    let mut out = String::from("{\n  \"schema\": \"webevo-repro-e2e/1\",\n");
    out.push_str(&format!(
        "  \"sites\": {}, \"pages\": {total_pages}, \"capacity\": {capacity}, \
         \"sim_days\": {days},\n",
        universe.site_count()
    ));
    out.push_str(&format!(
        "  \"generate\": {{\"wall_seconds\": {gen_secs:.3}, \
         \"event_arena_bytes\": {arena_bytes}, \
         \"page_table_bytes\": {page_table_bytes}}},\n"
    ));
    out.push_str(&format!(
        "  \"crawl\": {{\"fetches\": {fetches}, \"collection\": {}, \
         \"wall_seconds\": {crawl_secs:.3}, \
         \"fetches_per_wall_second\": {fetches_per_sec:.0}, \
         \"sim_days_per_wall_second\": {:.3}}},\n",
        session.collection_len(),
        days / crawl_secs.max(f64::EPSILON),
    ));
    out.push_str(&format!(
        "  \"fetch_rate_floor\": {FETCH_RATE_FLOOR:.0},\n  \"regression\": {regression}\n}}"
    ));
    (out, regression)
}

/// The `bench` target: end-to-end crawl throughput, snapshot codec
/// binary-vs-JSON timings, and WAL append latency, as one machine-readable
/// JSON document plus the regression verdict. The `regression` field (and
/// returned flag) is the CI smoke marker, `true` when either gate fails:
///
/// * codec — the binary codec fails to beat the JSON baseline by at
///   least 3× at the largest measured size (the locally measured margin
///   is far larger; 3× absorbs machine noise without letting a real
///   regression through);
/// * obs overhead — a fully traced end-to-end crawl (recording
///   [`ObsSink`]) costs more than 2% over the untraced run, plus a small
///   absolute slack so the ratio cannot trip on sub-second timer noise.
fn run_perf_bench(bench_days: f64, bench_pages: &[u64]) -> (String, bool) {
    const REGRESSION_SPEEDUP_FLOOR: f64 = 3.0;
    const OBS_OVERHEAD_CEILING: f64 = 1.02;
    const OBS_ABSOLUTE_SLACK_SECS: f64 = 0.25;
    let mut out = String::from("{\n  \"schema\": \"webevo-repro-bench/1\",\n");

    // --- End-to-end crawl throughput (dense substrates under load). ---
    // Untraced and fully traced, median of 3 each: the traced run is the
    // obs-overhead gate — instrumentation must stay within 2% of the
    // untraced wall time (plus a small absolute slack for timer noise).
    eprintln!(
        "[repro] bench: end-to-end crawl ({bench_days} simulated days, \
         untraced + traced, median of 3)..."
    );
    let universe = repro_universe();
    let capacity = universe.site_count() * universe.config().pages_per_site;
    let budget = CrawlBudget::paper_monthly(capacity).with_cycle_days(15.0);
    let mut fetches = 0u64;
    let e2e_leg = |obs: Option<&ObsSink>, fetches: &mut u64| {
        median_secs(3, || {
            let mut session = CrawlSession::builder()
                .engine(EngineKind::Incremental)
                .budget(budget)
                .universe(&universe)
                .obs(obs.cloned().unwrap_or_else(ObsSink::noop))
                .build()
                .expect("a valid session");
            session.run(bench_days).expect("the crawl runs");
            *fetches = session.metrics().fetches;
        })
    };
    let elapsed = e2e_leg(None, &mut fetches);
    let obs = ObsSink::recording();
    let traced_secs = e2e_leg(Some(&obs), &mut fetches);
    let fetches_per_sec = fetches as f64 / elapsed;
    out.push_str(&format!(
        "  \"e2e\": {{\"capacity\": {capacity}, \"sim_days\": {bench_days}, \
         \"fetches\": {fetches}, \"wall_seconds\": {elapsed:.3}, \
         \"fetches_per_wall_second\": {fetches_per_sec:.1}, \
         \"pages_per_wall_day\": {:.0}, \"sim_days_per_wall_second\": {:.3}}},\n",
        fetches_per_sec * 86_400.0,
        bench_days / elapsed,
    ));
    let obs_ok = traced_secs <= elapsed * OBS_OVERHEAD_CEILING + OBS_ABSOLUTE_SLACK_SECS;
    let span_count = obs.spans().len();
    out.push_str(&format!(
        "  \"obs\": {{\"untraced_wall_seconds\": {elapsed:.3}, \
         \"traced_wall_seconds\": {traced_secs:.3}, \
         \"overhead_ratio\": {:.3}, \"overhead_ceiling\": {OBS_OVERHEAD_CEILING}, \
         \"absolute_slack_seconds\": {OBS_ABSOLUTE_SLACK_SECS}, \
         \"spans_recorded\": {span_count}, \"within_budget\": {obs_ok}}},\n",
        traced_secs / elapsed.max(f64::EPSILON),
    ));

    // --- Snapshot codec: binary (v3) vs the JSON baseline (v2). ---
    let mut worst_speedup = f64::INFINITY;
    out.push_str("  \"snapshot\": [\n");
    for (i, &pages) in bench_pages.iter().enumerate() {
        eprintln!("[repro] bench: snapshot codec at {pages} pages...");
        let state = synthetic_state(pages);
        let binary_doc = encode_snapshot(&state);
        let json_doc = encode_snapshot_json(&state);
        let bin_enc = median_secs(3, || encode_snapshot(&state));
        let bin_dec = median_secs(3, || decode_snapshot(&binary_doc).expect("decodes"));
        let json_enc = median_secs(3, || encode_snapshot_json(&state));
        let json_dec =
            median_secs(3, || decode_snapshot(json_doc.as_bytes()).expect("decodes"));
        let speedup = (json_enc + json_dec) / (bin_enc + bin_dec);
        worst_speedup = worst_speedup.min(speedup);
        out.push_str(&format!(
            "    {{\"pages\": {pages}, \
             \"binary_encode_seconds\": {bin_enc:.4}, \"binary_decode_seconds\": {bin_dec:.4}, \
             \"json_encode_seconds\": {json_enc:.4}, \"json_decode_seconds\": {json_dec:.4}, \
             \"binary_bytes\": {}, \"json_bytes\": {}, \"speedup\": {speedup:.2}}}{}\n",
            binary_doc.len(),
            json_doc.len(),
            if i + 1 == bench_pages.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");

    // --- WAL append latency (one pass-boundary flush). ---
    eprintln!("[repro] bench: WAL append...");
    let records = synthetic_records(512);
    let wal_path = std::env::temp_dir()
        .join(format!("webevo-repro-bench-{}.wlog", std::process::id()));
    let mut writer = WalWriter::create(&wal_path).expect("temp WAL writable");
    let mut seq = 0u64;
    let wal_secs = median_secs(20, || {
        seq += 512;
        writer.append_committed(&records, seq).expect("append")
    });
    let _ = std::fs::remove_file(&wal_path);
    out.push_str(&format!(
        "  \"wal\": {{\"batch_records\": 512, \"append_seconds\": {wal_secs:.6}}},\n"
    ));

    let regression = !(fetches > 0 && worst_speedup >= REGRESSION_SPEEDUP_FLOOR && obs_ok);
    out.push_str(&format!(
        "  \"speedup_floor\": {REGRESSION_SPEEDUP_FLOOR:.1},\n  \"regression\": {regression}\n}}"
    ));
    (out, regression)
}
