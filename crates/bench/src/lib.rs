//! Shared fixtures for the benchmark suite and the `repro` binary.

#![forbid(unsafe_code)]

use webevo::prelude::*;

/// The standard reproduction universe: medium scale (Table 1 domain
/// ratio, 100-page windows), fixed seed.
pub fn repro_universe() -> WebUniverse {
    WebUniverse::generate(UniverseConfig::medium_scale(1999))
}

/// A small universe for fast micro-benchmarks.
pub fn bench_universe() -> WebUniverse {
    WebUniverse::generate(UniverseConfig::test_scale(7))
}

/// The paper's Table 2 rate: one change per four months.
pub const TABLE2_LAMBDA: f64 = 1.0 / 120.0;

/// The paper-calibrated change-rate mixture used by scheduling
/// experiments: `per_domain` pages per Table 1 domain class.
pub fn paper_rate_mixture(seed: u64, per_domain: usize) -> Vec<ChangeRate> {
    use webevo::sim::DomainProfile;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut rates = Vec::with_capacity(per_domain * 4);
    for domain in Domain::ALL {
        let profile = DomainProfile::calibrated(domain);
        for _ in 0..per_domain {
            rates.push(profile.sample_rate(&mut rng));
        }
    }
    rates
}

/// Run the full §2–3 experiment on the repro universe (128 monitored
/// days). Expensive — cache the result when calling repeatedly.
pub fn repro_experiment() -> ExperimentReport {
    let universe = repro_universe();
    let candidates = universe.site_count();
    let permitted = candidates * 270 / 400;
    run_full_experiment(
        &universe,
        &MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 },
        candidates,
        permitted,
    )
}
