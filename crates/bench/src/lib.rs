//! Shared fixtures for the benchmark suite and the `repro` binary.

#![forbid(unsafe_code)]

use std::time::Instant;
use webevo::prelude::*;

/// Median wall-clock seconds of `reps` invocations of `f`. The shared
/// timing primitive of every `repro` perf leg (`bench`, `fleet`, the
/// obs-overhead gate): fleet and codec workloads are deterministic, so
/// repetitions produce identical results and the median only damps
/// scheduler noise — one noisy-neighbor stall on a shared CI runner must
/// not trip a regression gate.
pub fn median_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let secs = start.elapsed().as_secs_f64();
            std::hint::black_box(out);
            secs
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// The standard reproduction universe: medium scale (Table 1 domain
/// ratio, 100-page windows), fixed seed.
pub fn repro_universe() -> WebUniverse {
    WebUniverse::generate(UniverseConfig::medium_scale(1999))
}

/// A small universe for fast micro-benchmarks.
pub fn bench_universe() -> WebUniverse {
    WebUniverse::generate(UniverseConfig::test_scale(7))
}

/// The paper's Table 2 rate: one change per four months.
pub const TABLE2_LAMBDA: f64 = 1.0 / 120.0;

/// The paper-calibrated change-rate mixture used by scheduling
/// experiments: `per_domain` pages per Table 1 domain class.
pub fn paper_rate_mixture(seed: u64, per_domain: usize) -> Vec<ChangeRate> {
    use webevo::sim::DomainProfile;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut rates = Vec::with_capacity(per_domain * 4);
    for domain in Domain::ALL {
        let profile = DomainProfile::calibrated(domain);
        for _ in 0..per_domain {
            rates.push(profile.sample_rate(&mut rng));
        }
    }
    rates
}

/// Build a synthetic engine state with `pages` stored pages carrying
/// realistic per-page baggage: a few links, a populated change history,
/// Bayesian posteriors, and a queue entry each. Shared by the codec
/// micro-benchmarks and the `repro bench` perf target so both measure the
/// same workload shape.
pub fn synthetic_state(pages: u64) -> CrawlerState {
    use webevo::core::{CrawlModule, EngineClock, QueueEntry, UpdateModule};
    let config = IncrementalConfig::monthly(pages as usize);
    let mut collection = Collection::new(pages as usize, 50);
    let mut all_urls = AllUrls::new();
    let mut queue = Vec::with_capacity(pages as usize);
    for i in 0..pages {
        let url = Url::new(SiteId((i % 997) as u32), PageId(i));
        let links = vec![
            Url::new(url.site, PageId((i + 1) % pages)),
            Url::new(url.site, PageId((i + 7) % pages)),
        ];
        collection.save(url, Checksum(i), links, 0.0);
        // A short revisit history so estimator state is non-trivial.
        for day in 1..=4u64 {
            collection.update(PageId(i), Checksum(i + day / 2), vec![], day as f64);
        }
        all_urls.add_in_link(url, PageId((i + 3) % pages), 0.0);
        queue.push(QueueEntry { due_bits: (5.0 + (i % 30) as f64).to_bits(), url });
    }
    CrawlerState {
        engine: EngineKind::Incremental,
        run_start: 0.0,
        seeded: true,
        clock: EngineClock { t: 4.0, next_ranking: 5.0, next_sample: 5.0 },
        fetch_seq: pages * 5,
        update: UpdateModule::new(config.revisit, config.estimator, 30.0),
        config: EngineConfig::Incremental(config),
        collection,
        all_urls,
        queue,
        queued: (0..pages).map(PageId).collect(),
        admissions: Vec::new(),
        ranking_runs: 4,
        ranking_applied: 0,
        rank_pending: false,
        crawl: CrawlModule::default(),
        periodic: None,
        metrics: CrawlMetrics::default(),
        routing: Default::default(),
        fetcher: None,
    }
}

/// A batch of `n` synthetic fetch events, the WAL-append workload shape.
pub fn synthetic_records(n: u64) -> Vec<WalEvent> {
    (1..=n)
        .map(|seq| {
            WalEvent::Fetch(FetchRecord {
                seq,
                url: Url::new(SiteId((seq % 97) as u32), PageId(seq)),
                t: seq as f64 * 0.01,
                result: Ok(FetchOutcome {
                    checksum: Checksum(seq),
                    links: vec![Url::new(SiteId(1), PageId(seq + 1))],
                    last_modified: None,
                }),
            })
        })
        .collect()
}

/// Run the full §2–3 experiment on the repro universe (128 monitored
/// days). Expensive — cache the result when calling repeatedly.
pub fn repro_experiment() -> ExperimentReport {
    let universe = repro_universe();
    let candidates = universe.site_count();
    let permitted = candidates * 270 / 400;
    run_full_experiment(
        &universe,
        &MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 },
        candidates,
        permitted,
    )
}
