//! The periodic crawler baseline — batch-mode, shadowing, fixed frequency
//! (the right-hand column of Figure 10).
//!
//! Every cycle the crawler rebuilds a **brand new** collection from the
//! seed URLs: breadth-first crawling into a shadow space during the batch
//! window, then an atomic swap replaces the current collection (§1's
//! description of the traditional crawler, §4's shadowing semantics).
//! Between windows the crawler idles — which is exactly what gives it the
//! high peak speed §4 warns about (peak = cycle/window × the steady rate).

use crate::metrics::CrawlMetrics;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use webevo_sim::{FetchError, Fetcher, WebUniverse};
use webevo_types::{Checksum, PageId, Url};

/// Configuration of the periodic crawler.
#[derive(Clone, Debug)]
pub struct PeriodicConfig {
    /// Collection capacity in pages.
    pub capacity: usize,
    /// Cycle length in days (the paper's "once a month").
    pub cycle_days: f64,
    /// Batch window: the crawl must finish within this many days (the
    /// paper's "finishes a crawl in a week").
    pub window_days: f64,
    /// Metrics sampling period in days.
    pub sample_interval_days: f64,
}

impl PeriodicConfig {
    /// The paper's Table 2 shape: monthly cycle, one-week window.
    pub fn monthly(capacity: usize) -> PeriodicConfig {
        PeriodicConfig {
            capacity,
            cycle_days: 30.0,
            window_days: 7.0,
            sample_interval_days: 1.0,
        }
    }

    /// Average crawl speed (fetches/day amortized over the cycle).
    pub fn average_speed(&self) -> f64 {
        self.capacity as f64 / self.cycle_days
    }

    /// Peak crawl speed (fetches/day during the window) — the §4 cost of
    /// batch crawling.
    pub fn peak_speed(&self) -> f64 {
        self.capacity as f64 / self.window_days
    }
}

/// A snapshot entry in the current (user-visible) collection.
#[derive(Clone, Debug)]
struct SnapshotPage {
    crawl_time: f64,
    #[allow(dead_code)]
    checksum: Checksum,
}

/// The periodic crawler.
pub struct PeriodicCrawler {
    config: PeriodicConfig,
    /// The user-visible collection (page → crawl info).
    // Ordered for the replay contract: the swap loop and metric sampling
    // accumulate floats over this map's iteration order.
    current: BTreeMap<PageId, SnapshotPage>,
    /// When each page first became visible to users (for latency metrics).
    first_visible: BTreeMap<PageId, f64>,
    metrics: CrawlMetrics,
    cycles: u64,
}

impl PeriodicCrawler {
    /// Create a crawler.
    pub fn new(config: PeriodicConfig) -> PeriodicCrawler {
        assert!(config.capacity > 0);
        assert!(config.window_days > 0.0 && config.window_days <= config.cycle_days);
        PeriodicCrawler {
            config,
            current: BTreeMap::new(),
            first_visible: BTreeMap::new(),
            metrics: CrawlMetrics::default(),
            cycles: 0,
        }
    }

    /// Completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Pages currently visible to users.
    pub fn current_size(&self) -> usize {
        self.current.len()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    /// Run from `start` to `end` days.
    pub fn run(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        start: f64,
        end: f64,
    ) -> &CrawlMetrics {
        assert!(end > start);
        self.metrics.observe_speed(self.config.peak_speed());
        let mut next_sample = start;
        let mut cycle_start = start;
        while cycle_start < end {
            // --- Batch window: build the shadow collection. ---
            let shadow = self.batch_crawl(
                universe,
                fetcher,
                cycle_start,
                &mut next_sample,
                end,
            );
            let swap_time = (cycle_start + self.config.window_days).min(end);
            // --- Swap: the shadow becomes the current collection. ---
            if swap_time <= end {
                for (&p, snap) in shadow.iter() {
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        self.first_visible.entry(p)
                    {
                        slot.insert(swap_time);
                        let birth = universe.page(p).birth;
                        if birth >= start {
                            self.metrics.record_admission_latency(swap_time - birth);
                            // The page was "found" when the batch crawl
                            // fetched it; it sat invisible until the swap.
                            self.metrics
                                .record_discovery_latency(swap_time - snap.crawl_time);
                        }
                    }
                }
                self.current = shadow;
                self.cycles += 1;
            }
            // --- Idle until the next cycle, sampling metrics. ---
            let cycle_end = (cycle_start + self.config.cycle_days).min(end);
            while next_sample <= cycle_end {
                self.sample_metrics(universe, next_sample);
                next_sample += self.config.sample_interval_days;
            }
            cycle_start += self.config.cycle_days;
        }
        &self.metrics
    }

    /// One batch crawl: BFS from the seed roots into a fresh shadow,
    /// paced so `capacity` fetches fill `window_days`.
    fn batch_crawl(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        cycle_start: f64,
        next_sample: &mut f64,
        end: f64,
    ) -> BTreeMap<PageId, SnapshotPage> {
        let step = self.config.window_days / self.config.capacity as f64;
        let mut shadow: BTreeMap<PageId, SnapshotPage> = BTreeMap::new();
        let mut frontier: VecDeque<Url> = VecDeque::new();
        let mut seen: BTreeSet<PageId> = BTreeSet::new();
        for site in universe.sites() {
            if let Some(root) = universe.occupant(site.id, 0, cycle_start) {
                let url = Url::new(site.id, root);
                if seen.insert(url.page) {
                    frontier.push_back(url);
                }
            }
        }
        let mut t = cycle_start;
        while shadow.len() < self.config.capacity && t < end {
            // Sampling continues during the crawl: users still query the
            // *current* collection while the shadow builds (§4).
            while *next_sample <= t {
                self.sample_metrics(universe, *next_sample);
                *next_sample += self.config.sample_interval_days;
            }
            let Some(url) = frontier.pop_front() else {
                break; // frontier exhausted before capacity
            };
            match fetcher.fetch(url, t) {
                Ok(outcome) => {
                    self.metrics.record_fetch(true);
                    shadow.insert(
                        url.page,
                        SnapshotPage { crawl_time: t, checksum: outcome.checksum },
                    );
                    for link in outcome.links {
                        if seen.insert(link.page) {
                            frontier.push_back(link);
                        }
                    }
                }
                Err(FetchError::NotFound) | Err(FetchError::Transient) => {
                    self.metrics.record_fetch(false);
                }
                Err(FetchError::RateLimited { .. }) => {
                    // Batch crawlers just retry later in the window.
                    frontier.push_back(url);
                }
            }
            t += step;
        }
        shadow
    }

    /// Evaluation-only freshness/age sampling of the current collection.
    fn sample_metrics(&mut self, universe: &WebUniverse, t: f64) {
        if self.current.is_empty() {
            self.metrics.sample(t, 0.0, 0.0);
            return;
        }
        let mut fresh = 0usize;
        let mut age_sum = 0.0;
        let n = self.current.len();
        for (&p, snap) in &self.current {
            if universe.copy_is_fresh(p, snap.crawl_time, t) {
                fresh += 1;
            } else {
                let page = universe.page(p);
                let staled_at = page
                    .process
                    .first_event_after(snap.crawl_time)
                    .unwrap_or(page.death)
                    .min(page.death);
                age_sum += (t - staled_at).max(0.0);
            }
        }
        self.metrics.sample(t, fresh as f64 / n as f64, age_sum / n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};

    fn universe() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(88))
    }

    fn config() -> PeriodicConfig {
        PeriodicConfig {
            capacity: 60,
            cycle_days: 10.0,
            window_days: 2.5,
            sample_interval_days: 0.5,
        }
    }

    #[test]
    fn cycles_and_swaps() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        crawler.run(&u, &mut fetcher, 0.0, 40.0);
        assert_eq!(crawler.cycles(), 4);
        assert!(crawler.current_size() > 40, "size={}", crawler.current_size());
    }

    #[test]
    fn collection_is_empty_before_first_swap() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        crawler.run(&u, &mut fetcher, 0.0, 40.0);
        // The first samples (before day 2.5) must show freshness 0 — no
        // current collection exists yet.
        let rows: Vec<(f64, f64)> = crawler.metrics().freshness.rows().collect();
        for &(t, f) in rows.iter().take(4) {
            if t < 2.5 {
                assert_eq!(f, 0.0, "no user-visible collection before the first swap");
            }
        }
        // After warm-up, freshness is positive.
        assert!(crawler.metrics().average_freshness_from(10.0) > 0.3);
    }

    #[test]
    fn peak_speed_exceeds_average() {
        let c = config();
        assert!(c.peak_speed() > c.average_speed() * 3.9);
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(c);
        crawler.run(&u, &mut fetcher, 0.0, 20.0);
        assert!((crawler.metrics().peak_speed - 24.0).abs() < 1e-9);
    }

    #[test]
    fn freshness_sawtooth_decays_between_swaps() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        crawler.run(&u, &mut fetcher, 0.0, 40.0);
        let rows: Vec<(f64, f64)> = crawler.metrics().freshness.rows().collect();
        // Find freshness right after the second swap (t≈12.5) and right
        // before the third (t≈22.5): it must decay.
        let f_after = rows
            .iter()
            .find(|(t, _)| *t >= 13.0)
            .map(|&(_, f)| f)
            .unwrap();
        let f_before = rows
            .iter()
            .find(|(t, _)| *t >= 22.0)
            .map(|&(_, f)| f)
            .unwrap();
        assert!(
            f_after > f_before,
            "sawtooth: after swap {f_after} should beat end of cycle {f_before}"
        );
    }

    #[test]
    fn new_pages_wait_for_next_swap() {
        // Admission latency for the periodic crawler is bounded below by
        // the batch mechanics: nothing becomes visible between swaps.
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        crawler.run(&u, &mut fetcher, 0.0, 40.0);
        assert!(crawler.metrics().new_page_latency.count() > 0);
    }

    #[test]
    fn deterministic() {
        let u = universe();
        let run = || {
            let mut fetcher = SimFetcher::new(&u);
            let mut crawler = PeriodicCrawler::new(config());
            crawler.run(&u, &mut fetcher, 0.0, 30.0);
            (crawler.current_size(), crawler.metrics().fetches)
        };
        assert_eq!(run(), run());
    }
}
