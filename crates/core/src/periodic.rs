//! The periodic crawler baseline — batch-mode, shadowing, fixed frequency
//! (the right-hand column of Figure 10).
//!
//! Every cycle the crawler rebuilds a **brand new** collection from the
//! seed URLs: breadth-first crawling into a shadow space during the batch
//! window, then an atomic swap replaces the current collection (§1's
//! description of the traditional crawler, §4's shadowing semantics).
//! Between windows the crawler idles — which is exactly what gives it the
//! high peak speed §4 warns about (peak = cycle/window × the steady rate).
//!
//! The engine is a resumable state machine with full [`CrawlEngine`]
//! parity: the cycle clock, the mid-window shadow/frontier, and the
//! user-visible collection all live on the struct, so a checkpoint can
//! freeze the crawl anywhere and a restored engine continues
//! bit-identically. Pass boundaries — the durability flush points the
//! [`CrawlHook`] observes — are the shadow swaps: the one moment the
//! engine is quiescent between cycles.

use crate::collection::Collection;
use crate::engine::{CrawlBudget, CrawlEngine, FetchSource};
use crate::hooks::{CrawlHook, FetchRecord, NoopHook};
use crate::metrics::CrawlMetrics;
use crate::modules::{CrawlModule, EstimatorKind, RevisitStrategy, UpdateModule};
use crate::routing::{RoutedBatch, RoutedLink, RoutingState, ShardScope, WalEvent};
use crate::view::{BoundaryPages, ViewBoundary, ViewPublisher};
use crate::state::{CrawlerState, EngineClock, EngineConfig, EngineKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use webevo_obs::{LogicalClock, ObsSink, SpanGuard, Stage};
use webevo_sim::{FetchError, Fetcher, FetcherState, WebUniverse};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{Checksum, DenseMap, DenseSet, Url, WebEvoError};

/// Configuration of the periodic crawler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeriodicConfig {
    /// Collection capacity in pages.
    pub capacity: usize,
    /// Cycle length in days (the paper's "once a month").
    pub cycle_days: f64,
    /// Batch window: the crawl must finish within this many days (the
    /// paper's "finishes a crawl in a week").
    pub window_days: f64,
    /// Metrics sampling period in days.
    pub sample_interval_days: f64,
}

impl PeriodicConfig {
    /// The paper's Table 2 shape (monthly cycle, one-week window), derived
    /// from [`CrawlBudget::paper_monthly`] — the one place that budget is
    /// defined.
    pub fn monthly(capacity: usize) -> PeriodicConfig {
        CrawlBudget::paper_monthly(capacity).periodic_config()
    }

    /// Average crawl speed (fetches/day amortized over the cycle).
    pub fn average_speed(&self) -> f64 {
        self.capacity as f64 / self.cycle_days
    }

    /// Peak crawl speed (fetches/day during the window) — the §4 cost of
    /// batch crawling.
    pub fn peak_speed(&self) -> f64 {
        self.capacity as f64 / self.window_days
    }
}

/// One page of a periodic collection (current or shadow): when it was
/// crawled and what digest came back.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeriodicPage {
    /// When the batch crawl fetched this copy (days).
    pub crawl_time: f64,
    /// Digest of the fetched content.
    pub checksum: Checksum,
}

/// The in-flight state of one batch window: the shadow collection under
/// construction and its BFS frontier. Serialized inside
/// [`PeriodicState`] so a checkpoint can freeze a crawl mid-window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchWindow {
    /// The shadow collection being built this cycle.
    pub shadow: DenseMap<PeriodicPage>,
    /// BFS frontier, front = next URL to crawl.
    pub frontier: VecDeque<Url>,
    /// Pages ever enqueued this window (BFS dedup guard).
    pub seen: DenseSet,
}

/// The periodic engine's cycle/shadow payload inside
/// [`CrawlerState`] (the incremental fields of the shared state are empty
/// for this engine).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeriodicState {
    /// The user-visible collection.
    pub current: DenseMap<PeriodicPage>,
    /// When each page first became visible to users.
    pub first_visible: DenseMap<f64>,
    /// Completed shadow swaps.
    pub cycles: u64,
    /// Start day of the cycle in progress.
    pub cycle_start: f64,
    /// `true` between a swap and the next cycle start; `false` during the
    /// batch window.
    pub idle: bool,
    /// The mid-window state, when frozen inside a batch window.
    pub window: Option<BatchWindow>,
}

impl BinEncode for PeriodicConfig {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.capacity.bin_encode(out);
        self.cycle_days.bin_encode(out);
        self.window_days.bin_encode(out);
        self.sample_interval_days.bin_encode(out);
    }
}

impl BinDecode for PeriodicConfig {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<PeriodicConfig, BinError> {
        Ok(PeriodicConfig {
            capacity: usize::bin_decode(r)?,
            cycle_days: f64::bin_decode(r)?,
            window_days: f64::bin_decode(r)?,
            sample_interval_days: f64::bin_decode(r)?,
        })
    }
}

impl BinEncode for PeriodicPage {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.crawl_time.bin_encode(out);
        self.checksum.bin_encode(out);
    }
}

impl BinDecode for PeriodicPage {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<PeriodicPage, BinError> {
        Ok(PeriodicPage {
            crawl_time: f64::bin_decode(r)?,
            checksum: Checksum::bin_decode(r)?,
        })
    }
}

impl BinEncode for BatchWindow {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.shadow.bin_encode(out);
        self.frontier.bin_encode(out);
        self.seen.bin_encode(out);
    }
}

impl BinDecode for BatchWindow {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<BatchWindow, BinError> {
        Ok(BatchWindow {
            shadow: DenseMap::bin_decode(r)?,
            frontier: VecDeque::bin_decode(r)?,
            seen: DenseSet::bin_decode(r)?,
        })
    }
}

impl BinEncode for PeriodicState {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.current.bin_encode(out);
        self.first_visible.bin_encode(out);
        self.cycles.bin_encode(out);
        self.cycle_start.bin_encode(out);
        self.idle.bin_encode(out);
        self.window.bin_encode(out);
    }
}

impl BinDecode for PeriodicState {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<PeriodicState, BinError> {
        Ok(PeriodicState {
            current: DenseMap::bin_decode(r)?,
            first_visible: DenseMap::bin_decode(r)?,
            cycles: u64::bin_decode(r)?,
            cycle_start: f64::bin_decode(r)?,
            idle: bool::bin_decode(r)?,
            window: Option::bin_decode(r)?,
        })
    }
}

/// The periodic crawler.
pub struct PeriodicCrawler {
    config: PeriodicConfig,
    /// The user-visible collection (page → crawl info).
    // Iterated in ascending-id order for the replay contract: the swap
    // loop and metric sampling accumulate floats over this iteration
    // order.
    current: DenseMap<PeriodicPage>,
    /// When each page first became visible to users (for latency metrics).
    first_visible: DenseMap<f64>,
    metrics: CrawlMetrics,
    cycles: u64,
    run_start: f64,
    started: bool,
    fetch_seq: u64,
    /// `t` is the next fetch-slot time during a window; `next_ranking` is
    /// unused (this engine's boundaries are swaps, not ranking passes).
    clock: EngineClock,
    cycle_start: f64,
    /// See [`PeriodicState::idle`].
    idle: bool,
    window: Option<BatchWindow>,
    /// Cross-shard routing: scope, outbox, and the routed-in inbox that
    /// seeds the next batch window. Inert (default) when unsharded.
    routing: RoutingState,
    /// Observability sink. Write-only and deliberately absent from
    /// [`CrawlerState`]: a traced run stays byte-identical to an untraced
    /// one.
    obs: ObsSink,
    /// Serving-view publisher, fired at every shadow swap. Write-only and
    /// absent from [`CrawlerState`] for the same reason as `obs`: a
    /// served run stays byte-identical to an unserved one.
    publisher: Option<Box<dyn ViewPublisher>>,
}

impl PeriodicCrawler {
    /// Create a crawler.
    pub fn new(config: PeriodicConfig) -> PeriodicCrawler {
        assert!(config.capacity > 0);
        assert!(config.window_days > 0.0 && config.window_days <= config.cycle_days);
        assert!(config.sample_interval_days > 0.0);
        PeriodicCrawler {
            config,
            current: DenseMap::new(),
            first_visible: DenseMap::new(),
            metrics: CrawlMetrics::default(),
            cycles: 0,
            run_start: 0.0,
            started: false,
            fetch_seq: 0,
            clock: EngineClock { t: 0.0, next_ranking: 0.0, next_sample: 0.0 },
            cycle_start: 0.0,
            idle: false,
            window: None,
            routing: RoutingState::default(),
            obs: ObsSink::noop(),
            publisher: None,
        }
    }

    /// Rebuild an engine from a checkpointed state. Returns the engine and
    /// the fetcher state the caller must install into its fetcher before
    /// replaying or resuming.
    pub fn from_state(
        state: CrawlerState,
    ) -> Result<(PeriodicCrawler, Option<FetcherState>), WebEvoError> {
        if state.engine != EngineKind::Periodic {
            return Err(WebEvoError::InvalidState(format!(
                "state was written by the {} engine, not the periodic one",
                state.engine
            )));
        }
        let config = state.config.as_periodic()?.clone();
        let periodic = state.periodic.ok_or_else(|| {
            WebEvoError::InvalidState("periodic state payload missing from snapshot".into())
        })?;
        let crawler = PeriodicCrawler {
            config,
            current: periodic.current,
            first_visible: periodic.first_visible,
            metrics: state.metrics,
            cycles: periodic.cycles,
            run_start: state.run_start,
            started: state.seeded,
            fetch_seq: state.fetch_seq,
            clock: state.clock,
            cycle_start: periodic.cycle_start,
            idle: periodic.idle,
            window: periodic.window,
            routing: state.routing,
            obs: ObsSink::noop(),
            publisher: None,
        };
        Ok((crawler, state.fetcher))
    }

    /// Completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Pages currently visible to users.
    pub fn current_size(&self) -> usize {
        self.current.len()
    }

    /// Start the run at the frozen clock: anchor the cycle grid and the
    /// sampling grid. Shared by [`CrawlEngine::drive`] on a fresh engine
    /// and by [`CrawlEngine::replay`] from a day-0 snapshot (a run killed
    /// before its first cadence snapshot). The BFS frontier itself seeds
    /// lazily per cycle via [`PeriodicCrawler::seed_window`].
    fn begin_run(&mut self) {
        let start = self.clock.t;
        self.run_start = start;
        self.cycle_start = start;
        self.clock.next_sample = start;
        self.started = true;
    }

    /// Seed the BFS frontier for the cycle starting at `self.cycle_start`.
    fn seed_window(&mut self, universe: &WebUniverse) {
        let mut window = BatchWindow {
            shadow: DenseMap::new(),
            frontier: VecDeque::new(),
            seen: DenseSet::new(),
        };
        for site in universe.sites() {
            // A scoped (fleet-shard) engine seeds only the sites it owns.
            if self.routing.is_foreign(site.id) {
                continue;
            }
            if let Some(root) = universe.occupant(site.id, 0, self.cycle_start) {
                let url = Url::new(site.id, root);
                if window.seen.insert(url.page) {
                    window.frontier.push_back(url);
                }
            }
        }
        // Routed-in URLs join the frontier after the owned roots, in the
        // deterministic exchange order they arrived in.
        for url in std::mem::take(&mut self.routing.inbox) {
            if window.seen.insert(url.page) {
                window.frontier.push_back(url);
            }
        }
        self.window = Some(window);
    }

    /// Apply one routed-link delivery: the outbox drained by the
    /// coordinator is cleared, the delivered URLs queue in the inbox for
    /// the next window seed (this engine can only admit URLs at a window
    /// start), one sequence number is consumed, and the exchange counter
    /// advances. Shared by live injection and WAL replay.
    fn apply_routed(&mut self, batch: RoutedBatch) {
        self.routing.outbox.clear();
        self.fetch_seq = batch.seq;
        self.routing.exchanges += 1;
        for link in batch.links {
            self.routing.inbox.push(link.url);
        }
    }

    /// Whether the replay source's next event is the routed batch due at
    /// the current point of the schedule; apply it if so.
    fn try_apply_routed(&mut self, source: &mut FetchSource<'_>) -> bool {
        if let Some(batch) = source.peek_routed() {
            if batch.t.to_bits() == self.clock.t.to_bits() && batch.seq == self.fetch_seq + 1 {
                let batch = source.take_routed().expect("peeked a routed batch");
                self.apply_routed(batch);
                return true;
            }
        }
        false
    }

    /// The shared event loop: samples, batch fetches, shadow swaps, and
    /// idle periods, driven either live or from the write-ahead log.
    /// Stops when the clock would cross `until` (the kill horizon — never
    /// baked into engine state) or, for replay sources, at log exhaustion.
    /// The exhaustion check sits before the swap handler so a resumed run
    /// re-enters at exactly the point the interrupted one left.
    fn advance(
        &mut self,
        universe: &WebUniverse,
        source: &mut FetchSource<'_>,
        until: f64,
        hook: &mut dyn CrawlHook,
    ) {
        let capacity = self.config.capacity;
        let step = self.config.window_days / capacity as f64;
        // Open cycle / fetch-batch spans. Local to this call on purpose: a
        // drive horizon landing mid-cycle closes the spans with the drive
        // and the next drive opens fresh ones — the trace describes wall
        // time actually spent inside each call.
        let mut cycle_span: Option<SpanGuard> = None;
        let mut batch_span: Option<SpanGuard> = None;
        loop {
            // Routed batches re-inject before anything else: live
            // injection happens while the engine is frozen between
            // drives (normally mid-idle, clock parked at the window
            // end), so replay applies the batch before the phase
            // handlers of the frozen point run again.
            if self.try_apply_routed(source) {
                continue;
            }
            if source.exhausted() {
                return;
            }
            if !self.idle {
                // --- Batch window: build the shadow collection. ---
                if self.clock.t >= until {
                    return;
                }
                if self.window.is_none() {
                    self.seed_window(universe);
                }
                if self.obs.enabled() {
                    let clock = LogicalClock::new(self.clock.t, self.fetch_seq);
                    if cycle_span.is_none() {
                        cycle_span = Some(self.obs.span(Stage::Cycle, clock));
                    }
                    if batch_span.is_none() {
                        batch_span = Some(self.obs.span(Stage::FetchBatch, clock));
                    }
                }
                loop {
                    // A barrier can land mid-window when the batch window
                    // spans the whole cycle; the batch replays here.
                    if self.try_apply_routed(source) {
                        continue;
                    }
                    if source.exhausted() {
                        return;
                    }
                    let window = self.window.as_ref().expect("window in progress");
                    if window.shadow.len() >= capacity {
                        break;
                    }
                    if self.clock.t >= until {
                        return;
                    }
                    // Sampling continues during the crawl: users still
                    // query the *current* collection while the shadow
                    // builds (§4).
                    while self.clock.next_sample <= self.clock.t {
                        let ts = self.clock.next_sample;
                        self.sample_metrics(universe, ts);
                        self.clock.next_sample += self.config.sample_interval_days;
                    }
                    let Some(url) = self.window.as_mut().expect("window").frontier.pop_front()
                    else {
                        break; // frontier exhausted before capacity
                    };
                    if self.routing.is_foreign(url.site) {
                        // Residual foreign entry (only possible in a
                        // window inherited from a pre-routing
                        // checkpoint): drop it without spending a fetch.
                        continue;
                    }
                    self.fetch_one(source, url, hook);
                    self.clock.t += step;
                }
                drop(batch_span.take());
                self.swap(universe, source, hook);
            } else {
                // --- Idle until the next cycle, sampling metrics. ---
                let cycle_end = self.cycle_start + self.config.cycle_days;
                while self.clock.next_sample <= cycle_end {
                    if self.clock.next_sample >= until {
                        return;
                    }
                    let ts = self.clock.next_sample;
                    self.sample_metrics(universe, ts);
                    self.clock.next_sample += self.config.sample_interval_days;
                }
                cycle_span = None;
                self.cycle_start += self.config.cycle_days;
                self.clock.t = self.cycle_start;
                self.idle = false;
            }
        }
    }

    /// One batch fetch slot at `self.clock.t`.
    fn fetch_one(&mut self, source: &mut FetchSource<'_>, url: Url, hook: &mut dyn CrawlHook) {
        let t = self.clock.t;
        self.fetch_seq += 1;
        let result = source.fetch(self.fetch_seq, url, t);
        if hook.active() {
            hook.on_fetch(&FetchRecord { seq: self.fetch_seq, url, t, result: result.clone() });
        }
        let window = self.window.as_mut().expect("window in progress");
        match result {
            Ok(outcome) => {
                self.obs.add("fetch_ok_total", 1);
                self.metrics.record_fetch(true);
                window
                    .shadow
                    .insert(url.page, PeriodicPage { crawl_time: t, checksum: outcome.checksum });
                for link in outcome.links {
                    if self.routing.is_foreign(link.site) {
                        // Another shard owns this site: queue the
                        // sighting for the next fleet exchange instead of
                        // entering the local frontier.
                        self.routing.outbox.push(RoutedLink {
                            seq: self.fetch_seq,
                            from: url.page,
                            url: link,
                        });
                        continue;
                    }
                    if window.seen.insert(link.page) {
                        window.frontier.push_back(link);
                    }
                }
            }
            Err(FetchError::NotFound) => {
                self.obs.add("fetch_not_found_total", 1);
                self.metrics.record_fetch(false);
            }
            Err(FetchError::Transient) => {
                self.obs.add("fetch_transient_total", 1);
                self.metrics.record_fetch(false);
            }
            Err(FetchError::RateLimited { .. }) => {
                // Batch crawlers just retry later in the window.
                self.obs.add("fetch_rate_limited_total", 1);
                window.frontier.push_back(url);
            }
        }
    }

    /// Swap the completed shadow in as the current collection, fire the
    /// pass boundary, and enter the idle phase. Pages become *visible* at
    /// the nominal window end (`cycle_start + window_days`), which the
    /// latency metrics account against, even when the batch finished its
    /// fetch budget earlier.
    fn swap(
        &mut self,
        universe: &WebUniverse,
        source: &mut FetchSource<'_>,
        hook: &mut dyn CrawlHook,
    ) {
        let window = self.window.take().expect("window in progress");
        let _pass = self.obs.span(Stage::Pass, LogicalClock::new(self.clock.t, self.fetch_seq));
        self.obs.gauge("queue_depth", window.frontier.len() as f64);
        let swap_time = self.cycle_start + self.config.window_days;
        for (p, snap) in window.shadow.iter() {
            if !self.first_visible.contains(p) {
                self.first_visible.insert(p, swap_time);
                let birth = universe.page(p).birth;
                if birth >= self.run_start {
                    self.metrics.record_admission_latency(swap_time - birth);
                    // The page was "found" when the batch crawl fetched
                    // it; it sat invisible until the swap.
                    self.metrics.record_discovery_latency(swap_time - snap.crawl_time);
                }
            }
        }
        self.current = window.shadow;
        self.cycles += 1;
        self.idle = true;
        if hook.active() {
            // The boundary fires with the swap done and the idle phase
            // entered: a snapshot taken here resumes into pure sampling,
            // never re-runs the swap.
            let t = self.clock.t;
            let source = &*source;
            hook.on_pass_boundary(t, &mut || {
                let mut state = self.export_state();
                state.fetcher = source.fetcher_state();
                state
            });
        }
        if let Some(publisher) = self.publisher.as_mut() {
            let _swap =
                self.obs.span(Stage::ViewSwap, LogicalClock::new(self.clock.t, self.fetch_seq));
            publisher.publish(ViewBoundary {
                t: self.clock.t,
                fetch_seq: self.fetch_seq,
                passes: self.cycles,
                pages: BoundaryPages::Periodic(&self.current),
                metrics: &self.metrics,
            });
        }
    }

    /// Evaluation-only freshness/age sampling of the current collection.
    fn sample_metrics(&mut self, universe: &WebUniverse, t: f64) {
        if self.current.is_empty() {
            self.metrics.sample(t, 0.0, 0.0);
            return;
        }
        let mut fresh = 0usize;
        let mut age_sum = 0.0;
        let n = self.current.len();
        for (p, snap) in self.current.iter() {
            if universe.copy_is_fresh(p, snap.crawl_time, t) {
                fresh += 1;
            } else {
                let page = universe.page(p);
                let staled_at = universe
                    .first_change_after(p, snap.crawl_time)
                    .unwrap_or(page.death)
                    .min(page.death);
                age_sum += (t - staled_at).max(0.0);
            }
        }
        self.metrics.sample(t, fresh as f64 / n as f64, age_sum / n as f64);
    }
}

impl CrawlEngine for PeriodicCrawler {
    fn kind(&self) -> EngineKind {
        EngineKind::Periodic
    }

    fn started(&self) -> bool {
        self.started
    }

    fn clock(&self) -> EngineClock {
        self.clock
    }

    /// Advance to day `until`. The first call starts the run at day 0;
    /// later calls continue from the frozen clock — mid-window, mid-idle,
    /// wherever it stopped. Unlike the incremental engines this engine
    /// never samples off the sampling grid, so a continued run's metric
    /// rows are exactly those of a single longer run.
    fn drive(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        hook: &mut dyn CrawlHook,
        until: f64,
    ) -> Result<&CrawlMetrics, WebEvoError> {
        if !self.started {
            if until <= self.clock.t {
                return Err(WebEvoError::InvalidState(format!(
                    "drive target {until} must lie beyond the start day {}",
                    self.clock.t
                )));
            }
            self.begin_run();
        } else if until <= self.clock.t {
            return Err(WebEvoError::InvalidState(format!(
                "drive target {until} must lie beyond the engine clock {}",
                self.clock.t
            )));
        }
        self.metrics.observe_speed(self.config.peak_speed());
        let _drive = self.obs.span(Stage::Drive, LogicalClock::new(self.clock.t, self.fetch_seq));
        self.advance(universe, &mut FetchSource::Live(fetcher), until, hook);
        Ok(&self.metrics)
    }

    /// Re-apply the write-ahead-log tail after restoring a snapshot. The
    /// BFS window is re-derived deterministically from the restored cycle
    /// state; each logged outcome feeds the live code path and advances
    /// `fetcher` via [`Fetcher::observe_replay`].
    fn replay(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        events: &[WalEvent],
    ) -> Result<(), WebEvoError> {
        if !self.started {
            // Day-0 snapshot (killed before the first cadence snapshot):
            // an empty tail leaves the fresh engine untouched; a non-empty
            // one starts the run and replays it from the top.
            if events.is_empty() {
                return Ok(());
            }
            self.begin_run();
        }
        let skip = events.partition_point(|e| e.seq() <= self.fetch_seq);
        let tail = &events[skip..];
        if let Some(first) = tail.first() {
            if first.seq() != self.fetch_seq + 1 {
                return Err(WebEvoError::InvalidState(format!(
                    "WAL gap: snapshot ends at seq {} but the log resumes at {}",
                    self.fetch_seq,
                    first.seq()
                )));
            }
        }
        let mut source = FetchSource::Replay { events: tail, pos: 0, fetcher };
        self.advance(universe, &mut source, f64::INFINITY, &mut NoopHook);
        Ok(())
    }

    /// Capture the full engine state. The incremental fields of the
    /// shared layout are empty; the cycle/shadow state rides in
    /// [`CrawlerState::periodic`].
    fn export_state(&self) -> CrawlerState {
        CrawlerState {
            engine: EngineKind::Periodic,
            config: EngineConfig::Periodic(self.config.clone()),
            run_start: self.run_start,
            seeded: self.started,
            clock: self.clock,
            fetch_seq: self.fetch_seq,
            collection: Collection::new(self.config.capacity, 1),
            all_urls: crate::allurls::AllUrls::new(),
            queue: Vec::new(),
            queued: Vec::new(),
            admissions: Vec::new(),
            update: UpdateModule::new(
                RevisitStrategy::Uniform,
                EstimatorKind::Ep,
                self.config.cycle_days,
            ),
            ranking_runs: 0,
            ranking_applied: 0,
            rank_pending: false,
            crawl: CrawlModule::default(),
            periodic: Some(PeriodicState {
                current: self.current.clone(),
                first_visible: self.first_visible.clone(),
                cycles: self.cycles,
                cycle_start: self.cycle_start,
                idle: self.idle,
                window: self.window.clone(),
            }),
            metrics: self.metrics.clone(),
            fetcher: None,
            routing: self.routing.clone(),
        }
    }

    fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    fn collection(&self) -> Option<&Collection> {
        None
    }

    fn collection_len(&self) -> usize {
        self.current.len()
    }

    fn passes(&self) -> u64 {
        self.cycles
    }

    fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    fn set_view_publisher(&mut self, publisher: Box<dyn ViewPublisher>) {
        self.publisher = Some(publisher);
    }

    fn set_scope(&mut self, scope: ShardScope) -> Result<(), WebEvoError> {
        if self.started {
            return Err(WebEvoError::InvalidState(
                "shard scope must be set before the run starts".into(),
            ));
        }
        self.routing.scope = Some(scope);
        Ok(())
    }

    fn routing(&self) -> Option<&RoutingState> {
        Some(&self.routing)
    }

    fn inject_links(&mut self, links: Vec<RoutedLink>) -> Result<RoutedBatch, WebEvoError> {
        if !self.started {
            return Err(WebEvoError::InvalidState(
                "cannot inject routed links before the run starts".into(),
            ));
        }
        let batch = RoutedBatch { seq: self.fetch_seq + 1, t: self.clock.t, links };
        self.apply_routed(batch.clone());
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};

    fn universe() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(88))
    }

    fn config() -> PeriodicConfig {
        PeriodicConfig {
            capacity: 60,
            cycle_days: 10.0,
            window_days: 2.5,
            sample_interval_days: 0.5,
        }
    }

    fn run(crawler: &mut PeriodicCrawler, u: &WebUniverse, f: &mut SimFetcher, days: f64) {
        crawler.drive(u, f, &mut NoopHook, days).expect("drive succeeds");
    }

    #[test]
    fn cycles_and_swaps() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        run(&mut crawler, &u, &mut fetcher, 40.0);
        assert_eq!(crawler.cycles(), 4);
        assert!(crawler.current_size() > 40, "size={}", crawler.current_size());
    }

    #[test]
    fn collection_is_empty_before_first_swap() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        run(&mut crawler, &u, &mut fetcher, 40.0);
        // The first samples (before day 2.5) must show freshness 0 — no
        // current collection exists yet.
        let rows: Vec<(f64, f64)> = crawler.metrics().freshness.rows().collect();
        for &(t, f) in rows.iter().take(4) {
            if t < 2.5 {
                assert_eq!(f, 0.0, "no user-visible collection before the first swap");
            }
        }
        // After warm-up, freshness is positive.
        assert!(crawler.metrics().average_freshness_from(10.0) > 0.3);
    }

    #[test]
    fn peak_speed_exceeds_average() {
        let c = config();
        assert!(c.peak_speed() > c.average_speed() * 3.9);
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(c);
        run(&mut crawler, &u, &mut fetcher, 20.0);
        assert!((crawler.metrics().peak_speed - 24.0).abs() < 1e-9);
    }

    #[test]
    fn freshness_sawtooth_decays_between_swaps() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        run(&mut crawler, &u, &mut fetcher, 40.0);
        let rows: Vec<(f64, f64)> = crawler.metrics().freshness.rows().collect();
        // Find freshness right after the second swap (t≈12.5) and right
        // before the third (t≈22.5): it must decay.
        let f_after = rows
            .iter()
            .find(|(t, _)| *t >= 13.0)
            .map(|&(_, f)| f)
            .unwrap();
        let f_before = rows
            .iter()
            .find(|(t, _)| *t >= 22.0)
            .map(|&(_, f)| f)
            .unwrap();
        assert!(
            f_after > f_before,
            "sawtooth: after swap {f_after} should beat end of cycle {f_before}"
        );
    }

    #[test]
    fn new_pages_wait_for_next_swap() {
        // Admission latency for the periodic crawler is bounded below by
        // the batch mechanics: nothing becomes visible between swaps.
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        run(&mut crawler, &u, &mut fetcher, 40.0);
        assert!(crawler.metrics().new_page_latency.count() > 0);
    }

    #[test]
    fn deterministic() {
        let u = universe();
        let run_once = || {
            let mut fetcher = SimFetcher::new(&u);
            let mut crawler = PeriodicCrawler::new(config());
            run(&mut crawler, &u, &mut fetcher, 30.0);
            (crawler.current_size(), crawler.metrics().fetches)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn driving_in_two_legs_matches_one_run() {
        // The periodic engine freezes anywhere — mid-window, mid-idle —
        // and a continued drive retraces the single-run trajectory
        // exactly (its samples always lie on the sampling grid).
        let u = universe();
        let mut f1 = SimFetcher::new(&u);
        let mut split = PeriodicCrawler::new(config());
        run(&mut split, &u, &mut f1, 11.3); // mid-window of cycle 2
        run(&mut split, &u, &mut f1, 27.8); // mid-idle of cycle 3
        run(&mut split, &u, &mut f1, 40.0);

        let mut f2 = SimFetcher::new(&u);
        let mut whole = PeriodicCrawler::new(config());
        run(&mut whole, &u, &mut f2, 40.0);

        assert_eq!(split.metrics().fetches, whole.metrics().fetches);
        assert_eq!(split.cycles(), whole.cycles());
        let rows_a: Vec<(f64, f64)> = split.metrics().freshness.rows().collect();
        let rows_b: Vec<(f64, f64)> = whole.metrics().freshness.rows().collect();
        assert_eq!(rows_a, rows_b, "split drive diverged from one run");
    }

    #[test]
    fn state_roundtrip_mid_window_preserves_continuation() {
        let u = universe();
        let mut f1 = SimFetcher::new(&u);
        let mut original = PeriodicCrawler::new(config());
        run(&mut original, &u, &mut f1, 21.7); // mid-window of cycle 3
        let mut state = original.export_state();
        state.fetcher = webevo_sim::Fetcher::export_state(&f1);
        let (mut restored, fstate) = PeriodicCrawler::from_state(state).expect("restores");
        let mut f2 = SimFetcher::new(&u);
        f2.restore_state(fstate.expect("sim fetcher state persisted"));
        run(&mut original, &u, &mut f1, 35.0);
        run(&mut restored, &u, &mut f2, 35.0);
        assert_eq!(original.metrics().fetches, restored.metrics().fetches);
        let rows_a: Vec<(f64, f64)> = original.metrics().freshness.rows().collect();
        let rows_b: Vec<(f64, f64)> = restored.metrics().freshness.rows().collect();
        assert_eq!(rows_a, rows_b, "restored engine diverged");
    }

    #[test]
    fn from_state_rejects_foreign_states() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = PeriodicCrawler::new(config());
        run(&mut crawler, &u, &mut fetcher, 5.0);
        let mut state = crawler.export_state();
        state.engine = EngineKind::Incremental;
        assert!(matches!(
            PeriodicCrawler::from_state(state),
            Err(WebEvoError::InvalidState(_))
        ));
    }
}
