//! The three modules of Figure 12 as separable units.
//!
//! * [`CrawlModule`] — fetches a page and reports the outcome (links are
//!   extracted by the fetch layer, as a real crawler's parser would).
//! * [`UpdateModule`] — the *update decision*: estimates each page's change
//!   rate from its history (EP or EB) and assigns revisit intervals under
//!   the configured strategy and crawl budget.
//! * [`RankingModule`] — the *refinement decision*: recomputes importance
//!   over the collection's link structure, estimates the importance of
//!   uncrawled URLs from their in-links (footnote 2), and proposes
//!   replacements.
//!
//! §5.3's performance argument — the refinement decision is expensive and
//! must not run per-crawl — is preserved by making `RankingModule::run` an
//! explicitly periodic batch operation while `UpdateModule` stays O(1) per
//! crawl (its global reallocation is also periodic).

use crate::allurls::AllUrls;
use crate::collection::{Collection, StoredPage};
use serde::{Deserialize, Serialize};
use webevo_graph::pagerank::{pagerank, PageRankConfig};
use webevo_graph::PageGraph;
use webevo_schedule::{
    optimal_allocation, proportional_allocation, uniform_allocation,
};
use webevo_sim::{FetchError, FetchOutcome, Fetcher};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{ChangeRate, DenseMap, PageId, Url};

/// Which frequency estimator the UpdateModule uses (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// EP: frequentist bias-corrected Poisson estimate from the change
    /// history.
    Ep,
    /// EB: Bayesian frequency-class posterior mean.
    Eb,
}

/// Which revisit strategy turns rates into frequencies (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RevisitStrategy {
    /// Every page at the same frequency.
    Uniform,
    /// Frequency proportional to estimated change rate.
    Proportional,
    /// The freshness-optimal allocation (Figure 9).
    Optimal,
}

/// The CrawlModule: fetch plus accounting. One instance per worker in the
/// threaded engine.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CrawlModule {
    crawled: u64,
    failed: u64,
}

impl CrawlModule {
    /// A fresh module.
    pub fn new() -> CrawlModule {
        CrawlModule::default()
    }

    /// Crawl one URL at time `t`: fetch plus [`CrawlModule::observe`]
    /// accounting. Convenience wrapper for direct module use; the engines
    /// fetch through their replayable `FetchSource` and call `observe`
    /// themselves, so accounting semantics live in `observe` alone.
    pub fn crawl(
        &mut self,
        fetcher: &mut dyn Fetcher,
        url: Url,
        t: f64,
    ) -> Result<FetchOutcome, FetchError> {
        let result = fetcher.fetch(url, t);
        self.observe(result.is_err());
        result
    }

    /// Account one attempt that `failed` (or not) without fetching —
    /// write-ahead-log replay advances the counters from recorded
    /// outcomes.
    pub fn observe(&mut self, failed: bool) {
        self.crawled += 1;
        if failed {
            self.failed += 1;
        }
    }

    /// Total crawl attempts.
    pub fn crawled(&self) -> u64 {
        self.crawled
    }

    /// Failed crawl attempts.
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

/// The UpdateModule: rate estimation and revisit-interval assignment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UpdateModule {
    strategy: RevisitStrategy,
    estimator: EstimatorKind,
    /// Prior rate for pages without enough history (events/day). The
    /// paper's overall average interval is ~4 months; a somewhat faster
    /// prior makes the crawler explore new pages before settling.
    prior_rate: ChangeRate,
    /// Per-page revisit intervals from the last reallocation. Dense and
    /// iterated in ascending-id order, so snapshots stay canonical (two
    /// exports of the same state are byte-identical).
    intervals: DenseMap<f64>,
    /// Fallback interval before the first reallocation.
    default_interval: f64,
}

impl UpdateModule {
    /// Create with a strategy, estimator and the default revisit interval
    /// used until the first global reallocation.
    pub fn new(
        strategy: RevisitStrategy,
        estimator: EstimatorKind,
        default_interval: f64,
    ) -> UpdateModule {
        assert!(default_interval > 0.0);
        UpdateModule {
            strategy,
            estimator,
            prior_rate: ChangeRate(1.0 / 60.0),
            intervals: DenseMap::new(),
            default_interval,
        }
    }

    /// Estimated change rate of a stored page under the configured
    /// estimator; the prior until the page has enough history.
    pub fn estimated_rate(&self, page: &StoredPage) -> ChangeRate {
        match self.estimator {
            EstimatorKind::Ep => {
                let h = &page.history;
                if h.comparisons() < 2 {
                    return self.prior_rate;
                }
                let interval = match h.mean_access_interval() {
                    Some(i) if i > 0.0 => i,
                    _ => return self.prior_rate,
                };
                webevo_estimate::estimate_regular_bias_corrected(
                    h.detections(),
                    h.comparisons(),
                    interval,
                )
                .unwrap_or(self.prior_rate)
            }
            EstimatorKind::Eb => {
                if page.bayes.observations() == 0 {
                    self.prior_rate
                } else {
                    page.bayes.posterior_mean_rate()
                }
            }
        }
    }

    /// Recompute every page's revisit interval from current estimates,
    /// given the crawl budget (fetches/day). Called periodically — not per
    /// crawl — alongside the ranking pass.
    pub fn reallocate(&mut self, collection: &Collection, budget_per_day: f64) {
        if collection.is_empty() || budget_per_day <= 0.0 {
            return;
        }
        let mut pages: Vec<PageId> = Vec::with_capacity(collection.len());
        let mut rates: Vec<ChangeRate> = Vec::with_capacity(collection.len());
        for (p, stored) in collection.iter() {
            pages.push(p);
            rates.push(self.estimated_rate(stored));
        }
        let allocation = match self.strategy {
            RevisitStrategy::Uniform => uniform_allocation(&rates, budget_per_day),
            RevisitStrategy::Proportional => proportional_allocation(&rates, budget_per_day),
            RevisitStrategy::Optimal => {
                optimal_allocation(&rates, budget_per_day).map(|s| s.allocation)
            }
        };
        let Ok(allocation) = allocation else {
            return; // keep previous intervals on solver failure
        };
        self.intervals.clear();
        for (p, &f) in pages.iter().zip(allocation.frequencies.iter()) {
            // Zero-frequency pages are parked far in the future rather than
            // dropped: if the collection shrinks they become reachable
            // again at the next reallocation.
            let interval = if f > 0.0 { 1.0 / f } else { 1e6 };
            self.intervals.insert(*p, interval);
        }
    }

    /// The next revisit time for a page crawled at `t`.
    pub fn next_due(&self, page: PageId, t: f64) -> f64 {
        t + self
            .intervals
            .get(page)
            .copied()
            .unwrap_or(self.default_interval)
    }

    /// Drop scheduling state for a discarded page.
    pub fn forget(&mut self, page: PageId) {
        self.intervals.remove(page);
    }

    /// The page's assigned revisit interval, if it has one (pages never
    /// touched by a reallocation run on the default).
    pub fn interval(&self, page: PageId) -> Option<f64> {
        self.intervals.get(page).copied()
    }

    /// Carry a page's assigned interval across a fleet rebalance — the
    /// receiving shard keeps the donor's allocation until its own next
    /// reallocation pass.
    pub fn set_interval(&mut self, page: PageId, interval: f64) {
        assert!(interval > 0.0, "revisit interval must be positive");
        self.intervals.insert(page, interval);
    }

    /// The configured strategy.
    pub fn strategy(&self) -> RevisitStrategy {
        self.strategy
    }

    /// The configured estimator.
    pub fn estimator(&self) -> EstimatorKind {
        self.estimator
    }
}

impl BinEncode for CrawlModule {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.crawled.bin_encode(out);
        self.failed.bin_encode(out);
    }
}

impl BinDecode for CrawlModule {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<CrawlModule, BinError> {
        Ok(CrawlModule { crawled: u64::bin_decode(r)?, failed: u64::bin_decode(r)? })
    }
}

impl BinEncode for RevisitStrategy {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            RevisitStrategy::Uniform => 0,
            RevisitStrategy::Proportional => 1,
            RevisitStrategy::Optimal => 2,
        });
    }
}

impl BinDecode for RevisitStrategy {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<RevisitStrategy, BinError> {
        match r.byte()? {
            0 => Ok(RevisitStrategy::Uniform),
            1 => Ok(RevisitStrategy::Proportional),
            2 => Ok(RevisitStrategy::Optimal),
            other => Err(BinError::new(format!("invalid RevisitStrategy tag {other}"))),
        }
    }
}

impl BinEncode for EstimatorKind {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            EstimatorKind::Ep => 0,
            EstimatorKind::Eb => 1,
        });
    }
}

impl BinDecode for EstimatorKind {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<EstimatorKind, BinError> {
        match r.byte()? {
            0 => Ok(EstimatorKind::Ep),
            1 => Ok(EstimatorKind::Eb),
            other => Err(BinError::new(format!("invalid EstimatorKind tag {other}"))),
        }
    }
}

impl BinEncode for UpdateModule {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.strategy.bin_encode(out);
        self.estimator.bin_encode(out);
        self.prior_rate.bin_encode(out);
        self.intervals.bin_encode(out);
        self.default_interval.bin_encode(out);
    }
}

impl BinDecode for UpdateModule {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<UpdateModule, BinError> {
        Ok(UpdateModule {
            strategy: RevisitStrategy::bin_decode(r)?,
            estimator: EstimatorKind::bin_decode(r)?,
            prior_rate: ChangeRate::bin_decode(r)?,
            intervals: DenseMap::bin_decode(r)?,
            default_interval: f64::bin_decode(r)?,
        })
    }
}

/// RankingModule parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankingConfig {
    /// PageRank parameterization (importance metric).
    pub pagerank: PageRankConfig,
    /// At most this many replacements per ranking pass (churn damping).
    pub max_replacements_per_run: usize,
    /// A candidate must beat the minimum collection importance by this
    /// factor to trigger a replacement (hysteresis against thrashing).
    pub admit_margin: f64,
}

impl Default for RankingConfig {
    fn default() -> Self {
        RankingConfig {
            pagerank: PageRankConfig::conventional(),
            max_replacements_per_run: 8,
            admit_margin: 1.1,
        }
    }
}

impl BinEncode for RankingConfig {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.pagerank.bin_encode(out);
        self.max_replacements_per_run.bin_encode(out);
        self.admit_margin.bin_encode(out);
    }
}

impl BinDecode for RankingConfig {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<RankingConfig, BinError> {
        Ok(RankingConfig {
            pagerank: PageRankConfig::bin_decode(r)?,
            max_replacements_per_run: usize::bin_decode(r)?,
            admit_margin: f64::bin_decode(r)?,
        })
    }
}

/// The outcome of one ranking pass.
#[derive(Clone, Debug, Default)]
pub struct RankingOutcome {
    /// `(discard, admit)` pairs the engine should execute.
    pub replacements: Vec<(PageId, Url)>,
    /// Pages scored.
    pub ranked: usize,
}

/// The RankingModule: periodic importance recomputation and replacement
/// proposals.
#[derive(Clone, Debug, Default)]
pub struct RankingModule {
    config: RankingConfig,
    runs: u64,
}

impl RankingModule {
    /// Create with a configuration.
    pub fn new(config: RankingConfig) -> RankingModule {
        RankingModule { config, runs: 0 }
    }

    /// Rebuild from a checkpoint: same configuration, `runs` passes
    /// already completed.
    pub fn with_runs(config: RankingConfig, runs: u64) -> RankingModule {
        RankingModule { config, runs }
    }

    /// Number of completed passes.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// One ranking pass: recompute PageRank over the collection's link
    /// structure, write importance scores back, and propose replacements
    /// from AllUrls candidates.
    pub fn run(&mut self, collection: &mut Collection, all_urls: &AllUrls) -> RankingOutcome {
        self.runs += 1;
        if collection.is_empty() {
            return RankingOutcome::default();
        }
        // Build the intra-collection link graph.
        let mut graph = PageGraph::new();
        for (p, stored) in collection.iter() {
            graph.add_page(p, stored.url.site);
        }
        // Two passes (membership first, then edges) so no intermediate
        // edge list is materialized: the old per-page `collect` meant one
        // heap allocation per collection page, every ranking pass.
        for (p, stored) in collection.iter() {
            for l in stored.links.iter().filter(|l| collection.contains(l.page)) {
                graph.add_link(p, l.page);
            }
        }
        let Ok(scores) = pagerank(&graph, &self.config.pagerank) else {
            return RankingOutcome::default();
        };
        for (p, stored) in collection.iter_mut() {
            stored.importance = scores.get(p);
        }
        // Estimate candidates from their in-link evidence.
        let in_collection = |url: Url| collection.contains(url.page);
        let teleport = 1.0 - self.config.pagerank.follow;
        let mut candidates: Vec<(Url, f64)> = all_urls
            .candidates(&in_collection)
            .map(|(url, info)| {
                let mass: f64 = info
                    .in_link_sources
                    .iter()
                    .filter(|s| collection.contains(**s))
                    .map(|&s| {
                        let deg = graph.out_degree(s) + 1;
                        scores.get(s) / deg as f64
                    })
                    .sum();
                (url, teleport + self.config.pagerank.follow * mass)
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("no NaN")
                .then((a.0.site, a.0.page).cmp(&(b.0.site, b.0.page)))
        });

        // Propose replacements: best candidates against worst incumbents.
        let mut outcome = RankingOutcome { replacements: Vec::new(), ranked: collection.len() };
        let mut evicted: Vec<PageId> = Vec::new();
        for (url, estimate) in candidates {
            if outcome.replacements.len() >= self.config.max_replacements_per_run {
                break;
            }
            let victim = collection
                .iter()
                .filter(|(p, _)| !evicted.contains(p))
                .min_by(|a, b| {
                    a.1.importance
                        .partial_cmp(&b.1.importance)
                        .expect("no NaN")
                        .then(a.0.cmp(&b.0))
                })
                .map(|(p, s)| (p, s.importance));
            let Some((victim_page, victim_importance)) = victim else {
                break;
            };
            if estimate > victim_importance * self.config.admit_margin {
                evicted.push(victim_page);
                outcome.replacements.push((victim_page, url));
            } else {
                break; // candidates are sorted; nothing further qualifies
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::{Checksum, SiteId};

    fn url(i: u64) -> Url {
        Url::new(SiteId(0), PageId(i))
    }

    fn filled_collection(n: u64) -> Collection {
        let mut c = Collection::new(n as usize, 50);
        for i in 0..n {
            c.save(url(i), Checksum(i), vec![], 0.0);
        }
        c
    }

    #[test]
    fn update_module_uses_prior_without_history() {
        let m = UpdateModule::new(RevisitStrategy::Uniform, EstimatorKind::Ep, 10.0);
        let c = filled_collection(1);
        let stored = c.get(PageId(0)).unwrap();
        assert_eq!(m.estimated_rate(stored), ChangeRate(1.0 / 60.0));
    }

    #[test]
    fn update_module_learns_from_history() {
        let m = UpdateModule::new(RevisitStrategy::Uniform, EstimatorKind::Ep, 10.0);
        let mut c = filled_collection(1);
        // Change on every visit for 30 days: the estimate must be fast.
        for day in 1..=30 {
            c.update(PageId(0), Checksum(100 + day), vec![], day as f64);
        }
        let rate = m.estimated_rate(c.get(PageId(0)).unwrap());
        assert!(rate.per_day() > 1.0, "rate={}", rate.per_day());
        // EB agrees directionally.
        let mb = UpdateModule::new(RevisitStrategy::Uniform, EstimatorKind::Eb, 10.0);
        let rb = mb.estimated_rate(c.get(PageId(0)).unwrap());
        assert!(rb.per_day() > 0.3, "eb rate={}", rb.per_day());
    }

    #[test]
    fn reallocation_uniform_gives_equal_intervals() {
        let mut m = UpdateModule::new(RevisitStrategy::Uniform, EstimatorKind::Ep, 10.0);
        let c = filled_collection(4);
        m.reallocate(&c, 2.0); // 2 fetches/day over 4 pages → 2-day interval
        for i in 0..4 {
            let due = m.next_due(PageId(i), 100.0);
            assert!((due - 102.0).abs() < 1e-9, "due={due}");
        }
    }

    #[test]
    fn reallocation_optimal_prefers_moderate_pages() {
        let mut m = UpdateModule::new(RevisitStrategy::Optimal, EstimatorKind::Ep, 10.0);
        let mut c = Collection::new(2, 200);
        c.save(url(0), Checksum(0), vec![], 0.0);
        c.save(url(1), Checksum(1), vec![], 0.0);
        // Page 0 changes every visit (hot), page 1 changes rarely.
        for day in 1..=60 {
            c.update(PageId(0), Checksum(1000 + day), vec![], day as f64);
            let slow = if day < 30 { Checksum(1) } else { Checksum(2) };
            c.update(PageId(1), slow, vec![], day as f64);
        }
        m.reallocate(&c, 0.2); // tight budget
        let hot_due = m.next_due(PageId(0), 0.0);
        let slow_due = m.next_due(PageId(1), 0.0);
        assert!(
            slow_due < hot_due,
            "optimal visits the moderate page sooner: hot={hot_due}, slow={slow_due}"
        );
    }

    #[test]
    fn forget_restores_default() {
        let mut m = UpdateModule::new(RevisitStrategy::Uniform, EstimatorKind::Ep, 7.0);
        let c = filled_collection(2);
        m.reallocate(&c, 1.0);
        assert!((m.next_due(PageId(0), 0.0) - 2.0).abs() < 1e-9);
        m.forget(PageId(0));
        assert!((m.next_due(PageId(0), 0.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_scores_and_replaces() {
        let mut c = Collection::new(3, 50);
        // Page 0 links to 1; 1 links to 0; 2 is isolated (lowest rank).
        c.save(url(0), Checksum(0), vec![url(1)], 0.0);
        c.save(url(1), Checksum(1), vec![url(0)], 0.0);
        c.save(url(2), Checksum(2), vec![], 0.0);
        let mut a = AllUrls::new();
        // Candidate 10 is linked from both collection hubs.
        a.add_in_link(url(10), PageId(0), 0.0);
        a.add_in_link(url(10), PageId(1), 0.0);
        let mut ranking = RankingModule::new(RankingConfig {
            admit_margin: 1.0,
            ..RankingConfig::default()
        });
        let outcome = ranking.run(&mut c, &a);
        assert_eq!(outcome.ranked, 3);
        assert!(c.get(PageId(0)).unwrap().importance > c.get(PageId(2)).unwrap().importance);
        assert_eq!(outcome.replacements.len(), 1);
        let (victim, admit) = outcome.replacements[0];
        assert_eq!(victim, PageId(2), "isolated page is the victim");
        assert_eq!(admit, url(10));
    }

    #[test]
    fn ranking_respects_margin() {
        let mut c = Collection::new(2, 50);
        c.save(url(0), Checksum(0), vec![url(1)], 0.0);
        c.save(url(1), Checksum(1), vec![url(0)], 0.0);
        let mut a = AllUrls::new();
        // A candidate with one weak in-link should NOT displace anyone
        // under a high margin.
        a.add_in_link(url(10), PageId(0), 0.0);
        let mut ranking = RankingModule::new(RankingConfig {
            admit_margin: 10.0,
            ..RankingConfig::default()
        });
        let outcome = ranking.run(&mut c, &a);
        assert!(outcome.replacements.is_empty());
    }

    #[test]
    fn ranking_on_empty_collection_is_noop() {
        let mut c = Collection::new(2, 50);
        let a = AllUrls::new();
        let mut ranking = RankingModule::new(RankingConfig::default());
        let outcome = ranking.run(&mut c, &a);
        assert_eq!(outcome.ranked, 0);
        assert!(outcome.replacements.is_empty());
    }

    #[test]
    fn crawl_module_counts() {
        use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};
        let u = WebUniverse::generate(UniverseConfig::test_scale(5));
        let mut f = SimFetcher::new(&u);
        let mut m = CrawlModule::new();
        let root = u.sites()[0].slots[0][0];
        assert!(m.crawl(&mut f, u.url_of(root), 1.0).is_ok());
        let bogus = Url::new(SiteId(0), PageId(u.page_count() as u64 + 1));
        assert!(m.crawl(&mut f, bogus, 1.0).is_err());
        assert_eq!(m.crawled(), 2);
        assert_eq!(m.failed(), 1);
    }
}
