//! Engine-side checkpoint instrumentation.
//!
//! The durability subsystem (`webevo-store`) must observe two things to
//! make a crawl recoverable: every fetch attempt's outcome (the
//! write-ahead-log deltas) and a consistent full-state view at pass
//! boundaries (the snapshots). [`CrawlHook`] is that observation surface.
//! The contract mirrors §5.3's separation of the crawl loop from periodic
//! refinement:
//!
//! * [`CrawlHook::on_fetch`] fires once per fetch attempt with a borrowed
//!   [`FetchRecord`] delta. Implementations must only buffer in memory —
//!   the engines call it on the fetch hot path.
//! * [`CrawlHook::on_pass_boundary`] fires at each completed pass
//!   boundary — a RankingModule pass for the incremental engines, a
//!   shadow swap for the periodic one — when no fetch is in flight and no
//!   ranking response is pending: the one point where the full engine
//!   state is quiescent and cheap to capture. The engine announces the
//!   boundary explicitly; observers never have to infer it from ranking
//!   or cycle counters. Durable I/O belongs here.
//!
//! Recovery replays `snapshot + WAL tail` through the engines'
//! [`crate::engine::CrawlEngine::replay`]: each logged [`FetchRecord`] is
//! re-applied through the same state transitions as a live fetch, so the
//! restored engine is bit-identical to the pre-crash one at the last
//! flushed boundary.

use crate::state::CrawlerState;
use serde::{Deserialize, Serialize};
use webevo_sim::{FetchError, FetchOutcome};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::Url;

/// One fetch attempt's outcome — the unit of the write-ahead log.
///
/// `seq` is the engine's monotone fetch-attempt counter; recovery uses it
/// to discard WAL records already folded into a newer snapshot and to
/// detect gaps. `url` and `t` are carried redundantly so replay can verify
/// the deterministic schedule reproduces the logged one record-for-record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FetchRecord {
    /// Engine-wide fetch-attempt sequence number (1-based).
    pub seq: u64,
    /// The URL that was fetched.
    pub url: Url,
    /// The simulated time of the attempt (days).
    pub t: f64,
    /// What the fetcher returned.
    pub result: Result<FetchOutcome, FetchError>,
}

impl BinEncode for FetchRecord {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.seq.bin_encode(out);
        self.url.bin_encode(out);
        self.t.bin_encode(out);
        self.result.bin_encode(out);
    }
}

impl BinDecode for FetchRecord {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FetchRecord, BinError> {
        Ok(FetchRecord {
            seq: u64::bin_decode(r)?,
            url: Url::bin_decode(r)?,
            t: f64::bin_decode(r)?,
            result: Result::bin_decode(r)?,
        })
    }
}

/// Observer the engines drive during a run. See the module docs for the
/// hot-path/boundary split.
pub trait CrawlHook {
    /// Whether the engine should construct and deliver [`FetchRecord`]s.
    /// Returning `false` (the no-op hook) lets the hot path skip the
    /// per-fetch clone entirely.
    fn active(&self) -> bool {
        true
    }

    /// One fetch attempt completed. The record is borrowed: clone it if it
    /// must outlive the call. Buffer only; no I/O.
    fn on_fetch(&mut self, record: &FetchRecord);

    /// A pass boundary completed at time `t` with the engine quiescent.
    /// `export` lazily captures the full engine state (including the
    /// fetcher's, when the fetcher is stateful) — call it only when a
    /// snapshot is actually due; flushing buffered records needs no
    /// export.
    fn on_pass_boundary(&mut self, t: f64, export: &mut dyn FnMut() -> CrawlerState);
}

/// The inert hook: engines run exactly as if uninstrumented.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopHook;

impl CrawlHook for NoopHook {
    fn active(&self) -> bool {
        false
    }

    fn on_fetch(&mut self, _record: &FetchRecord) {}

    fn on_pass_boundary(&mut self, _t: f64, _export: &mut dyn FnMut() -> CrawlerState) {}
}

/// Fan-out to two hooks — how `CrawlSession` runs a user hook and the
/// checkpointer side by side. Active when either side is.
pub struct PairHook<'a> {
    first: &'a mut dyn CrawlHook,
    second: &'a mut dyn CrawlHook,
}

impl<'a> PairHook<'a> {
    /// Combine two hooks; both observe every fetch and pass boundary.
    pub fn new(first: &'a mut dyn CrawlHook, second: &'a mut dyn CrawlHook) -> PairHook<'a> {
        PairHook { first, second }
    }
}

impl CrawlHook for PairHook<'_> {
    fn active(&self) -> bool {
        self.first.active() || self.second.active()
    }

    fn on_fetch(&mut self, record: &FetchRecord) {
        self.first.on_fetch(record);
        self.second.on_fetch(record);
    }

    fn on_pass_boundary(&mut self, t: f64, export: &mut dyn FnMut() -> CrawlerState) {
        self.first.on_pass_boundary(t, export);
        self.second.on_pass_boundary(t, export);
    }
}
