//! Cross-shard link routing: the records and state behind the fleet's
//! deterministic link-exchange protocol.
//!
//! A sharded fleet partitions sites across shards with a [`ShardPlan`].
//! Crawling never stops at a shard boundary, though: pages link across
//! sites, so every shard keeps discovering URLs it does not own. The
//! pre-routing fleet burned a fetch slot on each such discovery (the
//! sharded fetcher resolved it to `NotFound`) and then dropped it — the
//! silent page loss this module exists to fix. Instead, a scoped engine
//! diverts each foreign discovery into its **outbox** as a
//! [`RoutedLink`]; at every fleet pass boundary the coordinator drains
//! all outboxes, merges them in `(ShardId, seq)` order — a total,
//! schedule-independent order, so the exchange is byte-identical no
//! matter how many worker threads drove the shards — and delivers each
//! link to the shard owning its site as a [`RoutedBatch`].
//!
//! Batches are durable: each one is appended to the receiving shard's
//! write-ahead log as its own record kind ([`WalEvent::Routed`]), so a
//! shard killed after an exchange replays the injection exactly where it
//! happened in the fetch sequence. [`RoutingState`] rides inside the
//! engine snapshot for the same reason — a recovered shard knows its
//! scope, its undelivered outbox, and how many exchanges it has absorbed.

use crate::allurls::UrlInfo;
use crate::collection::StoredPage;
use crate::hooks::FetchRecord;
use crate::state::{CrawlerState, EngineConfig, EngineKind, QueueEntry};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{PageId, ShardId, ShardPlan, SiteId, Url, WebEvoError};

/// One foreign-URL discovery queued for delivery to its owning shard.
///
/// `seq` is the *source* shard's fetch sequence number at the moment of
/// discovery; together with the source [`ShardId`] it gives every routed
/// link a fleet-wide total order (see [`merge_outboxes`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutedLink {
    /// Source-shard fetch sequence at discovery time.
    pub seq: u64,
    /// The collection page whose fetch surfaced the link.
    pub from: PageId,
    /// The discovered URL (owned by some other shard).
    pub url: Url,
}

/// One delivery of routed links into a shard, as recorded in its WAL.
///
/// `seq` is a number consumed from the *receiving* shard's fetch-sequence
/// counter, and `t` its clock at injection time — together they pin the
/// batch to an exact position in the shard's deterministic schedule, so
/// replay re-applies it at the same point.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedBatch {
    /// Receiving-shard sequence number consumed by this injection.
    pub seq: u64,
    /// Receiving-shard clock (days) at injection.
    pub t: f64,
    /// The links delivered, already in `(ShardId, seq)` merge order.
    pub links: Vec<RoutedLink>,
}

/// One durable event in a shard's write-ahead log: either a fetch or a
/// routed-batch injection. Both kinds draw from the same per-shard
/// sequence counter, so the WAL is a single totally-ordered stream.
#[derive(Clone, Debug, PartialEq)]
pub enum WalEvent {
    /// A completed fetch.
    Fetch(FetchRecord),
    /// A routed-link delivery from the fleet exchange.
    Routed(RoutedBatch),
}

impl WalEvent {
    /// The event's sequence number in the shard's unified counter.
    pub fn seq(&self) -> u64 {
        match self {
            WalEvent::Fetch(record) => record.seq,
            WalEvent::Routed(batch) => batch.seq,
        }
    }

    /// The shard clock (days) when the event happened.
    pub fn t(&self) -> f64 {
        match self {
            WalEvent::Fetch(record) => record.t,
            WalEvent::Routed(batch) => batch.t,
        }
    }
}

/// A shard's view of the fleet partition: the plan plus its own id.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardScope {
    /// The fleet-wide site partition.
    pub plan: ShardPlan,
    /// This shard's identity within the plan.
    pub shard: ShardId,
}

impl ShardScope {
    /// Whether this shard owns `site` under the plan.
    #[inline]
    pub fn owns(&self, site: SiteId) -> bool {
        self.plan.owns(self.shard, site)
    }
}

/// Per-engine routing state, persisted inside the crawl snapshot.
///
/// `scope == None` means the engine runs unsharded (single-node) and all
/// routing machinery is inert. The `exchanges` counter counts applied
/// [`RoutedBatch`]es — the fleet injects one per shard per pass boundary,
/// even when empty, so the counter doubles as "how many pass barriers has
/// this shard's durable state absorbed", which is what fleet recovery
/// compares to find the laggard after a mid-exchange kill.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct RoutingState {
    /// The shard's partition view, if sharded.
    pub scope: Option<ShardScope>,
    /// Foreign discoveries awaiting the next exchange, in discovery order
    /// (ascending `seq`).
    pub outbox: Vec<RoutedLink>,
    /// Routed URLs awaiting frontier admission (periodic engine only —
    /// it can only seed new URLs at a crawl-window start).
    pub inbox: Vec<Url>,
    /// Routed batches applied so far.
    pub exchanges: u64,
}

impl RoutingState {
    /// Routing state for one shard of a plan.
    pub fn scoped(plan: ShardPlan, shard: ShardId) -> RoutingState {
        RoutingState {
            scope: Some(ShardScope { plan, shard }),
            ..RoutingState::default()
        }
    }

    /// Whether `site` is foreign (owned by another shard). Always false
    /// when unscoped.
    #[inline]
    pub fn is_foreign(&self, site: SiteId) -> bool {
        match &self.scope {
            Some(scope) => !scope.owns(site),
            None => false,
        }
    }
}

impl Deserialize for RoutingState {
    fn from_value(v: &Value) -> Result<RoutingState, SerdeError> {
        // Snapshots written before the routing era have no `routing`
        // field at all; the member arrives as Null and means "inert".
        if matches!(v, Value::Null) {
            return Ok(RoutingState::default());
        }
        let scope = Option::<ShardScope>::from_value(
            v.get("scope")
                .ok_or_else(|| SerdeError::custom("RoutingState missing `scope`"))?,
        )?;
        let outbox = Vec::<RoutedLink>::from_value(
            v.get("outbox")
                .ok_or_else(|| SerdeError::custom("RoutingState missing `outbox`"))?,
        )?;
        let inbox = Vec::<Url>::from_value(
            v.get("inbox")
                .ok_or_else(|| SerdeError::custom("RoutingState missing `inbox`"))?,
        )?;
        let exchanges = u64::from_value(
            v.get("exchanges")
                .ok_or_else(|| SerdeError::custom("RoutingState missing `exchanges`"))?,
        )?;
        Ok(RoutingState { scope, outbox, inbox, exchanges })
    }
}

impl BinEncode for RoutedLink {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.seq.bin_encode(out);
        self.from.bin_encode(out);
        self.url.bin_encode(out);
    }
}

impl BinDecode for RoutedLink {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<RoutedLink, BinError> {
        Ok(RoutedLink {
            seq: u64::bin_decode(r)?,
            from: PageId::bin_decode(r)?,
            url: Url::bin_decode(r)?,
        })
    }
}

impl BinEncode for RoutedBatch {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.seq.bin_encode(out);
        self.t.bin_encode(out);
        self.links.bin_encode(out);
    }
}

impl BinDecode for RoutedBatch {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<RoutedBatch, BinError> {
        Ok(RoutedBatch {
            seq: u64::bin_decode(r)?,
            t: f64::bin_decode(r)?,
            links: Vec::bin_decode(r)?,
        })
    }
}

impl BinEncode for ShardScope {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.plan.bin_encode(out);
        self.shard.bin_encode(out);
    }
}

impl BinDecode for ShardScope {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<ShardScope, BinError> {
        Ok(ShardScope {
            plan: ShardPlan::bin_decode(r)?,
            shard: ShardId::bin_decode(r)?,
        })
    }
}

impl BinEncode for RoutingState {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.scope.bin_encode(out);
        self.outbox.bin_encode(out);
        self.inbox.bin_encode(out);
        self.exchanges.bin_encode(out);
    }
}

impl BinDecode for RoutingState {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<RoutingState, BinError> {
        Ok(RoutingState {
            scope: Option::bin_decode(r)?,
            outbox: Vec::bin_decode(r)?,
            inbox: Vec::bin_decode(r)?,
            exchanges: u64::bin_decode(r)?,
        })
    }
}

/// Merge per-shard outboxes into the fleet-wide exchange order.
///
/// The order is `(source ShardId, seq)` ascending — a pure function of
/// the outbox *contents*, never of which worker thread drained which
/// shard first. That invariance is what keeps fleet runs byte-identical
/// across concurrency levels.
pub fn merge_outboxes(parts: &[(ShardId, Vec<RoutedLink>)]) -> Vec<RoutedLink> {
    let mut tagged: Vec<(ShardId, RoutedLink)> = parts
        .iter()
        .flat_map(|(shard, links)| links.iter().map(move |link| (*shard, *link)))
        .collect();
    tagged.sort_by_key(|(shard, link)| (*shard, link.seq));
    tagged.into_iter().map(|(_, link)| link).collect()
}

/// Partition one exchange's merged links by destination shard.
///
/// Index `k` of the result is the batch bound for shard `k` under
/// `plan`; each batch preserves the [`merge_outboxes`] order.
pub fn route_exchange(
    plan: &ShardPlan,
    parts: &[(ShardId, Vec<RoutedLink>)],
) -> Vec<Vec<RoutedLink>> {
    let mut batches: Vec<Vec<RoutedLink>> = (0..plan.shards()).map(|_| Vec::new()).collect();
    for link in merge_outboxes(parts) {
        batches[plan.shard_of(link.url.site).index()].push(link);
    }
    batches
}

/// Rebalance a fleet's shard states onto a new partition plan.
///
/// Every site whose owner changes under `plan` takes its full crawl state
/// with it: the stored pages (history, estimators, importance carried
/// verbatim), the AllUrls evidence, the scheduled queue entries, and the
/// assigned revisit intervals. `capacities` re-apportions the per-shard
/// collection capacity; a destination that ends over capacity evicts its
/// least-important pages, exactly as a ranking pass would.
///
/// `states[i]` is shard `i` both before and after the call — rebalancing
/// moves *sites*, not shard identities. The states must come from
/// incremental engines with drained outboxes (the fleet runs a final
/// exchange first), so no in-flight link can be stranded by the move.
pub fn rebalance_states(
    states: &mut [CrawlerState],
    plan: &ShardPlan,
    capacities: &[usize],
) -> Result<(), WebEvoError> {
    if plan.shards() as usize != states.len() || capacities.len() != states.len() {
        return Err(WebEvoError::InvalidState(format!(
            "rebalance needs one state and capacity per shard: plan has {}, got {} states and {} capacities",
            plan.shards(),
            states.len(),
            capacities.len()
        )));
    }
    for (i, state) in states.iter().enumerate() {
        if state.engine != EngineKind::Incremental {
            return Err(WebEvoError::InvalidState(format!(
                "shard {i} was written by the {} engine; rebalancing supports incremental shards only",
                state.engine
            )));
        }
        if !state.routing.outbox.is_empty() || !state.routing.inbox.is_empty() {
            return Err(WebEvoError::InvalidState(format!(
                "shard {i} has undelivered routed links; run an exchange before rebalancing"
            )));
        }
    }

    // Phase 1: every shard gives up what it no longer owns. Sources are
    // visited in shard order and each extraction ascends by page id, so
    // the per-destination buckets carry a total `(source shard, page)`
    // order — nothing depends on iteration accidents.
    let shards = states.len();
    let mut moving_pages: Vec<Vec<StoredPage>> = vec![Vec::new(); shards];
    let mut moving_intervals: Vec<Vec<(PageId, f64)>> = vec![Vec::new(); shards];
    let mut moving_urls: Vec<Vec<(Url, UrlInfo)>> = vec![Vec::new(); shards];
    let mut moving_queue: Vec<Vec<QueueEntry>> = vec![Vec::new(); shards];
    let mut moving_admissions: Vec<Vec<PageId>> = vec![Vec::new(); shards];
    for (i, state) in states.iter_mut().enumerate() {
        let departing = |site: SiteId| plan.shard_of(site).index() != i;
        // Partition pending admissions by site before the AllUrls slots
        // (the site lookup) move out.
        let mut retained_admissions = Vec::new();
        for page in std::mem::take(&mut state.admissions) {
            match state.all_urls.site_of(page) {
                Some(site) if departing(site) => {
                    moving_admissions[plan.shard_of(site).index()].push(page);
                }
                _ => retained_admissions.push(page),
            }
        }
        state.admissions = retained_admissions;
        for page in state.collection.extract_pages(departing) {
            let dest = plan.shard_of(page.url.site).index();
            if let Some(interval) = state.update.interval(page.url.page) {
                state.update.forget(page.url.page);
                moving_intervals[dest].push((page.url.page, interval));
            }
            moving_pages[dest].push(page);
        }
        for (url, info) in state.all_urls.extract_urls(departing) {
            moving_urls[plan.shard_of(url.site).index()].push((url, info));
        }
        let mut retained_queue = Vec::new();
        for entry in std::mem::take(&mut state.queue) {
            if departing(entry.url.site) {
                moving_queue[plan.shard_of(entry.url.site).index()].push(entry);
            } else {
                retained_queue.push(entry);
            }
        }
        state.queue = retained_queue;
    }

    // Phase 2: every shard absorbs its inheritance and restores its
    // invariants under the new scope.
    for (i, state) in states.iter_mut().enumerate() {
        for page in moving_pages[i].drain(..) {
            state.collection.absorb(page);
        }
        for (page, interval) in moving_intervals[i].drain(..) {
            state.update.set_interval(page, interval);
        }
        for (url, info) in moving_urls[i].drain(..) {
            state.all_urls.absorb(url, info);
        }
        state.queue.append(&mut moving_queue[i]);
        state.admissions.append(&mut moving_admissions[i]);

        // Trim to the re-apportioned capacity the way a ranking pass
        // would: least-important pages go first, deterministic tie-break.
        state.collection.set_capacity(capacities[i]);
        while state.collection.len() > capacities[i] {
            let victim = state.collection.least_important().expect("over-capacity is non-empty");
            let url = state.collection.discard(victim).expect("victim is stored").url;
            state.update.forget(victim);
            state.queue.retain(|e| e.url != url);
        }

        // Canonical orders: the queue sorts by (due, site, page) — the
        // snapshot order, which is also the rebuilt heap's pop order —
        // and the id sets ascend.
        state.queue.sort_by(|a, b| {
            f64::from_bits(a.due_bits)
                .partial_cmp(&f64::from_bits(b.due_bits))
                .expect("due times are never NaN")
                .then((a.url.site, a.url.page).cmp(&(b.url.site, b.url.page)))
        });
        state.queued = state.queue.iter().map(|e| e.url.page).collect();
        state.queued.sort_unstable();
        state.admissions.sort_unstable();
        match &mut state.config {
            EngineConfig::Incremental(config) => config.capacity = capacities[i],
            EngineConfig::Periodic(_) => unreachable!("engine kind checked above"),
        }
        state.routing.scope = Some(ShardScope { plan: *plan, shard: ShardId(i as u32) });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::ShardFn;

    fn link(seq: u64, site: u32, page: u64) -> RoutedLink {
        RoutedLink {
            seq,
            from: PageId(1000 + seq),
            url: Url::new(SiteId(site), PageId(page)),
        }
    }

    #[test]
    fn merge_is_shard_major_then_seq() {
        let parts = vec![
            (ShardId(2), vec![link(1, 0, 10), link(4, 1, 11)]),
            (ShardId(0), vec![link(7, 2, 12)]),
            (ShardId(1), vec![link(2, 3, 13), link(3, 0, 14)]),
        ];
        let merged = merge_outboxes(&parts);
        let order: Vec<(u64, u64)> = merged.iter().map(|l| (l.seq, l.url.page.0)).collect();
        assert_eq!(order, vec![(7, 12), (2, 13), (3, 14), (1, 10), (4, 11)]);
    }

    #[test]
    fn merge_is_independent_of_part_order() {
        let a = vec![
            (ShardId(0), vec![link(3, 5, 1)]),
            (ShardId(1), vec![link(1, 6, 2), link(2, 7, 3)]),
        ];
        let b: Vec<_> = a.iter().rev().cloned().collect();
        assert_eq!(merge_outboxes(&a), merge_outboxes(&b));
    }

    #[test]
    fn route_exchange_partitions_by_owner() {
        let plan = ShardPlan::new(ShardFn::Balanced, 2, 10);
        let parts = vec![
            (ShardId(0), vec![link(1, 1, 20), link(2, 2, 21)]),
            (ShardId(1), vec![link(1, 3, 22), link(5, 4, 23)]),
        ];
        let batches = route_exchange(&plan, &parts);
        assert_eq!(batches.len(), 2);
        // Balanced: even sites -> shard 0, odd -> shard 1.
        let to_0: Vec<u64> = batches[0].iter().map(|l| l.url.page.0).collect();
        let to_1: Vec<u64> = batches[1].iter().map(|l| l.url.page.0).collect();
        assert_eq!(to_0, vec![21, 23]);
        assert_eq!(to_1, vec![20, 22]);
    }

    #[test]
    fn route_exchange_yields_empty_batches_for_idle_shards() {
        let plan = ShardPlan::new(ShardFn::Balanced, 3, 9);
        let batches = route_exchange(&plan, &[(ShardId(0), vec![link(1, 1, 5)])]);
        assert_eq!(batches.len(), 3);
        assert!(batches[0].is_empty());
        assert_eq!(batches[1].len(), 1);
        assert!(batches[2].is_empty());
    }

    #[test]
    fn routing_state_roundtrips_binary() {
        let plan = ShardPlan::new(ShardFn::Hash, 4, 90);
        let state = RoutingState {
            scope: Some(ShardScope { plan, shard: ShardId(2) }),
            outbox: vec![link(9, 3, 30), link(11, 5, 31)],
            inbox: vec![Url::new(SiteId(8), PageId(40))],
            exchanges: 7,
        };
        let mut bytes = Vec::new();
        state.bin_encode(&mut bytes);
        let mut r = BinReader::new(&bytes);
        let back = RoutingState::bin_decode(&mut r).expect("decodes");
        assert!(r.is_exhausted());
        assert_eq!(state, back);
    }

    #[test]
    fn routing_state_roundtrips_serde() {
        let plan = ShardPlan::new(ShardFn::Balanced, 2, 12);
        let state = RoutingState {
            scope: Some(ShardScope { plan, shard: ShardId(1) }),
            outbox: vec![link(5, 2, 6)],
            inbox: vec![],
            exchanges: 3,
        };
        let back = RoutingState::from_value(&state.to_value()).expect("roundtrips");
        assert_eq!(state, back);
    }

    #[test]
    fn null_deserializes_to_inert_default() {
        // A pre-routing snapshot has no `routing` member at all; the
        // accessor hands us Null and that must mean "unsharded, empty".
        let state = RoutingState::from_value(&Value::Null).expect("null tolerated");
        assert_eq!(state, RoutingState::default());
        assert!(!state.is_foreign(SiteId(3)));
    }

    #[test]
    fn scope_decides_foreignness() {
        let plan = ShardPlan::new(ShardFn::Balanced, 2, 6);
        let state = RoutingState::scoped(plan, ShardId(0));
        assert!(!state.is_foreign(SiteId(2)));
        assert!(state.is_foreign(SiteId(3)));
    }

    #[test]
    fn wal_event_accessors_cover_both_kinds() {
        let batch = RoutedBatch { seq: 12, t: 3.5, links: vec![] };
        assert_eq!(WalEvent::Routed(batch).seq(), 12);
        let record = FetchRecord {
            seq: 4,
            url: Url::new(SiteId(0), PageId(1)),
            t: 1.25,
            result: Err(webevo_sim::FetchError::NotFound),
        };
        assert_eq!(WalEvent::Fetch(record.clone()).seq(), 4);
        assert_eq!(WalEvent::Fetch(record).t().to_bits(), 1.25f64.to_bits());
    }
}
