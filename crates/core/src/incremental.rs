//! The single-threaded incremental crawler engine — Algorithm 5.1 /
//! Figure 11 made concrete, deterministic, and instrumented.
//!
//! The engine is a discrete-event loop over *fetch slots*: a steady crawler
//! with budget `crawl_rate_per_day` performs one fetch every
//! `1/crawl_rate_per_day` days, continuously (§4's steady mode — low peak
//! load). Each slot:
//!
//! 1. runs the RankingModule and the UpdateModule's global reallocation if
//!    their period elapsed (the periodic, off-hot-path refinement of §5.3),
//! 2. pops the head of `CollUrls` (the most urgent URL),
//! 3. crawls it, updates the Collection / AllUrls, estimates its change
//!    rate, and pushes it back with its next due time.
//!
//! Ground truth (`WebUniverse`) is used **only** by the metrics sampler;
//! every crawl decision flows from checksums and link observations, as in
//! a real deployment.
//!
//! The engine is driven through the [`CrawlEngine`] trait
//! ([`CrawlEngine::drive`] starts and continues runs); applications go
//! through the `CrawlSession` builder in `webevo-store`.

use crate::allurls::AllUrls;
use crate::collection::Collection;
use crate::engine::{CrawlBudget, CrawlEngine, FetchSource};
use crate::hooks::{CrawlHook, FetchRecord, NoopHook};
use crate::metrics::CrawlMetrics;
use crate::modules::{
    CrawlModule, EstimatorKind, RankingConfig, RankingModule, RevisitStrategy, UpdateModule,
};
use crate::routing::{RoutedBatch, RoutedLink, RoutingState, ShardScope, WalEvent};
use crate::view::{BoundaryPages, ViewBoundary, ViewPublisher};
use crate::state::{
    entries_to_queue, queue_to_entries, CrawlerState, EngineClock, EngineConfig, EngineKind,
};
use serde::{Deserialize, Serialize};
use webevo_obs::{LogicalClock, ObsSink, SpanGuard, Stage};
use webevo_schedule::RevisitQueue;
use webevo_sim::{FetchError, Fetcher, FetcherState, WebUniverse};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{DenseSet, Url, WebEvoError};

/// Configuration of the incremental crawler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Collection capacity in pages (§5.2's fixed size).
    pub capacity: usize,
    /// Crawl budget in fetches per day (steady).
    pub crawl_rate_per_day: f64,
    /// Period of the RankingModule pass and the revisit reallocation.
    pub ranking_interval_days: f64,
    /// Revisit strategy (the §4.3 design axis).
    pub revisit: RevisitStrategy,
    /// Change-frequency estimator (§5.3).
    pub estimator: EstimatorKind,
    /// Observations retained per page history.
    pub history_window: usize,
    /// Metrics sampling period in days.
    pub sample_interval_days: f64,
    /// RankingModule tuning.
    pub ranking: RankingConfig,
}

impl IncrementalConfig {
    /// The paper's Table 2 budget (monthly revisit cycle, daily ranking),
    /// derived from [`CrawlBudget::paper_monthly`] — the one place that
    /// budget is defined.
    pub fn monthly(capacity: usize) -> IncrementalConfig {
        CrawlBudget::paper_monthly(capacity).incremental_config()
    }
}

impl BinEncode for IncrementalConfig {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.capacity.bin_encode(out);
        self.crawl_rate_per_day.bin_encode(out);
        self.ranking_interval_days.bin_encode(out);
        self.revisit.bin_encode(out);
        self.estimator.bin_encode(out);
        self.history_window.bin_encode(out);
        self.sample_interval_days.bin_encode(out);
        self.ranking.bin_encode(out);
    }
}

impl BinDecode for IncrementalConfig {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<IncrementalConfig, BinError> {
        Ok(IncrementalConfig {
            capacity: usize::bin_decode(r)?,
            crawl_rate_per_day: f64::bin_decode(r)?,
            ranking_interval_days: f64::bin_decode(r)?,
            revisit: crate::modules::RevisitStrategy::bin_decode(r)?,
            estimator: crate::modules::EstimatorKind::bin_decode(r)?,
            history_window: usize::bin_decode(r)?,
            sample_interval_days: f64::bin_decode(r)?,
            ranking: crate::modules::RankingConfig::bin_decode(r)?,
        })
    }
}

/// The incremental crawler (left-hand column of Figure 10).
pub struct IncrementalCrawler {
    config: IncrementalConfig,
    collection: Collection,
    all_urls: AllUrls,
    queue: RevisitQueue,
    queued: DenseSet,
    /// Pages the RankingModule proposed for admission; the eviction they
    /// pay for happens only when their crawl *succeeds* (Algorithm 5.1
    /// discards at crawl time, steps [7]-[9] — evicting at proposal time
    /// would leak slots whenever a candidate turns out dead).
    admissions: DenseSet,
    update: UpdateModule,
    ranking: RankingModule,
    crawl: CrawlModule,
    metrics: CrawlMetrics,
    run_start: f64,
    /// Discrete-event clock; lives on the struct (not the run loop) so a
    /// checkpoint can freeze it and a resumed engine continues mid-run.
    clock: EngineClock,
    /// Seed URLs injected (guards against double seeding on resume).
    seeded: bool,
    /// Fetch attempts issued; pairs with [`FetchRecord::seq`]. Routed
    /// batches consume numbers from the same counter, so the WAL is one
    /// totally-ordered event stream.
    fetch_seq: u64,
    /// Cross-shard routing: scope, outbox of foreign discoveries, and the
    /// applied-exchange counter. Inert (default) when unsharded.
    routing: RoutingState,
    /// Observability sink. Write-only and deliberately absent from
    /// [`CrawlerState`]: spans and counters describe the run, they never
    /// steer it, so a traced run stays byte-identical to an untraced one.
    obs: ObsSink,
    /// Serving-view publisher, fired at every pass boundary. Write-only
    /// and absent from [`CrawlerState`] for the same reason as `obs`: a
    /// served run stays byte-identical to an unserved one.
    publisher: Option<Box<dyn ViewPublisher>>,
}

impl IncrementalCrawler {
    /// Create a crawler.
    pub fn new(config: IncrementalConfig) -> IncrementalCrawler {
        assert!(config.crawl_rate_per_day > 0.0);
        assert!(config.ranking_interval_days > 0.0);
        assert!(config.sample_interval_days > 0.0);
        let default_interval = config.capacity as f64 / config.crawl_rate_per_day;
        IncrementalCrawler {
            collection: Collection::new(config.capacity, config.history_window),
            all_urls: AllUrls::new(),
            queue: RevisitQueue::new(),
            queued: DenseSet::new(),
            admissions: DenseSet::new(),
            update: UpdateModule::new(config.revisit, config.estimator, default_interval),
            ranking: RankingModule::new(config.ranking.clone()),
            crawl: CrawlModule::new(),
            metrics: CrawlMetrics::default(),
            run_start: 0.0,
            clock: EngineClock { t: 0.0, next_ranking: 0.0, next_sample: 0.0 },
            seeded: false,
            fetch_seq: 0,
            routing: RoutingState::default(),
            obs: ObsSink::noop(),
            publisher: None,
            config,
        }
    }

    /// Rebuild an engine from a checkpointed state. Returns the engine and
    /// the fetcher state the caller must install into its fetcher (via
    /// e.g. `SimFetcher::restore_state`) before replaying or resuming.
    pub fn from_state(
        state: CrawlerState,
    ) -> Result<(IncrementalCrawler, Option<FetcherState>), WebEvoError> {
        if state.engine != EngineKind::Incremental {
            return Err(WebEvoError::InvalidState(format!(
                "state was written by the {} engine, not the incremental one",
                state.engine
            )));
        }
        let config = state.config.as_incremental()?.clone();
        let crawler = IncrementalCrawler {
            collection: state.collection,
            all_urls: state.all_urls,
            queue: entries_to_queue(&state.queue),
            queued: state.queued.into_iter().collect(),
            admissions: state.admissions.into_iter().collect(),
            update: state.update,
            ranking: RankingModule::with_runs(config.ranking.clone(), state.ranking_runs),
            crawl: state.crawl,
            metrics: state.metrics,
            run_start: state.run_start,
            clock: state.clock,
            seeded: state.seeded,
            fetch_seq: state.fetch_seq,
            routing: state.routing,
            obs: ObsSink::noop(),
            publisher: None,
            config,
        };
        Ok((crawler, state.fetcher))
    }

    /// All discovered URLs (for inspection).
    pub fn all_urls(&self) -> &AllUrls {
        &self.all_urls
    }

    /// Ranking passes completed.
    pub fn ranking_runs(&self) -> u64 {
        self.ranking.runs()
    }

    fn enqueue(&mut self, url: Url, due: f64) {
        if self.queued.insert(url.page) {
            self.queue.push(url, due);
        }
    }

    fn enqueue_front(&mut self, url: Url) {
        if self.queued.insert(url.page) {
            self.queue.push_front(url);
        }
    }

    /// Start the run at the frozen clock: anchor the periodic activities
    /// and inject the seed URLs (§1's "initial set of URLs, called seed
    /// URLs"). Shared by [`CrawlEngine::drive`] on a fresh engine and by
    /// [`CrawlEngine::replay`] when the snapshot is a day-0 one (a run
    /// killed before its first cadence snapshot recovers from the initial
    /// snapshot that `webevo-store`'s `Checkpointer` writes at creation,
    /// plus the whole WAL).
    fn begin_run(&mut self, universe: &WebUniverse) {
        let start = self.clock.t;
        self.run_start = start;
        self.clock = EngineClock {
            t: start,
            next_ranking: start + self.config.ranking_interval_days,
            next_sample: start,
        };
        for site in universe.sites() {
            // A scoped (fleet-shard) engine seeds only the sites it owns;
            // foreign sites are other shards' seeds.
            if self.routing.is_foreign(site.id) {
                continue;
            }
            if let Some(root) = universe.occupant(site.id, 0, start) {
                let url = Url::new(site.id, root);
                self.all_urls.discover(url, start);
                self.enqueue(url, start);
            }
        }
        self.seeded = true;
    }

    /// Apply one routed-link delivery: the outbox the coordinator drained
    /// to build this exchange is cleared, each link enters `AllUrls` (and
    /// the frontier, collection permitting) exactly as a locally
    /// discovered link would, one sequence number is consumed, and the
    /// exchange counter advances. Shared by live injection and WAL
    /// replay, so a replayed shard is bit-identical to the live one.
    fn apply_routed(&mut self, batch: RoutedBatch) {
        self.routing.outbox.clear();
        self.fetch_seq = batch.seq;
        self.routing.exchanges += 1;
        let t = batch.t;
        for link in batch.links {
            let first_sighting = !self.all_urls.contains(link.url);
            self.all_urls.add_in_link(link.url, link.from, t);
            if !self.collection.is_full() && !self.collection.contains(link.url.page) {
                if first_sighting {
                    self.enqueue_front(link.url);
                } else {
                    self.enqueue(link.url, t);
                }
            }
        }
    }

    /// The discrete-event loop over fetch slots, shared by live runs and
    /// WAL replay. Stops at `end`, or — for replay sources — at log
    /// exhaustion; the exhaustion check sits *before* the boundary
    /// handlers so a resumed run re-enters at exactly the point the
    /// interrupted one left.
    fn advance(
        &mut self,
        universe: &WebUniverse,
        source: &mut FetchSource<'_>,
        end: f64,
        hook: &mut dyn CrawlHook,
    ) {
        let step = 1.0 / self.config.crawl_rate_per_day;
        // The open fetch-batch span, lazily started at the first fetch
        // after a boundary and closed (dropped) at the next one — so the
        // trace alternates fetch_batch / pass under the drive span.
        let mut fetch_span: Option<SpanGuard> = None;
        while self.clock.t < end {
            // Routed batches re-inject before anything else: live
            // injection happens while the engine is frozen *between*
            // drives, i.e. before the boundary handlers of the slot the
            // clock froze on. The seq/t match is exact — slot times are
            // multiples of `step` and batches record the frozen clock.
            if let Some(batch) = source.peek_routed() {
                if batch.t.to_bits() == self.clock.t.to_bits()
                    && batch.seq == self.fetch_seq + 1
                {
                    let batch = source.take_routed().expect("peeked a routed batch");
                    // A routed record marks the end of a live drive call,
                    // which closed by flushing samples through the
                    // exchange barrier — the ranking-cadence instant the
                    // coordinator drove to, which the frozen clock has
                    // just overshot. Reconstruct that flush (not a sample
                    // at the clock, which belongs to no live row) so the
                    // replayed series matches the interrupted one row for
                    // row.
                    let barrier = (self.routing.exchanges + 1) as f64
                        * self.config.ranking_interval_days;
                    self.flush_samples(universe, barrier);
                    self.apply_routed(batch);
                    continue;
                }
            }
            if source.exhausted() {
                break;
            }
            let t = self.clock.t;
            while t >= self.clock.next_sample {
                // Sample at the grid instant, not the slot that crossed
                // it: slot times depend on the crawl rate, and fleet
                // shards run at ownership-apportioned rates yet must
                // sample on one shared grid to merge (the periodic
                // engine pins its grid the same way).
                let ts = self.clock.next_sample;
                self.sample_metrics(universe, ts);
                self.clock.next_sample += self.config.sample_interval_days;
            }
            if t >= self.clock.next_ranking {
                fetch_span = None;
                let _pass = self.obs.span(Stage::Pass, LogicalClock::new(t, self.fetch_seq));
                self.obs.gauge("queue_depth", self.queue.len() as f64);
                self.run_ranking(t);
                // Advance the clock *before* the hook: a snapshot must
                // record this pass as done, or the restored engine would
                // run the boundary twice.
                self.clock.next_ranking += self.config.ranking_interval_days;
                if hook.active() {
                    // The export closure is lazy on purpose: most pass
                    // boundaries only flush the WAL, and neither the
                    // engine nor the fetcher state should be captured
                    // unless a snapshot is actually due.
                    let source = &*source;
                    hook.on_pass_boundary(t, &mut || {
                        let mut state = self.export_state();
                        state.fetcher = source.fetcher_state();
                        state
                    });
                }
                if let Some(publisher) = self.publisher.as_mut() {
                    let _swap =
                        self.obs.span(Stage::ViewSwap, LogicalClock::new(t, self.fetch_seq));
                    publisher.publish(ViewBoundary {
                        t,
                        fetch_seq: self.fetch_seq,
                        passes: self.ranking.runs(),
                        pages: BoundaryPages::Stored {
                            collection: &self.collection,
                            update: &self.update,
                        },
                        metrics: &self.metrics,
                    });
                }
            }
            let Some(visit) = self.queue.pop() else {
                // Nothing to crawl yet (collection empty and no
                // discoveries): burn the slot.
                self.clock.t += step;
                continue;
            };
            self.queued.remove(visit.url.page);
            if self.routing.is_foreign(visit.url.site) {
                // Residual foreign entry (only possible in a frontier
                // inherited from a pre-routing checkpoint): routed links,
                // not fetches, cross shard boundaries — drop it without
                // spending a fetch or touching the fetch accounting.
                self.clock.t += step;
                continue;
            }
            if self.obs.enabled() && fetch_span.is_none() {
                fetch_span =
                    Some(self.obs.span(Stage::FetchBatch, LogicalClock::new(t, self.fetch_seq)));
            }
            self.crawl_one(universe, source, visit.url, t, hook);
            self.clock.t += step;
        }
    }

    /// One fetch slot: crawl `url` at `t` and apply the result.
    fn crawl_one(
        &mut self,
        universe: &WebUniverse,
        source: &mut FetchSource<'_>,
        url: Url,
        t: f64,
        hook: &mut dyn CrawlHook,
    ) {
        self.fetch_seq += 1;
        let result = source.fetch(self.fetch_seq, url, t);
        self.crawl.observe(result.is_err());
        if hook.active() {
            hook.on_fetch(&FetchRecord { seq: self.fetch_seq, url, t, result: result.clone() });
        }
        match result {
            Ok(outcome) => {
                self.obs.add("fetch_ok_total", 1);
                self.metrics.record_fetch(true);
                let in_collection = self.collection.contains(url.page);
                if in_collection {
                    self.collection.update(url.page, outcome.checksum, outcome.links.clone(), t);
                } else {
                    let admitted = self.admissions.remove(url.page);
                    if self.collection.is_full() {
                        if !admitted {
                            // A stale growth-phase entry: the collection
                            // filled up since it was queued. Drop it; the
                            // RankingModule decides admissions now.
                            return;
                        }
                        // Algorithm 5.1 steps [7]-[8]: make room by
                        // discarding the least-important page, now that the
                        // replacement is in hand.
                        if let Some(victim) = self.collection.least_important() {
                            if let Some(stored) = self.collection.discard(victim) {
                                self.queue.remove(stored.url);
                                self.queued.remove(victim);
                                self.update.forget(victim);
                            }
                        }
                    }
                    self.collection.save(url, outcome.checksum, outcome.links.clone(), t);
                    let birth = universe.page(url.page).birth;
                    if birth >= self.run_start {
                        // Only pages born during the run measure "how fast
                        // do *new* pages reach users"; initial-fill pages
                        // would just measure the warm-up.
                        self.metrics.record_admission_latency(t - birth);
                        let found = self
                            .all_urls
                            .info(url)
                            .map(|i| i.discovered)
                            .unwrap_or(t);
                        self.metrics.record_discovery_latency(t - found);
                    }
                }
                // Forward discovered URLs to AllUrls (Algorithm 5.1 steps
                // [11]-[12]) with in-link evidence.
                for link in &outcome.links {
                    if self.routing.is_foreign(link.site) {
                        // Another shard owns this site: queue the sighting
                        // for the next fleet exchange instead of entering
                        // the local frontier. Every sighting is routed
                        // (no dedup), mirroring the per-sighting
                        // `add_in_link` evidence a single node collects.
                        self.routing.outbox.push(RoutedLink {
                            seq: self.fetch_seq,
                            from: url.page,
                            url: *link,
                        });
                        continue;
                    }
                    let first_sighting = !self.all_urls.contains(*link);
                    self.all_urls.add_in_link(*link, url.page, t);
                    // While the collection has room, brand-new URLs jump
                    // the queue (§5.3: the new page "is placed on the top
                    // of CollUrls, so that the UpdateModule can crawl the
                    // page immediately"). Once full, admission is the
                    // RankingModule's call.
                    if !self.collection.is_full() && !self.collection.contains(link.page) {
                        if first_sighting {
                            self.enqueue_front(*link);
                        } else {
                            self.enqueue(*link, t);
                        }
                    }
                }
                self.enqueue(url, self.update.next_due(url.page, t));
            }
            Err(FetchError::NotFound) => {
                self.obs.add("fetch_not_found_total", 1);
                self.metrics.record_fetch(false);
                self.all_urls.mark_dead(url, t);
                self.admissions.remove(url.page);
                if self.collection.discard(url.page).is_some() {
                    self.update.forget(url.page);
                }
                // The freed slot is refilled by the next ranking pass.
            }
            Err(FetchError::Transient) => {
                self.obs.add("fetch_transient_total", 1);
                self.metrics.record_fetch(false);
                // Retry with a small backoff.
                self.enqueue(url, t + 0.25);
            }
            Err(FetchError::RateLimited { retry_at }) => {
                self.obs.add("fetch_rate_limited_total", 1);
                self.enqueue(url, retry_at.max(t + 0.01));
            }
        }
    }

    /// Periodic refinement: ranking pass + revisit reallocation.
    ///
    /// Replacement proposals only *schedule* the candidate (at the queue
    /// front, per §5.3); the matching eviction happens when the candidate's
    /// crawl succeeds, so dead candidates never cost a slot.
    fn run_ranking(&mut self, _t: f64) {
        let outcome = self.ranking.run(&mut self.collection, &self.all_urls);
        for (_victim, admit) in outcome.replacements {
            self.admissions.insert(admit.page);
            self.enqueue_front(admit);
        }
        self.update
            .reallocate(&self.collection, self.config.crawl_rate_per_day);
    }

    /// Evaluation-only: freshness and mean age of the collection against
    /// ground truth.
    fn sample_metrics(&mut self, universe: &WebUniverse, t: f64) {
        if self.collection.is_empty() {
            self.metrics.sample(t, 0.0, 0.0);
            return;
        }
        let mut fresh = 0usize;
        let mut age_sum = 0.0;
        let n = self.collection.len();
        for (p, stored) in self.collection.iter() {
            if universe.copy_is_fresh(p, stored.last_crawl, t) {
                fresh += 1;
            } else {
                let page = universe.page(p);
                let staled_at = universe
                    .first_change_after(p, stored.last_crawl)
                    .unwrap_or(page.death)
                    .min(page.death);
                age_sum += (t - staled_at).max(0.0);
            }
        }
        self.metrics.sample(t, fresh as f64 / n as f64, age_sum / n as f64);
    }

    /// Emit every pending grid sample up to `until`, then the closing
    /// sample at `until` itself (a no-op when `until` sits on the grid —
    /// [`CrawlMetrics::sample`] dedups the identical instant). Every
    /// drive boundary flushes through here, so the sampled instants are a
    /// pure function of the drive horizons and the sampling cadence —
    /// never of the crawl rate, whose slot times vary per fleet shard.
    fn flush_samples(&mut self, universe: &WebUniverse, until: f64) {
        while self.clock.next_sample <= until {
            let ts = self.clock.next_sample;
            self.sample_metrics(universe, ts);
            self.clock.next_sample += self.config.sample_interval_days;
        }
        self.sample_metrics(universe, until);
    }
}

impl CrawlEngine for IncrementalCrawler {
    fn kind(&self) -> EngineKind {
        EngineKind::Incremental
    }

    fn started(&self) -> bool {
        self.seeded
    }

    fn clock(&self) -> EngineClock {
        self.clock
    }

    /// Advance to day `until`. The first call starts the run at day 0 and
    /// injects the seed URLs (§1's "initial set of URLs, called seed
    /// URLs"); later calls continue from the frozen clock — including
    /// after a checkpoint restore, where the continuation is
    /// bit-identical to a never-interrupted run (`tests/determinism.rs`).
    ///
    /// Each call closes with a metrics sample at `until`. When `until`
    /// sits on the sampling grid — as every fleet exchange barrier does —
    /// the closing sample collapses into the grid sample at the same
    /// instant (`CrawlMetrics::sample` dedups identical instants), so
    /// segmented drives, single long drives, and the checkpoint-recovery
    /// path (restore + replay + drive) all produce the same series; a
    /// continued in-memory run carries one extra row only at an off-grid
    /// intermediate horizon.
    fn drive(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        hook: &mut dyn CrawlHook,
        until: f64,
    ) -> Result<&CrawlMetrics, WebEvoError> {
        if !self.seeded {
            if until <= self.clock.t {
                return Err(WebEvoError::InvalidState(format!(
                    "drive target {until} must lie beyond the start day {}",
                    self.clock.t
                )));
            }
            self.begin_run(universe);
        } else if until <= self.clock.t {
            return Err(WebEvoError::InvalidState(format!(
                "drive target {until} must lie beyond the engine clock {}",
                self.clock.t
            )));
        }
        self.metrics.observe_speed(self.config.crawl_rate_per_day);
        let _drive = self.obs.span(Stage::Drive, LogicalClock::new(self.clock.t, self.fetch_seq));
        self.advance(universe, &mut FetchSource::Live(fetcher), until, hook);
        self.flush_samples(universe, until);
        Ok(&self.metrics)
    }

    /// Re-apply the write-ahead-log tail after restoring a snapshot:
    /// records already covered by the snapshot (seq ≤ the restored
    /// `fetch_seq`) are skipped, the rest drive the normal slot loop with
    /// logged outcomes instead of live fetches. Afterwards the engine (and
    /// `fetcher`, advanced via [`Fetcher::observe_replay`]) sit at the
    /// exact state of the last flushed pass boundary; call
    /// [`CrawlEngine::drive`] to continue crawling for real.
    fn replay(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        events: &[WalEvent],
    ) -> Result<(), WebEvoError> {
        if !self.seeded {
            // A day-0 snapshot: the run died before its first cadence
            // snapshot. An empty tail means nothing ever hit the log;
            // otherwise the log necessarily starts at seq 1, so the replay
            // *is* the run from the top — start it exactly as drive would.
            if events.is_empty() {
                return Ok(());
            }
            self.begin_run(universe);
        }
        let skip = events.partition_point(|e| e.seq() <= self.fetch_seq);
        let tail = &events[skip..];
        if let Some(first) = tail.first() {
            if first.seq() != self.fetch_seq + 1 {
                return Err(WebEvoError::InvalidState(format!(
                    "WAL gap: snapshot ends at seq {} but the log resumes at {}",
                    self.fetch_seq,
                    first.seq()
                )));
            }
        }
        let mut source = FetchSource::Replay { events: tail, pos: 0, fetcher };
        // The log is finite and each non-idle slot consumes one record, so
        // the unbounded horizon is only ever reached by exhaustion.
        self.advance(universe, &mut source, f64::INFINITY, &mut NoopHook);
        Ok(())
    }

    /// Capture the full engine state (fetcher state excluded; the
    /// checkpoint layer merges it in, since only the run loop can reach
    /// the fetcher).
    fn export_state(&self) -> CrawlerState {
        CrawlerState {
            engine: EngineKind::Incremental,
            config: EngineConfig::Incremental(self.config.clone()),
            run_start: self.run_start,
            seeded: self.seeded,
            clock: self.clock,
            fetch_seq: self.fetch_seq,
            collection: self.collection.clone(),
            all_urls: self.all_urls.clone(),
            queue: queue_to_entries(&self.queue),
            queued: self.queued.to_vec(),
            admissions: self.admissions.to_vec(),
            update: self.update.clone(),
            ranking_runs: self.ranking.runs(),
            ranking_applied: 0,
            rank_pending: false,
            crawl: self.crawl.clone(),
            periodic: None,
            metrics: self.metrics.clone(),
            fetcher: None,
            routing: self.routing.clone(),
        }
    }

    fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    fn collection(&self) -> Option<&Collection> {
        Some(&self.collection)
    }

    fn collection_len(&self) -> usize {
        self.collection.len()
    }

    fn passes(&self) -> u64 {
        self.ranking.runs()
    }

    fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    fn set_view_publisher(&mut self, publisher: Box<dyn ViewPublisher>) {
        self.publisher = Some(publisher);
    }

    fn set_scope(&mut self, scope: ShardScope) -> Result<(), WebEvoError> {
        if self.seeded {
            return Err(WebEvoError::InvalidState(
                "shard scope must be set before the run starts".into(),
            ));
        }
        self.routing.scope = Some(scope);
        Ok(())
    }

    fn routing(&self) -> Option<&RoutingState> {
        Some(&self.routing)
    }

    fn inject_links(&mut self, links: Vec<RoutedLink>) -> Result<RoutedBatch, WebEvoError> {
        if !self.seeded {
            return Err(WebEvoError::InvalidState(
                "cannot inject routed links before the run starts".into(),
            ));
        }
        let batch = RoutedBatch { seq: self.fetch_seq + 1, t: self.clock.t, links };
        self.apply_routed(batch.clone());
        Ok(batch)
    }

    fn close_sample(&mut self, universe: &WebUniverse, t: f64) {
        if self.seeded {
            self.flush_samples(universe, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::collection_quality;
    use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};

    fn universe() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(77))
    }

    fn config(capacity: usize) -> IncrementalConfig {
        IncrementalConfig {
            capacity,
            crawl_rate_per_day: capacity as f64 / 5.0, // 5-day cycles: fast tests
            ranking_interval_days: 2.0,
            revisit: RevisitStrategy::Uniform,
            estimator: EstimatorKind::Ep,
            history_window: 100,
            sample_interval_days: 1.0,
            ranking: RankingConfig::default(),
        }
    }

    fn run(crawler: &mut IncrementalCrawler, u: &WebUniverse, f: &mut SimFetcher, days: f64) {
        crawler.drive(u, f, &mut NoopHook, days).expect("drive succeeds");
    }

    #[test]
    fn fills_collection_and_stays_fresh() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = IncrementalCrawler::new(config(60));
        run(&mut crawler, &u, &mut fetcher, 60.0);
        assert!(
            crawler.collection_len() >= 55,
            "collection should fill: {}",
            crawler.collection_len()
        );
        let f = crawler.metrics().average_freshness_from(20.0);
        // Calibration: the analytic per-page ceiling for this universe's
        // rate mixture at a 5-day cycle is ~0.62; the engine also spends
        // budget on discovery and carries churned pages until ranking
        // evicts them, landing near 0.49 at this seed.
        assert!(f > 0.45, "steady-state freshness too low: {f}");
        assert!(crawler.ranking_runs() >= 20);
    }

    #[test]
    fn discovers_beyond_seeds() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = IncrementalCrawler::new(config(40));
        run(&mut crawler, &u, &mut fetcher, 30.0);
        assert!(
            crawler.all_urls().len() > u.site_count(),
            "link extraction should discover non-seed URLs"
        );
    }

    #[test]
    fn dead_pages_are_evicted_and_replaced() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = IncrementalCrawler::new(config(50));
        run(&mut crawler, &u, &mut fetcher, 100.0);
        // After 100 days of churn, every stored page must still be alive
        // recently (dead ones evicted on NotFound).
        let mut stale_dead = 0;
        for (p, stored) in crawler.collection().expect("incremental has one").iter() {
            if !u.alive(p, 100.0) && (100.0 - stored.last_crawl) > 10.0 {
                stale_dead += 1;
            }
        }
        assert!(
            stale_dead <= crawler.collection_len() / 5,
            "too many dead pages lingering: {stale_dead}"
        );
    }

    #[test]
    fn new_page_latency_is_recorded() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = IncrementalCrawler::new(config(50));
        run(&mut crawler, &u, &mut fetcher, 60.0);
        assert!(crawler.metrics().new_page_latency.count() > 10);
        assert!(crawler.metrics().new_page_latency.mean() >= 0.0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let u = universe();
        let run_once = || {
            let mut fetcher = SimFetcher::new(&u);
            let mut crawler = IncrementalCrawler::new(config(40));
            run(&mut crawler, &u, &mut fetcher, 40.0);
            (
                crawler.collection_len(),
                crawler.metrics().fetches,
                crawler.metrics().freshness.values().to_vec(),
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn survives_transient_failures() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u).with_failure_rate(0.2);
        let mut crawler = IncrementalCrawler::new(config(50));
        run(&mut crawler, &u, &mut fetcher, 60.0);
        assert!(crawler.metrics().failed_fetches > 0);
        assert!(
            crawler.collection_len() >= 40,
            "collection should still fill under failures: {}",
            crawler.collection_len()
        );
        let f = crawler.metrics().average_freshness_from(30.0);
        assert!(f > 0.4, "freshness under failures: {f}");
    }

    #[test]
    fn quality_is_meaningful() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut crawler = IncrementalCrawler::new(config(30));
        run(&mut crawler, &u, &mut fetcher, 60.0);
        let q = collection_quality(crawler.collection().expect("has one"), &u, 60.0);
        assert!(q > 0.2 && q <= 1.0 + 1e-9, "quality={q}");
    }

    #[test]
    fn optimal_strategy_runs_end_to_end() {
        let u = universe();
        let mut fetcher = SimFetcher::new(&u);
        let mut cfg = config(50);
        cfg.revisit = RevisitStrategy::Optimal;
        cfg.estimator = EstimatorKind::Eb;
        let mut crawler = IncrementalCrawler::new(cfg);
        run(&mut crawler, &u, &mut fetcher, 80.0);
        let f = crawler.metrics().average_freshness_from(40.0);
        assert!(f > 0.38, "optimal steady-state freshness: {f}");

        // The paper's §4.3 claim is comparative: the optimal allocation
        // must clearly beat the proportional trap under the same
        // (noisy, estimated) rates — absolute freshness depends on the
        // universe's rate mixture, which is heavy-tailed here.
        let mut prop_cfg = config(50);
        prop_cfg.revisit = RevisitStrategy::Proportional;
        prop_cfg.estimator = EstimatorKind::Eb;
        let mut prop_fetcher = SimFetcher::new(&u);
        let mut prop = IncrementalCrawler::new(prop_cfg);
        run(&mut prop, &u, &mut prop_fetcher, 80.0);
        let f_prop = prop.metrics().average_freshness_from(40.0);
        assert!(f > f_prop, "optimal {f} should beat proportional {f_prop}");
    }
}
