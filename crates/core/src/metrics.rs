//! Crawl-quality instrumentation against simulator ground truth.
//!
//! The evaluation layer — *not* part of the crawler (a real crawler cannot
//! measure its own freshness; §4 needs the Poisson model for exactly that
//! reason). The engines call [`CrawlMetrics::sample`] on a fixed cadence
//! and record admission events; the summaries feed Figure 10's comparison
//! and the crawler-architecture benches.

use serde::{Deserialize, Serialize};
use webevo_freshness::FreshnessSeries;
use webevo_stats::Summary;
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::WebEvoError;

/// Metrics collected over one crawler run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CrawlMetrics {
    /// Freshness of the user-visible collection over time.
    pub freshness: FreshnessSeries,
    /// Mean age (days) of the user-visible collection over time.
    pub age: FreshnessSeriesLike,
    /// Latency from page birth to first availability in the user-visible
    /// collection, per admitted page (dominated by discovery physics:
    /// how soon some crawled page links to the newcomer).
    pub new_page_latency: Summary,
    /// Latency from *discovery* (URL first seen by the crawler) to first
    /// availability — the paper's §1 claim is about exactly this: "the
    /// incremental crawler may immediately index the new page, right
    /// after it is found", while the periodic crawler sits on found pages
    /// until the swap.
    pub discovery_latency: Summary,
    /// Total fetches issued.
    pub fetches: u64,
    /// Fetches that failed (NotFound or Transient).
    pub failed_fetches: u64,
    /// Peak crawl speed observed (fetches/day, over the sampling interval).
    pub peak_speed: f64,
}

/// A time series like [`FreshnessSeries`] but without the `[0,1]` bound
/// (ages are unbounded).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FreshnessSeriesLike {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl FreshnessSeriesLike {
    /// Append a sample (times must be non-decreasing).
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "samples must be time-ordered");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Trapezoidal time average.
    pub fn time_average(&self) -> f64 {
        if self.times.len() < 2 {
            return self.values.first().copied().unwrap_or(0.0);
        }
        let mut area = 0.0;
        for i in 1..self.times.len() {
            area += (self.times[i] - self.times[i - 1])
                * (self.values[i] + self.values[i - 1])
                / 2.0;
        }
        let span = self.times.last().unwrap() - self.times.first().unwrap();
        if span > 0.0 {
            area / span
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Raw rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }
}

impl CrawlMetrics {
    /// Record one sampling instant: collection freshness and mean age.
    ///
    /// Sampling the same instant twice collapses to one row. Both the
    /// per-day sampling grid and a drive call's closing sample can land on
    /// the same `t` — the engine is frozen in between, so the collection
    /// (and therefore the sampled values) cannot have changed — and a
    /// fleet resume may reconstruct only one of the two. Dedup keeps the
    /// series a pure function of `(state, t)`, bitwise identical across
    /// run/kill/resume paths.
    pub fn sample(&mut self, t: f64, freshness: f64, mean_age: f64) {
        if self.freshness.times().last().map(|last| last.to_bits()) == Some(t.to_bits()) {
            return;
        }
        self.freshness.push(t, freshness);
        self.age.push(t, mean_age);
    }

    /// Record a page becoming visible to users `latency` days after its
    /// birth.
    pub fn record_admission_latency(&mut self, latency: f64) {
        // Pages born before the run started would report negative latency;
        // clamp at zero (they were available "immediately" relative to
        // their discoverable life).
        self.new_page_latency.record(latency.max(0.0));
    }

    /// Record a page becoming visible `latency` days after the crawler
    /// first learned of its URL.
    pub fn record_discovery_latency(&mut self, latency: f64) {
        self.discovery_latency.record(latency.max(0.0));
    }

    /// Record fetch accounting.
    pub fn record_fetch(&mut self, ok: bool) {
        self.fetches += 1;
        if !ok {
            self.failed_fetches += 1;
        }
    }

    /// Update the observed peak speed.
    pub fn observe_speed(&mut self, fetches_per_day: f64) {
        if fetches_per_day > self.peak_speed {
            self.peak_speed = fetches_per_day;
        }
    }

    /// Time-averaged freshness after `start` (skip warm-up).
    pub fn average_freshness_from(&self, start: f64) -> f64 {
        self.freshness.time_average_from(start)
    }

    /// Merge shard-level metrics into one fleet-level view. `parts` pairs
    /// each shard's metrics with its weight (its collection capacity —
    /// the nominal share of the fleet's pages), **in ascending shard
    /// order**: the fold order is part of the determinism contract, so
    /// the merged floats are byte-identical no matter how the shards were
    /// scheduled onto worker threads.
    ///
    /// Semantics per channel:
    ///
    /// * `freshness` / `age`: the weighted mean at each sampling instant.
    ///   All parts must have sampled at *identical* times (shards in a
    ///   fleet share one sampling grid by construction); a mismatch is a
    ///   typed error, never a silent re-interpolation. With capacity
    ///   weights the pooled value is exact once every part's collection
    ///   is full (the steady state the paper evaluates); while a part is
    ///   still filling, its samples average over fewer pages than its
    ///   weight asserts, so the merged warm-up ramp is an approximation —
    ///   per-sample collection sizes are not part of the durable metrics
    ///   state, deliberately.
    /// * latency summaries: exact parallel Welford combination
    ///   ([`Summary::merge`]).
    /// * `fetches` / `failed_fetches`: sums.
    /// * `peak_speed`: the sum of per-shard peaks — the fleet's aggregate
    ///   crawl capability, since shards fetch concurrently.
    pub fn merge_weighted(parts: &[(f64, &CrawlMetrics)]) -> Result<CrawlMetrics, WebEvoError> {
        let mut merged = CrawlMetrics::default();
        let Some((_, first)) = parts.first() else {
            return Ok(merged);
        };
        let total_weight: f64 = parts.iter().map(|(w, _)| *w).sum();
        if total_weight.is_nan() || total_weight <= 0.0 {
            return Err(WebEvoError::invalid(format!(
                "metrics merge needs a positive total weight, got {total_weight}"
            )));
        }
        for (i, (_, part)) in parts.iter().enumerate() {
            if part.freshness.times() != first.freshness.times()
                || part.age.times != first.age.times
            {
                return Err(WebEvoError::InvalidState(format!(
                    "metrics merge: part {i} sampled on a different time grid than part 0 \
                     ({} vs {} freshness samples); fleet shards must share one sampling \
                     cadence and horizon",
                    part.freshness.len(),
                    first.freshness.len()
                )));
            }
        }
        for (row, &t) in first.freshness.times().iter().enumerate() {
            let mut fresh = 0.0;
            let mut age = 0.0;
            for (w, part) in parts {
                fresh += w * part.freshness.values()[row];
                age += w * part.age.values[row];
            }
            merged.sample(t, fresh / total_weight, age / total_weight);
        }
        for (_, part) in parts {
            merged.new_page_latency.merge(&part.new_page_latency);
            merged.discovery_latency.merge(&part.discovery_latency);
            merged.fetches += part.fetches;
            merged.failed_fetches += part.failed_fetches;
            merged.peak_speed += part.peak_speed;
        }
        Ok(merged)
    }

    /// Render the standard crawl-quality report as a table: one labelled
    /// column per metric set, one row per summary channel (freshness
    /// averaged from `warmup_days` on, copy age, visibility latencies,
    /// peak speed, fetch totals). This is *the* freshness/age table — the
    /// `repro crawlers` target, the examples, and [`CrawlMetrics`]'s own
    /// [`std::fmt::Display`] all print through it, so the report stays
    /// consistent everywhere.
    pub fn comparison_table(columns: &[(&str, &CrawlMetrics)], warmup_days: f64) -> String {
        use std::fmt::Write as _;
        fn row(out: &mut String, name: &str, values: impl Iterator<Item = String>) {
            let _ = write!(out, "{name:<34}");
            for value in values {
                let _ = write!(out, "{value:>13}");
            }
            let _ = writeln!(out);
        }
        let mut out = String::new();
        row(&mut out, "metric", columns.iter().map(|(label, _)| label.to_string()));
        row(
            &mut out,
            "avg freshness (post-warmup)",
            columns
                .iter()
                .map(|(_, m)| format!("{:.3}", m.average_freshness_from(warmup_days))),
        );
        row(
            &mut out,
            "avg copy age (days)",
            columns.iter().map(|(_, m)| format!("{:.2}", m.age.time_average())),
        );
        row(
            &mut out,
            "found->visible latency (days)",
            columns.iter().map(|(_, m)| format!("{:.2}", m.discovery_latency.mean())),
        );
        row(
            &mut out,
            "birth->visible latency (days)",
            columns.iter().map(|(_, m)| format!("{:.2}", m.new_page_latency.mean())),
        );
        row(
            &mut out,
            "peak crawl speed (pages/day)",
            columns.iter().map(|(_, m)| format!("{:.1}", m.peak_speed)),
        );
        row(&mut out, "total fetches", columns.iter().map(|(_, m)| m.fetches.to_string()));
        out
    }
}

impl std::fmt::Display for CrawlMetrics {
    /// The single-column report table (no warm-up cut: freshness averages
    /// over the whole run).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&CrawlMetrics::comparison_table(&[("value", self)], 0.0))
    }
}

impl BinEncode for FreshnessSeriesLike {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.times.bin_encode(out);
        self.values.bin_encode(out);
    }
}

impl BinDecode for FreshnessSeriesLike {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FreshnessSeriesLike, BinError> {
        let times = Vec::<f64>::bin_decode(r)?;
        let values = Vec::<f64>::bin_decode(r)?;
        if times.len() != values.len() {
            return Err(BinError::new("age series times/values length mismatch"));
        }
        Ok(FreshnessSeriesLike { times, values })
    }
}

// `Summary` is a webevo-stats type, so its wire form lives here with the
// only consumer, via the raw-parts accessors.
fn encode_summary(summary: &Summary, out: &mut Vec<u8>) {
    let (n, mean, m2, min, max) = summary.raw_parts();
    n.bin_encode(out);
    mean.bin_encode(out);
    m2.bin_encode(out);
    min.bin_encode(out);
    max.bin_encode(out);
}

fn decode_summary(r: &mut BinReader<'_>) -> Result<Summary, BinError> {
    Ok(Summary::from_raw_parts(
        u64::bin_decode(r)?,
        f64::bin_decode(r)?,
        f64::bin_decode(r)?,
        f64::bin_decode(r)?,
        f64::bin_decode(r)?,
    ))
}

impl BinEncode for CrawlMetrics {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.freshness.bin_encode(out);
        self.age.bin_encode(out);
        encode_summary(&self.new_page_latency, out);
        encode_summary(&self.discovery_latency, out);
        self.fetches.bin_encode(out);
        self.failed_fetches.bin_encode(out);
        self.peak_speed.bin_encode(out);
    }
}

impl BinDecode for CrawlMetrics {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<CrawlMetrics, BinError> {
        Ok(CrawlMetrics {
            freshness: FreshnessSeries::bin_decode(r)?,
            age: FreshnessSeriesLike::bin_decode(r)?,
            new_page_latency: decode_summary(r)?,
            discovery_latency: decode_summary(r)?,
            fetches: u64::bin_decode(r)?,
            failed_fetches: u64::bin_decode(r)?,
            peak_speed: f64::bin_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let mut m = CrawlMetrics::default();
        m.sample(0.0, 0.5, 1.0);
        m.sample(10.0, 0.9, 0.5);
        m.record_fetch(true);
        m.record_fetch(false);
        m.record_admission_latency(3.0);
        m.record_admission_latency(-2.0);
        m.observe_speed(40.0);
        m.observe_speed(10.0);
        assert_eq!(m.fetches, 2);
        assert_eq!(m.failed_fetches, 1);
        assert_eq!(m.peak_speed, 40.0);
        assert!((m.freshness.time_average() - 0.7).abs() < 1e-12);
        assert!((m.age.time_average() - 0.75).abs() < 1e-12);
        assert_eq!(m.new_page_latency.count(), 2);
        assert_eq!(m.new_page_latency.min(), 0.0, "negative latency clamped");
    }

    #[test]
    fn merge_weighted_pools_channels() {
        let mut a = CrawlMetrics::default();
        a.sample(0.0, 1.0, 0.0);
        a.sample(5.0, 0.5, 2.0);
        a.record_fetch(true);
        a.record_admission_latency(4.0);
        a.observe_speed(10.0);
        let mut b = CrawlMetrics::default();
        b.sample(0.0, 0.0, 4.0);
        b.sample(5.0, 1.0, 0.0);
        b.record_fetch(false);
        b.record_fetch(true);
        b.record_admission_latency(8.0);
        b.observe_speed(30.0);
        // Weights 1:3 — the second part dominates the pooled series.
        let merged = CrawlMetrics::merge_weighted(&[(1.0, &a), (3.0, &b)]).expect("merges");
        let rows: Vec<(f64, f64)> = merged.freshness.rows().collect();
        assert_eq!(rows, vec![(0.0, 0.25), (5.0, 0.875)]);
        let ages: Vec<(f64, f64)> = merged.age.rows().collect();
        assert_eq!(ages, vec![(0.0, 3.0), (5.0, 0.5)]);
        assert_eq!(merged.fetches, 3);
        assert_eq!(merged.failed_fetches, 1);
        assert_eq!(merged.peak_speed, 40.0, "fleet peak is the concurrent sum");
        assert_eq!(merged.new_page_latency.count(), 2);
        assert!((merged.new_page_latency.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_table_and_display_share_one_format() {
        let mut a = CrawlMetrics::default();
        a.sample(0.0, 1.0, 0.0);
        a.sample(10.0, 0.5, 2.0);
        a.record_fetch(true);
        a.observe_speed(25.0);
        let mut b = CrawlMetrics::default();
        b.sample(0.0, 0.2, 5.0);
        b.sample(10.0, 0.2, 5.0);
        let table = CrawlMetrics::comparison_table(&[("inc", &a), ("per", &b)], 0.0);
        let header = table.lines().next().unwrap();
        assert!(header.contains("inc") && header.contains("per"));
        assert!(table.contains("avg freshness (post-warmup)"));
        assert!(table.contains("peak crawl speed (pages/day)"));
        assert!(table.contains("total fetches"));
        assert_eq!(table.lines().count(), 7);
        // Display is the one-column variant of the same table.
        let shown = format!("{a}");
        assert!(shown.contains("value"));
        assert!(shown.contains("0.750"), "whole-run freshness average: {shown}");
    }

    #[test]
    fn merge_weighted_rejects_grid_mismatch_and_empty_weight() {
        let mut a = CrawlMetrics::default();
        a.sample(0.0, 0.5, 1.0);
        let mut b = CrawlMetrics::default();
        b.sample(1.0, 0.5, 1.0);
        assert!(CrawlMetrics::merge_weighted(&[(1.0, &a), (1.0, &b)]).is_err());
        assert!(CrawlMetrics::merge_weighted(&[(0.0, &a)]).is_err());
        let empty = CrawlMetrics::merge_weighted(&[]).expect("empty merge is empty metrics");
        assert_eq!(empty.fetches, 0);
    }
}
