//! Crawl-quality instrumentation against simulator ground truth.
//!
//! The evaluation layer — *not* part of the crawler (a real crawler cannot
//! measure its own freshness; §4 needs the Poisson model for exactly that
//! reason). The engines call [`CrawlMetrics::sample`] on a fixed cadence
//! and record admission events; the summaries feed Figure 10's comparison
//! and the crawler-architecture benches.

use serde::{Deserialize, Serialize};
use webevo_freshness::FreshnessSeries;
use webevo_stats::Summary;
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};

/// Metrics collected over one crawler run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CrawlMetrics {
    /// Freshness of the user-visible collection over time.
    pub freshness: FreshnessSeries,
    /// Mean age (days) of the user-visible collection over time.
    pub age: FreshnessSeriesLike,
    /// Latency from page birth to first availability in the user-visible
    /// collection, per admitted page (dominated by discovery physics:
    /// how soon some crawled page links to the newcomer).
    pub new_page_latency: Summary,
    /// Latency from *discovery* (URL first seen by the crawler) to first
    /// availability — the paper's §1 claim is about exactly this: "the
    /// incremental crawler may immediately index the new page, right
    /// after it is found", while the periodic crawler sits on found pages
    /// until the swap.
    pub discovery_latency: Summary,
    /// Total fetches issued.
    pub fetches: u64,
    /// Fetches that failed (NotFound or Transient).
    pub failed_fetches: u64,
    /// Peak crawl speed observed (fetches/day, over the sampling interval).
    pub peak_speed: f64,
}

/// A time series like [`FreshnessSeries`] but without the `[0,1]` bound
/// (ages are unbounded).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FreshnessSeriesLike {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl FreshnessSeriesLike {
    /// Append a sample (times must be non-decreasing).
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "samples must be time-ordered");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Trapezoidal time average.
    pub fn time_average(&self) -> f64 {
        if self.times.len() < 2 {
            return self.values.first().copied().unwrap_or(0.0);
        }
        let mut area = 0.0;
        for i in 1..self.times.len() {
            area += (self.times[i] - self.times[i - 1])
                * (self.values[i] + self.values[i - 1])
                / 2.0;
        }
        let span = self.times.last().unwrap() - self.times.first().unwrap();
        if span > 0.0 {
            area / span
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Raw rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }
}

impl CrawlMetrics {
    /// Record one sampling instant: collection freshness and mean age.
    pub fn sample(&mut self, t: f64, freshness: f64, mean_age: f64) {
        self.freshness.push(t, freshness);
        self.age.push(t, mean_age);
    }

    /// Record a page becoming visible to users `latency` days after its
    /// birth.
    pub fn record_admission_latency(&mut self, latency: f64) {
        // Pages born before the run started would report negative latency;
        // clamp at zero (they were available "immediately" relative to
        // their discoverable life).
        self.new_page_latency.record(latency.max(0.0));
    }

    /// Record a page becoming visible `latency` days after the crawler
    /// first learned of its URL.
    pub fn record_discovery_latency(&mut self, latency: f64) {
        self.discovery_latency.record(latency.max(0.0));
    }

    /// Record fetch accounting.
    pub fn record_fetch(&mut self, ok: bool) {
        self.fetches += 1;
        if !ok {
            self.failed_fetches += 1;
        }
    }

    /// Update the observed peak speed.
    pub fn observe_speed(&mut self, fetches_per_day: f64) {
        if fetches_per_day > self.peak_speed {
            self.peak_speed = fetches_per_day;
        }
    }

    /// Time-averaged freshness after `start` (skip warm-up).
    pub fn average_freshness_from(&self, start: f64) -> f64 {
        self.freshness.time_average_from(start)
    }
}

impl BinEncode for FreshnessSeriesLike {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.times.bin_encode(out);
        self.values.bin_encode(out);
    }
}

impl BinDecode for FreshnessSeriesLike {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FreshnessSeriesLike, BinError> {
        let times = Vec::<f64>::bin_decode(r)?;
        let values = Vec::<f64>::bin_decode(r)?;
        if times.len() != values.len() {
            return Err(BinError::new("age series times/values length mismatch"));
        }
        Ok(FreshnessSeriesLike { times, values })
    }
}

// `Summary` is a webevo-stats type, so its wire form lives here with the
// only consumer, via the raw-parts accessors.
fn encode_summary(summary: &Summary, out: &mut Vec<u8>) {
    let (n, mean, m2, min, max) = summary.raw_parts();
    n.bin_encode(out);
    mean.bin_encode(out);
    m2.bin_encode(out);
    min.bin_encode(out);
    max.bin_encode(out);
}

fn decode_summary(r: &mut BinReader<'_>) -> Result<Summary, BinError> {
    Ok(Summary::from_raw_parts(
        u64::bin_decode(r)?,
        f64::bin_decode(r)?,
        f64::bin_decode(r)?,
        f64::bin_decode(r)?,
        f64::bin_decode(r)?,
    ))
}

impl BinEncode for CrawlMetrics {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.freshness.bin_encode(out);
        self.age.bin_encode(out);
        encode_summary(&self.new_page_latency, out);
        encode_summary(&self.discovery_latency, out);
        self.fetches.bin_encode(out);
        self.failed_fetches.bin_encode(out);
        self.peak_speed.bin_encode(out);
    }
}

impl BinDecode for CrawlMetrics {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<CrawlMetrics, BinError> {
        Ok(CrawlMetrics {
            freshness: FreshnessSeries::bin_decode(r)?,
            age: FreshnessSeriesLike::bin_decode(r)?,
            new_page_latency: decode_summary(r)?,
            discovery_latency: decode_summary(r)?,
            fetches: u64::bin_decode(r)?,
            failed_fetches: u64::bin_decode(r)?,
            peak_speed: f64::bin_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let mut m = CrawlMetrics::default();
        m.sample(0.0, 0.5, 1.0);
        m.sample(10.0, 0.9, 0.5);
        m.record_fetch(true);
        m.record_fetch(false);
        m.record_admission_latency(3.0);
        m.record_admission_latency(-2.0);
        m.observe_speed(40.0);
        m.observe_speed(10.0);
        assert_eq!(m.fetches, 2);
        assert_eq!(m.failed_fetches, 1);
        assert_eq!(m.peak_speed, 40.0);
        assert!((m.freshness.time_average() - 0.7).abs() < 1e-12);
        assert!((m.age.time_average() - 0.75).abs() < 1e-12);
        assert_eq!(m.new_page_latency.count(), 2);
        assert_eq!(m.new_page_latency.min(), 0.0, "negative latency clamped");
    }
}
