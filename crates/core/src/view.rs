//! The serving half of the pass-boundary surface: a write-only observer
//! that sees the engine's user-visible pages at every quiescent boundary.
//!
//! [`CrawlHook`](crate::CrawlHook) is the *durability* observer of a pass
//! boundary (snapshots, WAL flushes); [`ViewPublisher`] is the *serving*
//! observer. At every ranking pass (incremental, threaded) or shadow swap
//! (periodic) the engine hands the publisher a [`ViewBoundary`] — borrowed
//! references into the dense `PageId` arenas plus the boundary's logical
//! clock — and the publisher clones whatever it needs to build an
//! immutable, epoch-numbered view for concurrent readers (`webevo-serve`).
//!
//! The hard invariant mirrors observability's: **serving is free**. The
//! publisher is write-only — engines never read anything back from it, it
//! is deliberately absent from [`CrawlerState`](crate::CrawlerState) and
//! every snapshot/WAL format, and a served run's checkpoints and metrics
//! stay byte-identical to an unserved run's (`tests/determinism.rs` pins
//! this for all three engines and a sharded fleet).

use crate::collection::Collection;
use crate::metrics::CrawlMetrics;
use crate::modules::UpdateModule;
use crate::periodic::PeriodicPage;
use webevo_types::DenseMap;

/// The user-visible pages at one boundary, borrowed straight from the
/// engine's dense arenas. Publishers clone from these borrows — that one
/// arena clone is the entire publication cost on the crawl thread.
#[derive(Clone, Copy, Debug)]
pub enum BoundaryPages<'a> {
    /// A stored-collection engine (incremental, threaded): the Figure 12
    /// `Collection` plus the `UpdateModule` that owns its change-rate
    /// estimates.
    Stored {
        /// The live collection at the boundary.
        collection: &'a Collection,
        /// The update module, for per-page estimated change rates.
        update: &'a UpdateModule,
    },
    /// The periodic engine: the user-visible current window (checksums and
    /// crawl times only — the batch baseline keeps no link structure,
    /// histories, or importance scores).
    Periodic(&'a DenseMap<PeriodicPage>),
}

impl BoundaryPages<'_> {
    /// Number of user-visible pages at the boundary.
    pub fn len(&self) -> usize {
        match self {
            BoundaryPages::Stored { collection, .. } => collection.len(),
            BoundaryPages::Periodic(pages) => pages.len(),
        }
    }

    /// True when no pages are visible yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a publisher may read at one pass/cycle boundary.
#[derive(Debug)]
pub struct ViewBoundary<'a> {
    /// Simulated day of the boundary.
    pub t: f64,
    /// Fetch sequence number at the boundary.
    pub fetch_seq: u64,
    /// Completed refinement passes including this one (ranking runs,
    /// applied rankings, or shadow swaps — see
    /// [`CrawlEngine::passes`](crate::CrawlEngine::passes)).
    pub passes: u64,
    /// The user-visible pages.
    pub pages: BoundaryPages<'a>,
    /// The crawl metrics accumulated so far.
    pub metrics: &'a CrawlMetrics,
}

/// A pass-boundary serving observer. Implementations build immutable
/// views from the borrowed boundary state; they must never feed anything
/// back into the engine (there is no channel to — the contract is
/// write-only by construction).
pub trait ViewPublisher: Send {
    /// Called once per pass/cycle boundary, on the crawl thread, with the
    /// engine quiescent. Keep it cheap: readers are waiting on the next
    /// epoch, and the crawl is stalled until this returns.
    fn publish(&mut self, boundary: ViewBoundary<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::{Checksum, PageId, SiteId, Url};

    struct CountingPublisher {
        boundaries: Vec<(f64, u64, usize)>,
    }

    impl ViewPublisher for CountingPublisher {
        fn publish(&mut self, boundary: ViewBoundary<'_>) {
            self.boundaries.push((boundary.t, boundary.passes, boundary.pages.len()));
        }
    }

    #[test]
    fn boundary_pages_report_length_for_both_arenas() {
        let mut collection = Collection::new(4, 10);
        collection.save(Url::new(SiteId(0), PageId(1)), Checksum(7), vec![], 0.5);
        let update = UpdateModule::new(
            crate::modules::RevisitStrategy::Uniform,
            crate::modules::EstimatorKind::Ep,
            30.0,
        );
        let stored = BoundaryPages::Stored { collection: &collection, update: &update };
        assert_eq!(stored.len(), 1);
        assert!(!stored.is_empty());

        let arena: DenseMap<PeriodicPage> = DenseMap::new();
        let periodic = BoundaryPages::Periodic(&arena);
        assert!(periodic.is_empty());
    }

    #[test]
    fn publishers_see_the_boundary_stamp() {
        let collection = Collection::new(4, 10);
        let update = UpdateModule::new(
            crate::modules::RevisitStrategy::Uniform,
            crate::modules::EstimatorKind::Ep,
            30.0,
        );
        let metrics = CrawlMetrics::default();
        let mut publisher = CountingPublisher { boundaries: Vec::new() };
        publisher.publish(ViewBoundary {
            t: 3.0,
            fetch_seq: 42,
            passes: 1,
            pages: BoundaryPages::Stored { collection: &collection, update: &update },
            metrics: &metrics,
        });
        assert_eq!(publisher.boundaries, vec![(3.0, 1, 0)]);
    }
}
