//! One driver API over all three crawler engines.
//!
//! The paper's argument is *comparative*: periodic vs. incremental
//! crawling under one shared fetch budget and one freshness metric
//! (Figure 10). That comparison needs one crawl-loop contract, not three —
//! [`CrawlEngine`] is that contract, implemented by
//! [`crate::PeriodicCrawler`], [`crate::IncrementalCrawler`], and
//! [`crate::ThreadedCrawler`] alike:
//!
//! * [`CrawlEngine::drive`] advances the engine to a target day — it
//!   starts a fresh run on a new engine and continues a started (or
//!   checkpoint-restored) one, observing every fetch and pass boundary
//!   through a [`CrawlHook`].
//! * [`CrawlEngine::export_state`] / [`restore`] round-trip the full
//!   engine state through [`CrawlerState`] — every engine is
//!   checkpointable.
//! * [`CrawlEngine::replay`] re-applies a write-ahead-log tail after a
//!   restore, landing bit-identically on the pre-crash state.
//! * [`CrawlEngine::metrics`] / [`CrawlEngine::collection`] /
//!   [`CrawlEngine::passes`] expose the observable outcomes uniformly.
//!
//! [`CrawlBudget`] carries the fetch-budget knobs the engines share
//! (capacity, revisit cycle, cadences), so the periodic and incremental
//! configurations derive from one source and cannot drift — e.g.
//! [`CrawlBudget::paper_monthly`] is the paper's Table 2 shape for both.
//!
//! The supported entry point for applications is the `CrawlSession`
//! builder in `webevo-store` (re-exported at `webevo::prelude`), which
//! layers checkpointing, recovery, and validation on top of this trait:
//!
//! ```
//! use webevo_core::engine::{CrawlBudget, EngineKind};
//! use webevo_sim::{SimFetcher, UniverseConfig, WebUniverse};
//! use webevo_store::CrawlSession;
//!
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(7));
//! let dir = std::env::temp_dir().join(format!("webevo-engine-doc-{}", std::process::id()));
//! let mut fetcher = SimFetcher::new(&universe);
//!
//! // One builder drives any engine: periodic, incremental, or threaded.
//! let mut session = CrawlSession::builder()
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(60).with_cycle_days(10.0))
//!     .universe(&universe)
//!     .fetcher(&mut fetcher)
//!     .checkpoint(&dir, 5.0)
//!     .build()
//!     .expect("a valid session");
//! let metrics = session.run(30.0).expect("the crawl runs");
//! assert!(metrics.fetches > 0);
//! assert!(session.collection_len() > 0);
//!
//! // The checkpoint directory now holds `snapshot + WAL tail`; a fresh
//! // session resumes the crawl exactly where it left off.
//! let mut fetcher = SimFetcher::new(&universe);
//! let mut resumed = CrawlSession::builder()
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(60).with_cycle_days(10.0))
//!     .universe(&universe)
//!     .fetcher(&mut fetcher)
//!     .checkpoint(&dir, 5.0)
//!     .build()
//!     .expect("a valid session");
//! let metrics = resumed.resume(45.0).expect("the checkpoint recovers");
//! assert!(metrics.fetches > 0);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::collection::Collection;
use crate::hooks::CrawlHook;
use crate::incremental::{IncrementalConfig, IncrementalCrawler};
use crate::metrics::CrawlMetrics;
use crate::modules::{EstimatorKind, RankingConfig, RevisitStrategy};
use crate::periodic::{PeriodicConfig, PeriodicCrawler};
use crate::routing::{RoutedBatch, RoutedLink, RoutingState, ShardScope, WalEvent};
use crate::state::{CrawlerState, EngineClock};
use crate::threaded::ThreadedCrawler;
use crate::view::ViewPublisher;
use serde::{Deserialize, Serialize};
use webevo_obs::ObsSink;
use webevo_sim::{FetchError, FetchOutcome, Fetcher, FetcherState, WebUniverse};
use webevo_types::{Url, WebEvoError};

// The engine selector and config carrier live in [`crate::state`] (they
// are part of the serialized snapshot layout) but belong to this module's
// API surface; re-export them so `engine::{EngineKind, EngineConfig}`
// works as the builder idiom reads.
pub use crate::state::{EngineConfig, EngineKind};

/// The shared fetch-budget shape both crawler families consume: how many
/// pages to hold, how fast to revisit them, and how often the periodic
/// activities (metrics sampling, ranking passes, batch windows) recur.
///
/// Deriving [`IncrementalConfig`] and [`PeriodicConfig`] from one budget
/// keeps the comparison honest — the paper's Table 2 budget exists once,
/// as [`CrawlBudget::paper_monthly`], instead of being hardcoded per
/// engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrawlBudget {
    /// Collection capacity in pages (§5.2's fixed size).
    pub capacity: usize,
    /// Days per full revisit of the collection: the steady crawl rate is
    /// `capacity / cycle_days` fetches per day, and the periodic crawler
    /// recrawls everything once per cycle.
    pub cycle_days: f64,
    /// The periodic crawler's batch window: each cycle's crawl must finish
    /// within this many days (ignored by the incremental engines, whose
    /// load is steady by construction).
    pub batch_window_days: f64,
    /// Period of the RankingModule pass and the revisit reallocation
    /// (incremental engines only).
    pub ranking_interval_days: f64,
    /// Metrics sampling period in days.
    pub sample_interval_days: f64,
}

impl CrawlBudget {
    /// The paper's Table 2 budget: a monthly revisit cycle with a one-week
    /// batch window, daily ranking and daily metrics samples.
    pub fn paper_monthly(capacity: usize) -> CrawlBudget {
        CrawlBudget {
            capacity,
            cycle_days: 30.0,
            batch_window_days: 7.0,
            ranking_interval_days: 1.0,
            sample_interval_days: 1.0,
        }
    }

    /// Shorten or stretch the revisit cycle, scaling the batch window to
    /// keep the paper's cycle/window ratio.
    pub fn with_cycle_days(mut self, cycle_days: f64) -> CrawlBudget {
        let ratio = if self.cycle_days > 0.0 {
            self.batch_window_days / self.cycle_days
        } else {
            0.25
        };
        self.cycle_days = cycle_days;
        self.batch_window_days = cycle_days * ratio;
        self
    }

    /// Override the batch window.
    pub fn with_batch_window_days(mut self, window_days: f64) -> CrawlBudget {
        self.batch_window_days = window_days;
        self
    }

    /// Override the metrics sampling cadence.
    pub fn with_sample_interval_days(mut self, days: f64) -> CrawlBudget {
        self.sample_interval_days = days;
        self
    }

    /// Override the ranking cadence.
    pub fn with_ranking_interval_days(mut self, days: f64) -> CrawlBudget {
        self.ranking_interval_days = days;
        self
    }

    /// Steady crawl speed (fetches/day amortized over the cycle) — the
    /// budget both engine families spend.
    pub fn steady_rate(&self) -> f64 {
        self.capacity as f64 / self.cycle_days
    }

    /// The incremental-engine configuration this budget implies
    /// (§5.3 defaults: optimal revisit, estimator EP).
    pub fn incremental_config(&self) -> IncrementalConfig {
        IncrementalConfig {
            capacity: self.capacity,
            crawl_rate_per_day: self.steady_rate(),
            ranking_interval_days: self.ranking_interval_days,
            revisit: RevisitStrategy::Optimal,
            estimator: EstimatorKind::Ep,
            history_window: 200,
            sample_interval_days: self.sample_interval_days,
            ranking: RankingConfig::default(),
        }
    }

    /// The periodic-engine configuration this budget implies.
    pub fn periodic_config(&self) -> PeriodicConfig {
        PeriodicConfig {
            capacity: self.capacity,
            cycle_days: self.cycle_days,
            window_days: self.batch_window_days,
            sample_interval_days: self.sample_interval_days,
        }
    }
}

/// The step-wise crawl-loop contract every engine implements. See the
/// module docs for the shape; `tests/determinism.rs` pins that driving an
/// engine through this trait is bit-identical to the pre-redesign
/// per-engine `run`/`resume` surface.
pub trait CrawlEngine {
    /// Which engine this is (including the worker count for the threaded
    /// engine).
    fn kind(&self) -> EngineKind;

    /// Whether the run has started (seed URLs injected). A started engine
    /// continues from its frozen clock on the next [`CrawlEngine::drive`].
    fn started(&self) -> bool;

    /// The engine's discrete-event clock.
    fn clock(&self) -> EngineClock;

    /// Advance the crawl to day `until`, fetching through `fetcher` and
    /// reporting every fetch and pass boundary to `hook`. The first call
    /// on a fresh engine starts the run at day 0; later calls continue
    /// from the frozen clock (including after [`restore`] + replay).
    ///
    /// The threaded engine spawns its own per-worker fetchers against
    /// `universe` and ignores `fetcher` (its workers run unrestricted
    /// politeness; the simulated fetch is a pure function of `(url, t)`
    /// for them).
    ///
    /// Errors (typed, never panics): `until` not beyond the current
    /// clock.
    fn drive(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        hook: &mut dyn CrawlHook,
        until: f64,
    ) -> Result<&CrawlMetrics, WebEvoError>;

    /// Re-apply a write-ahead-log tail after [`restore`]: events already
    /// covered by the snapshot (seq ≤ the restored `fetch_seq`) are
    /// skipped, the rest drive the normal slot loop — logged fetch
    /// outcomes instead of live fetches (advancing `fetcher` alongside
    /// via [`Fetcher::observe_replay`]), logged [`WalEvent::Routed`]
    /// batches re-injected at the recorded point in the sequence.
    /// Afterwards the engine sits at the exact state of the last flushed
    /// boundary; call [`CrawlEngine::drive`] to continue crawling for
    /// real.
    fn replay(
        &mut self,
        universe: &WebUniverse,
        fetcher: &mut dyn Fetcher,
        events: &[WalEvent],
    ) -> Result<(), WebEvoError>;

    /// Capture the full engine state. The fetcher state is left `None`;
    /// the caller (the session or checkpoint layer, which owns the
    /// fetcher) merges it in.
    fn export_state(&self) -> CrawlerState;

    /// Collected metrics.
    fn metrics(&self) -> &CrawlMetrics;

    /// The Figure 12 `Collection`, for engines that maintain one (`None`
    /// for the periodic engine, whose user-visible snapshot has no
    /// importance scores or change histories).
    fn collection(&self) -> Option<&Collection>;

    /// Pages currently visible to users.
    fn collection_len(&self) -> usize;

    /// Completed refinement passes: RankingModule runs for the
    /// incremental engine, applied ranking outcomes for the threaded one,
    /// shadow swaps for the periodic one.
    fn passes(&self) -> u64;

    /// Whether [`CrawlEngine::drive`] fetches through the caller-supplied
    /// fetcher (`false` for the threaded engine; see
    /// [`CrawlEngine::drive`]).
    fn uses_external_fetcher(&self) -> bool {
        true
    }

    /// Restrict the engine to the sites one fleet shard owns: foreign
    /// discoveries divert into the routing outbox instead of entering the
    /// frontier, and the residual schedule never fetches a foreign URL.
    /// Must be set before the run starts. Engines without routing support
    /// return a typed error (the threaded engine; fleets are the
    /// process-level concurrency story instead).
    fn set_scope(&mut self, scope: ShardScope) -> Result<(), WebEvoError> {
        let _ = scope;
        Err(WebEvoError::InvalidState(format!(
            "the {} engine does not support shard scoping",
            self.kind()
        )))
    }

    /// The engine's routing state (outbox, applied-exchange counter), when
    /// the engine supports routing.
    fn routing(&self) -> Option<&RoutingState> {
        None
    }

    /// Deliver one exchange's routed links into the engine: clears the
    /// outbox (its contents were drained by the coordinator that built
    /// the batches), admits each owned link to the frontier, consumes one
    /// sequence number, and bumps the applied-exchange counter. Returns
    /// the applied batch so the caller can log it durably. The engine
    /// must be started and quiescent (at a pass boundary).
    fn inject_links(&mut self, links: Vec<RoutedLink>) -> Result<RoutedBatch, WebEvoError> {
        let _ = links;
        Err(WebEvoError::InvalidState(format!(
            "the {} engine does not support link injection",
            self.kind()
        )))
    }

    /// Install an observability sink: the engine stamps its drive, pass,
    /// and fetch-batch stages (and fetch-outcome counters) into it.
    /// Observation is strictly write-only — the hard invariant is that a
    /// traced run's crawl output stays byte-identical to an untraced
    /// run's, so the sink never appears in [`CrawlerState`] and no engine
    /// reads anything back from it. The default keeps the no-op sink.
    fn set_obs(&mut self, obs: ObsSink) {
        let _ = obs;
    }

    /// Install a serving-view publisher: the engine calls
    /// [`ViewPublisher::publish`] at every pass/cycle boundary with the
    /// user-visible pages and the boundary's logical clock. Publishing is
    /// strictly write-only — the same hard invariant as observation: a
    /// served run's checkpoints and metrics stay byte-identical to an
    /// unserved run's, so the publisher never appears in [`CrawlerState`]
    /// and no engine reads anything back from it. The default drops the
    /// publisher (no serving).
    fn set_view_publisher(&mut self, publisher: Box<dyn ViewPublisher>) {
        let _ = publisher;
    }

    /// Record the closing metrics sample a live [`CrawlEngine::drive`]
    /// ending at `t` would have recorded, without advancing the engine.
    /// The fleet coordinator calls this in place of a drive when a
    /// recovered shard's clock already sits at (or just past) a barrier:
    /// the interrupted run closed that drive with a sample at exactly
    /// `t`, and WAL replay cannot reconstruct it because the sample
    /// belongs to the drive *call*, not to any logged event. Idempotent —
    /// a sample already present at `t` is not duplicated. The default is
    /// a no-op, matching engines whose drives do not close with a sample
    /// (the periodic engine samples on its grid only).
    fn close_sample(&mut self, universe: &WebUniverse, t: f64) {
        let _ = (universe, t);
    }
}

/// Rebuild the right engine from a checkpointed state. Returns the engine
/// and the fetcher state the caller must install into its fetcher (via
/// [`Fetcher::restore_state`]) before replaying or resuming.
pub fn restore(
    state: CrawlerState,
) -> Result<(Box<dyn CrawlEngine + Send>, Option<FetcherState>), WebEvoError> {
    match state.engine {
        EngineKind::Periodic => {
            let (engine, fetcher) = PeriodicCrawler::from_state(state)?;
            Ok((Box::new(engine), fetcher))
        }
        EngineKind::Incremental => {
            let (engine, fetcher) = IncrementalCrawler::from_state(state)?;
            Ok((Box::new(engine), fetcher))
        }
        EngineKind::Threaded { .. } => {
            let engine = ThreadedCrawler::from_state(state)?;
            Ok((Box::new(engine), None))
        }
    }
}

/// Evaluation-only: a collection's quality (§5.1 goal 2) as the mean
/// ground-truth PageRank of its pages at time `t`, normalized by the best
/// achievable mean with the same size. 1.0 = the collection holds exactly
/// the top pages.
pub fn collection_quality(collection: &Collection, universe: &WebUniverse, t: f64) -> f64 {
    use webevo_graph::pagerank::{pagerank, PageRankConfig};
    let graph = universe.snapshot_graph(t);
    let Ok(scores) = pagerank(&graph, &PageRankConfig::conventional()) else {
        return 0.0;
    };
    let mut all: Vec<f64> = scores.iter().map(|(_, s)| s).collect();
    all.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    let k = collection.len().min(all.len());
    if k == 0 {
        return 0.0;
    }
    let ideal: f64 = all[..k].iter().sum::<f64>() / k as f64;
    let actual: f64 = collection.iter().map(|(p, _)| scores.get(p)).sum::<f64>() / k as f64;
    if ideal > 0.0 {
        actual / ideal
    } else {
        0.0
    }
}

/// Where a fetch slot's result comes from: a live fetcher, or the
/// write-ahead log during recovery. Replay feeds recorded outcomes through
/// the exact state transitions of a live crawl (including the fetcher's
/// own counters, via [`Fetcher::observe_replay`]) and cross-checks that
/// the deterministic schedule reproduces the log record-for-record.
/// Shared by the single-threaded engines; the threaded engine replays
/// through its own batch scheduler.
pub(crate) enum FetchSource<'a> {
    /// Fetch for real.
    Live(&'a mut dyn Fetcher),
    /// Re-apply logged outcomes, advancing `fetcher` alongside.
    Replay {
        /// The committed WAL tail (snapshot-covered events already
        /// skipped).
        events: &'a [WalEvent],
        /// Next event to consume.
        pos: usize,
        /// The fetcher to advance via [`Fetcher::observe_replay`].
        fetcher: &'a mut dyn Fetcher,
    },
}

impl FetchSource<'_> {
    /// True once a replay source has no events left (a live source never
    /// exhausts).
    pub(crate) fn exhausted(&self) -> bool {
        match self {
            FetchSource::Live(_) => false,
            FetchSource::Replay { events, pos, .. } => *pos >= events.len(),
        }
    }

    /// The next event, when it is a routed batch awaiting re-injection
    /// (`None` for live sources and for fetch events — those flow through
    /// [`FetchSource::fetch`]).
    pub(crate) fn peek_routed(&self) -> Option<&RoutedBatch> {
        match self {
            FetchSource::Live(_) => None,
            FetchSource::Replay { events, pos, .. } => match events.get(*pos) {
                Some(WalEvent::Routed(batch)) => Some(batch),
                _ => None,
            },
        }
    }

    /// Consume the next event as a routed batch. Call only after
    /// [`FetchSource::peek_routed`] returned `Some`.
    pub(crate) fn take_routed(&mut self) -> Option<RoutedBatch> {
        match self {
            FetchSource::Live(_) => None,
            FetchSource::Replay { events, pos, .. } => match events.get(*pos) {
                Some(WalEvent::Routed(batch)) => {
                    *pos += 1;
                    Some(batch.clone())
                }
                _ => None,
            },
        }
    }

    /// The underlying fetcher's exportable state.
    pub(crate) fn fetcher_state(&self) -> Option<FetcherState> {
        match self {
            FetchSource::Live(f) => f.export_state(),
            FetchSource::Replay { fetcher, .. } => fetcher.export_state(),
        }
    }

    /// Produce the result for fetch attempt `seq` of `url` at `t`.
    pub(crate) fn fetch(
        &mut self,
        seq: u64,
        url: Url,
        t: f64,
    ) -> Result<FetchOutcome, FetchError> {
        match self {
            FetchSource::Live(f) => f.fetch(url, t),
            FetchSource::Replay { events, pos, fetcher } => {
                let WalEvent::Fetch(record) = &events[*pos] else {
                    panic!(
                        "WAL replay out of sync at seq {seq}: engine scheduled a fetch, \
                         log has a routed batch"
                    );
                };
                assert_eq!(record.seq, seq, "WAL replay out of sync at seq {seq}");
                assert_eq!(
                    record.url, url,
                    "WAL replay diverged at seq {seq}: engine scheduled {url:?}, log has {:?}",
                    record.url
                );
                assert_eq!(
                    record.t.to_bits(),
                    t.to_bits(),
                    "WAL replay diverged at seq {seq}: slot time {t} vs logged {}",
                    record.t
                );
                fetcher.observe_replay(url, t, &record.result);
                *pos += 1;
                record.result.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHook;
    use webevo_sim::{SimFetcher, UniverseConfig};

    #[test]
    fn budget_derives_both_configs_from_one_source() {
        let budget = CrawlBudget::paper_monthly(90);
        let inc = budget.incremental_config();
        let per = budget.periodic_config();
        assert_eq!(inc.capacity, per.capacity);
        assert_eq!(inc.crawl_rate_per_day, per.average_speed());
        assert_eq!(per.cycle_days, 30.0);
        assert_eq!(per.window_days, 7.0);
        assert_eq!(inc.sample_interval_days, per.sample_interval_days);
        // The public `monthly` constructors are the same derivation.
        let inc2 = IncrementalConfig::monthly(90);
        assert_eq!(inc.capacity, inc2.capacity);
        assert_eq!(inc.crawl_rate_per_day, inc2.crawl_rate_per_day);
        let per2 = PeriodicConfig::monthly(90);
        assert_eq!(per.cycle_days, per2.cycle_days);
        assert_eq!(per.window_days, per2.window_days);
    }

    #[test]
    fn with_cycle_days_scales_the_window() {
        let budget = CrawlBudget::paper_monthly(100).with_cycle_days(15.0);
        assert_eq!(budget.cycle_days, 15.0);
        assert!((budget.batch_window_days - 3.5).abs() < 1e-12);
        assert!((budget.steady_rate() - 100.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn every_engine_drives_through_the_trait() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(64));
        let budget = CrawlBudget::paper_monthly(40).with_cycle_days(5.0);
        let engines: Vec<Box<dyn CrawlEngine>> = vec![
            Box::new(PeriodicCrawler::new(budget.periodic_config())),
            Box::new(IncrementalCrawler::new(budget.incremental_config())),
            Box::new(ThreadedCrawler::new(budget.incremental_config(), 2)),
        ];
        for mut engine in engines {
            let kind = engine.kind();
            assert!(!engine.started());
            let mut fetcher = SimFetcher::new(&u);
            engine
                .drive(&u, &mut fetcher, &mut NoopHook, 20.0)
                .unwrap_or_else(|e| panic!("{kind} drive failed: {e}"));
            assert!(engine.started());
            assert!(engine.metrics().fetches > 0, "{kind} fetched nothing");
            assert!(engine.collection_len() > 0, "{kind} holds no pages");
            assert!(engine.passes() > 0, "{kind} completed no passes");
            // The clock freezes at (or, for the periodic engine's idle
            // phase, before) the horizon — never beyond it.
            assert!(engine.clock().t <= 20.0, "{kind} clock overran the horizon");
            // Driving backwards is a typed error, not a panic.
            let mut fetcher = SimFetcher::new(&u);
            assert!(matches!(
                engine.drive(&u, &mut fetcher, &mut NoopHook, 10.0),
                Err(WebEvoError::InvalidState(_))
            ));
        }
    }

    #[test]
    fn restore_rejects_nothing_but_rebuilds_the_right_engine() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(65));
        let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
        let engines: Vec<Box<dyn CrawlEngine>> = vec![
            Box::new(PeriodicCrawler::new(budget.periodic_config())),
            Box::new(IncrementalCrawler::new(budget.incremental_config())),
            Box::new(ThreadedCrawler::new(budget.incremental_config(), 3)),
        ];
        for mut engine in engines {
            let mut fetcher = SimFetcher::new(&u);
            engine.drive(&u, &mut fetcher, &mut NoopHook, 12.0).expect("drives");
            let state = engine.export_state();
            let (rebuilt, _) = restore(state).expect("state restores");
            assert_eq!(rebuilt.kind(), engine.kind());
            assert_eq!(rebuilt.collection_len(), engine.collection_len());
            assert_eq!(rebuilt.clock(), engine.clock());
        }
    }
}
