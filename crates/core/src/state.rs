//! The full serializable state of a crawler engine.
//!
//! [`CrawlerState`] is everything an engine needs to continue a run after
//! a process restart: the Figure 12 data structures (`Collection`,
//! `AllUrls`, `CollUrls`), the module states, the metrics accumulated so
//! far, the discrete-event clock, and — for fetchers that carry replay
//! state — the fetcher's counters. It is captured at pass boundaries via
//! [`crate::CrawlHook::on_pass`] and rebuilt through the engines'
//! `from_state` constructors.
//!
//! Two encoding details keep restoration *bit-identical* rather than
//! merely approximate:
//!
//! * Queue due-times are stored as raw IEEE-754 bit patterns
//!   ([`QueueEntry::due_bits`]): the immediate-priority lane uses `−∞`,
//!   which JSON cannot represent as a number.
//! * Unordered sets (`queued`, `admissions`) are stored as sorted vectors
//!   so two snapshots of the same state are byte-identical.

use crate::allurls::AllUrls;
use crate::collection::Collection;
use crate::incremental::IncrementalConfig;
use crate::metrics::CrawlMetrics;
use crate::modules::{CrawlModule, UpdateModule};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use webevo_schedule::{RevisitQueue, ScheduledVisit};
use webevo_sim::FetcherState;
use webevo_types::{PageId, Url};

/// Which engine wrote a state (they share the layout but differ in which
/// fields are meaningful).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The single-threaded [`crate::IncrementalCrawler`].
    Incremental,
    /// The concurrent [`crate::ThreadedCrawler`].
    Threaded,
}

/// The engine's discrete-event clock: the current fetch-slot time plus the
/// next due times of the two periodic activities.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineClock {
    /// Current simulated time (days).
    pub t: f64,
    /// When the next RankingModule pass is due.
    pub next_ranking: f64,
    /// When the next metrics sample is due.
    pub next_sample: f64,
}

/// One `CollUrls` entry with its due time as a raw bit pattern (exact for
/// every float, including the `−∞` of the immediate-priority lane).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// `f64::to_bits` of the due time.
    pub due_bits: u64,
    /// The scheduled URL.
    pub url: Url,
}

/// Complete serializable engine state. See the module docs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrawlerState {
    /// Which engine wrote this state.
    pub engine: EngineKind,
    /// The engine configuration (restored verbatim so `--resume` needs no
    /// re-specification).
    pub config: IncrementalConfig,
    /// Crawl-worker count (threaded engine; 0 for the incremental one).
    pub workers: usize,
    /// When the run began (baseline for new-page latency accounting).
    pub run_start: f64,
    /// Whether seed URLs have been injected (always true in practice:
    /// states are only captured at pass boundaries).
    pub seeded: bool,
    /// The discrete-event clock.
    pub clock: EngineClock,
    /// Fetch attempts issued so far (pairs with [`crate::FetchRecord::seq`]).
    pub fetch_seq: u64,
    /// The local page store.
    pub collection: Collection,
    /// Every URL ever discovered.
    pub all_urls: AllUrls,
    /// `CollUrls`: the scheduled visits, earliest first.
    pub queue: Vec<QueueEntry>,
    /// Pages currently scheduled (dedup guard), sorted.
    pub queued: Vec<PageId>,
    /// Ranking-proposed admissions awaiting their first crawl, sorted.
    pub admissions: Vec<PageId>,
    /// The UpdateModule (strategy, estimator, revisit intervals).
    pub update: UpdateModule,
    /// RankingModule passes completed (incremental engine).
    pub ranking_runs: u64,
    /// Ranking outcomes applied (threaded engine).
    pub ranking_applied: u64,
    /// Threaded engine: a ranking request built from exactly this state
    /// must be (re)issued on resume — the snapshot is taken at the
    /// boundary between applying one response and sending the next
    /// request.
    pub rank_pending: bool,
    /// CrawlModule counters.
    pub crawl: CrawlModule,
    /// Metrics accumulated so far.
    pub metrics: CrawlMetrics,
    /// Fetcher replay state, when the fetcher is stateful.
    pub fetcher: Option<FetcherState>,
}

/// Encode a queue for a snapshot: entries earliest-first, due times as
/// bits.
pub fn queue_to_entries(queue: &RevisitQueue) -> Vec<QueueEntry> {
    queue
        .snapshot_entries()
        .into_iter()
        .map(|v| QueueEntry { due_bits: v.due.to_bits(), url: v.url })
        .collect()
}

/// Rebuild a queue from snapshot entries.
pub fn entries_to_queue(entries: &[QueueEntry]) -> RevisitQueue {
    RevisitQueue::from_entries(
        entries
            .iter()
            .map(|e| ScheduledVisit { due: f64::from_bits(e.due_bits), url: e.url })
            .collect(),
    )
}

/// Encode a page-id set for a snapshot: sorted for deterministic bytes.
pub fn set_to_sorted(set: &HashSet<PageId>) -> Vec<PageId> {
    let mut pages: Vec<PageId> = set.iter().copied().collect();
    pages.sort_unstable();
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::SiteId;

    fn url(i: u64) -> Url {
        Url::new(SiteId(0), PageId(i))
    }

    #[test]
    fn queue_codec_is_exact_for_negative_infinity() {
        let mut q = RevisitQueue::new();
        q.push(url(1), 4.5);
        q.push_front(url(2));
        let entries = queue_to_entries(&q);
        assert_eq!(entries[0].due_bits, f64::NEG_INFINITY.to_bits());
        let mut restored = entries_to_queue(&entries);
        assert_eq!(restored.pop().unwrap().url, url(2));
        assert_eq!(restored.pop().unwrap().due, 4.5);
    }

    #[test]
    fn sets_serialize_sorted() {
        let set: HashSet<PageId> = [PageId(9), PageId(2), PageId(5)].into_iter().collect();
        assert_eq!(set_to_sorted(&set), vec![PageId(2), PageId(5), PageId(9)]);
    }
}
