//! The full serializable state of a crawler engine.
//!
//! [`CrawlerState`] is everything an engine needs to continue a run after
//! a process restart: the Figure 12 data structures (`Collection`,
//! `AllUrls`, `CollUrls`), the module states, the metrics accumulated so
//! far, the discrete-event clock, and — for fetchers that carry replay
//! state — the fetcher's counters. It is captured at pass boundaries via
//! [`crate::CrawlHook::on_pass_boundary`] and rebuilt through
//! [`crate::engine::restore`] (or the engines' `from_state`
//! constructors).
//!
//! All three engines share the layout. The incremental fields are empty
//! for the periodic engine, whose cycle/shadow state lives in the
//! [`PeriodicState`] payload instead; [`EngineKind`] records which engine
//! wrote a state so recovery can rebuild the right one.
//!
//! Two encoding details keep restoration *bit-identical* rather than
//! merely approximate:
//!
//! * Queue due-times are stored as raw IEEE-754 bit patterns
//!   ([`QueueEntry::due_bits`]): the immediate-priority lane uses `−∞`,
//!   which JSON cannot represent as a number.
//! * The `queued`/`admissions` sets are stored as ascending id vectors
//!   (the engines' dense sets iterate in that order already) so two
//!   snapshots of the same state are byte-identical.

use crate::allurls::AllUrls;
use crate::collection::Collection;
use crate::incremental::IncrementalConfig;
use crate::metrics::CrawlMetrics;
use crate::modules::{CrawlModule, UpdateModule};
use crate::periodic::{PeriodicConfig, PeriodicState};
use crate::routing::RoutingState;
use serde::{Deserialize, Serialize};
use webevo_schedule::{RevisitQueue, ScheduledVisit};
use webevo_sim::FetcherState;
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{PageId, Url, WebEvoError};

/// Which engine a [`CrawlerState`] belongs to — and, in the
/// `CrawlSession` builder, which engine to construct.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The batch-mode, shadowing baseline [`crate::PeriodicCrawler`].
    Periodic,
    /// The single-threaded [`crate::IncrementalCrawler`].
    Incremental,
    /// The concurrent [`crate::ThreadedCrawler`] with `workers` parallel
    /// CrawlModules.
    Threaded {
        /// Number of crawl workers.
        workers: usize,
    },
}

impl EngineKind {
    /// The engine family's display name (worker counts elided).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Periodic => "periodic",
            EngineKind::Incremental => "incremental",
            EngineKind::Threaded { .. } => "threaded",
        }
    }

    /// Whether two kinds name the same engine family. `Threaded { 2 }`
    /// and `Threaded { 4 }` are the same family: a checkpoint written by
    /// one can seed a session configured for the other (the snapshot's
    /// worker count wins, preserving the deterministic schedule).
    pub fn same_family(&self, other: &EngineKind) -> bool {
        self.name() == other.name()
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Threaded { workers } => write!(f, "threaded({workers} workers)"),
            other => f.write_str(other.name()),
        }
    }
}

/// The engine-specific configuration carried inside a [`CrawlerState`],
/// so `--resume` needs no re-specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum EngineConfig {
    /// Configuration of the incremental engines (single-threaded and
    /// threaded alike).
    Incremental(IncrementalConfig),
    /// Configuration of the periodic baseline.
    Periodic(PeriodicConfig),
}

impl EngineConfig {
    /// The incremental configuration, or a typed error when the state was
    /// written by the periodic engine.
    pub fn as_incremental(&self) -> Result<&IncrementalConfig, WebEvoError> {
        match self {
            EngineConfig::Incremental(config) => Ok(config),
            EngineConfig::Periodic(_) => Err(WebEvoError::InvalidState(
                "state carries a periodic configuration, not an incremental one".into(),
            )),
        }
    }

    /// The periodic configuration, or a typed error when the state was
    /// written by an incremental engine.
    pub fn as_periodic(&self) -> Result<&PeriodicConfig, WebEvoError> {
        match self {
            EngineConfig::Periodic(config) => Ok(config),
            EngineConfig::Incremental(_) => Err(WebEvoError::InvalidState(
                "state carries an incremental configuration, not a periodic one".into(),
            )),
        }
    }

    /// Collection capacity, common to both configurations.
    pub fn capacity(&self) -> usize {
        match self {
            EngineConfig::Incremental(config) => config.capacity,
            EngineConfig::Periodic(config) => config.capacity,
        }
    }
}

/// The engine's discrete-event clock: the current fetch-slot time plus the
/// next due times of the two periodic activities.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineClock {
    /// Current simulated time (days).
    pub t: f64,
    /// When the next RankingModule pass is due (unused by the periodic
    /// engine, whose boundaries are shadow swaps).
    pub next_ranking: f64,
    /// When the next metrics sample is due.
    pub next_sample: f64,
}

/// One `CollUrls` entry with its due time as a raw bit pattern (exact for
/// every float, including the `−∞` of the immediate-priority lane).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// `f64::to_bits` of the due time.
    pub due_bits: u64,
    /// The scheduled URL.
    pub url: Url,
}

/// Complete serializable engine state. See the module docs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrawlerState {
    /// Which engine wrote this state (including the worker count for the
    /// threaded engine, whose deterministic schedule depends on it).
    pub engine: EngineKind,
    /// The engine configuration (restored verbatim so `--resume` needs no
    /// re-specification).
    pub config: EngineConfig,
    /// When the run began (baseline for new-page latency accounting).
    pub run_start: f64,
    /// Whether the run has started (seed URLs injected; always true in
    /// practice: states are only captured at pass boundaries).
    pub seeded: bool,
    /// The discrete-event clock.
    pub clock: EngineClock,
    /// Fetch attempts issued so far (pairs with [`crate::FetchRecord::seq`]).
    pub fetch_seq: u64,
    /// The local page store (incremental engines; empty for periodic).
    pub collection: Collection,
    /// Every URL ever discovered (incremental engines).
    pub all_urls: AllUrls,
    /// `CollUrls`: the scheduled visits, earliest first (incremental
    /// engines).
    pub queue: Vec<QueueEntry>,
    /// Pages currently scheduled (dedup guard), sorted.
    pub queued: Vec<PageId>,
    /// Ranking-proposed admissions awaiting their first crawl, sorted.
    pub admissions: Vec<PageId>,
    /// The UpdateModule (strategy, estimator, revisit intervals).
    pub update: UpdateModule,
    /// RankingModule passes completed (incremental engine).
    pub ranking_runs: u64,
    /// Ranking outcomes applied (threaded engine).
    pub ranking_applied: u64,
    /// Threaded engine: a ranking request built from exactly this state
    /// must be (re)issued on resume — the snapshot is taken at the
    /// boundary between applying one response and sending the next
    /// request.
    pub rank_pending: bool,
    /// CrawlModule counters.
    pub crawl: CrawlModule,
    /// The periodic engine's cycle/shadow state (`None` for the
    /// incremental engines).
    pub periodic: Option<PeriodicState>,
    /// Metrics accumulated so far.
    pub metrics: CrawlMetrics,
    /// Fetcher replay state, when the fetcher is stateful.
    pub fetcher: Option<FetcherState>,
    /// Cross-shard routing state (inert default when unsharded; absent in
    /// pre-routing snapshots, which decode to the default).
    pub routing: RoutingState,
}

impl BinEncode for EngineKind {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        match self {
            EngineKind::Periodic => out.push(0),
            EngineKind::Incremental => out.push(1),
            EngineKind::Threaded { workers } => {
                out.push(2);
                workers.bin_encode(out);
            }
        }
    }
}

impl BinDecode for EngineKind {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<EngineKind, BinError> {
        match r.byte()? {
            0 => Ok(EngineKind::Periodic),
            1 => Ok(EngineKind::Incremental),
            2 => Ok(EngineKind::Threaded { workers: usize::bin_decode(r)? }),
            other => Err(BinError::new(format!("invalid EngineKind tag {other}"))),
        }
    }
}

impl BinEncode for EngineConfig {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        match self {
            EngineConfig::Incremental(config) => {
                out.push(0);
                config.bin_encode(out);
            }
            EngineConfig::Periodic(config) => {
                out.push(1);
                config.bin_encode(out);
            }
        }
    }
}

impl BinDecode for EngineConfig {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<EngineConfig, BinError> {
        match r.byte()? {
            0 => Ok(EngineConfig::Incremental(IncrementalConfig::bin_decode(r)?)),
            1 => Ok(EngineConfig::Periodic(PeriodicConfig::bin_decode(r)?)),
            other => Err(BinError::new(format!("invalid EngineConfig tag {other}"))),
        }
    }
}

impl BinEncode for EngineClock {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.t.bin_encode(out);
        self.next_ranking.bin_encode(out);
        self.next_sample.bin_encode(out);
    }
}

impl BinDecode for EngineClock {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<EngineClock, BinError> {
        Ok(EngineClock {
            t: f64::bin_decode(r)?,
            next_ranking: f64::bin_decode(r)?,
            next_sample: f64::bin_decode(r)?,
        })
    }
}

impl BinEncode for QueueEntry {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.due_bits.bin_encode(out);
        self.url.bin_encode(out);
    }
}

impl BinDecode for QueueEntry {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<QueueEntry, BinError> {
        Ok(QueueEntry { due_bits: u64::bin_decode(r)?, url: Url::bin_decode(r)? })
    }
}

impl BinEncode for CrawlerState {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.engine.bin_encode(out);
        self.config.bin_encode(out);
        self.run_start.bin_encode(out);
        self.seeded.bin_encode(out);
        self.clock.bin_encode(out);
        self.fetch_seq.bin_encode(out);
        self.collection.bin_encode(out);
        self.all_urls.bin_encode(out);
        self.queue.bin_encode(out);
        self.queued.bin_encode(out);
        self.admissions.bin_encode(out);
        self.update.bin_encode(out);
        self.ranking_runs.bin_encode(out);
        self.ranking_applied.bin_encode(out);
        self.rank_pending.bin_encode(out);
        self.crawl.bin_encode(out);
        self.periodic.bin_encode(out);
        self.metrics.bin_encode(out);
        self.fetcher.bin_encode(out);
        self.routing.bin_encode(out);
    }
}

impl BinDecode for CrawlerState {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<CrawlerState, BinError> {
        Ok(CrawlerState {
            engine: EngineKind::bin_decode(r)?,
            config: EngineConfig::bin_decode(r)?,
            run_start: f64::bin_decode(r)?,
            seeded: bool::bin_decode(r)?,
            clock: EngineClock::bin_decode(r)?,
            fetch_seq: u64::bin_decode(r)?,
            collection: Collection::bin_decode(r)?,
            all_urls: AllUrls::bin_decode(r)?,
            queue: Vec::bin_decode(r)?,
            queued: Vec::bin_decode(r)?,
            admissions: Vec::bin_decode(r)?,
            update: UpdateModule::bin_decode(r)?,
            ranking_runs: u64::bin_decode(r)?,
            ranking_applied: u64::bin_decode(r)?,
            rank_pending: bool::bin_decode(r)?,
            crawl: CrawlModule::bin_decode(r)?,
            periodic: Option::bin_decode(r)?,
            metrics: CrawlMetrics::bin_decode(r)?,
            fetcher: Option::bin_decode(r)?,
            // Routing-era states append this block; earlier version-3
            // snapshots end at `fetcher` and decode to the inert default.
            routing: if r.is_exhausted() {
                RoutingState::default()
            } else {
                RoutingState::bin_decode(r)?
            },
        })
    }
}

/// Encode a queue for a snapshot: entries earliest-first, due times as
/// bits.
pub fn queue_to_entries(queue: &RevisitQueue) -> Vec<QueueEntry> {
    queue
        .snapshot_entries()
        .into_iter()
        .map(|v| QueueEntry { due_bits: v.due.to_bits(), url: v.url })
        .collect()
}

/// Rebuild a queue from snapshot entries.
pub fn entries_to_queue(entries: &[QueueEntry]) -> RevisitQueue {
    RevisitQueue::from_entries(
        entries
            .iter()
            .map(|e| ScheduledVisit { due: f64::from_bits(e.due_bits), url: e.url })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::SiteId;

    fn url(i: u64) -> Url {
        Url::new(SiteId(0), PageId(i))
    }

    #[test]
    fn queue_codec_is_exact_for_negative_infinity() {
        let mut q = RevisitQueue::new();
        q.push(url(1), 4.5);
        q.push_front(url(2));
        let entries = queue_to_entries(&q);
        assert_eq!(entries[0].due_bits, f64::NEG_INFINITY.to_bits());
        let mut restored = entries_to_queue(&entries);
        assert_eq!(restored.pop().unwrap().url, url(2));
        assert_eq!(restored.pop().unwrap().due, 4.5);
    }

    #[test]
    fn engine_kind_families() {
        let a = EngineKind::Threaded { workers: 2 };
        let b = EngineKind::Threaded { workers: 4 };
        assert_ne!(a, b, "worker counts distinguish kinds");
        assert!(a.same_family(&b), "but not families");
        assert!(!a.same_family(&EngineKind::Incremental));
        assert_eq!(EngineKind::Periodic.to_string(), "periodic");
        assert_eq!(b.to_string(), "threaded(4 workers)");
    }

    #[test]
    fn engine_config_accessors_are_typed() {
        let periodic = EngineConfig::Periodic(PeriodicConfig::monthly(10));
        assert_eq!(periodic.capacity(), 10);
        assert!(periodic.as_periodic().is_ok());
        assert!(matches!(
            periodic.as_incremental(),
            Err(WebEvoError::InvalidState(_))
        ));
        let incremental = EngineConfig::Incremental(IncrementalConfig::monthly(20));
        assert_eq!(incremental.capacity(), 20);
        assert!(incremental.as_incremental().is_ok());
        assert!(matches!(
            incremental.as_periodic(),
            Err(WebEvoError::InvalidState(_))
        ));
    }
}
