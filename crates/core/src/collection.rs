//! The `Collection`: the crawler's local page store (Figure 12).
//!
//! Each stored page carries what §5.3 says the UpdateModule records: the
//! last checksum (for change detection), the change history feeding the
//! frequency estimators, the extracted links (feeding both AllUrls and the
//! RankingModule's link structure), and the current importance score.

use serde::{Deserialize, Serialize};
use webevo_estimate::{BayesianEstimator, ChangeHistory};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{Checksum, DenseMap, PageId, SiteId, Url};

/// One page's stored state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoredPage {
    /// The page's URL.
    pub url: Url,
    /// Checksum from the most recent crawl.
    pub checksum: Checksum,
    /// Out-links extracted at the most recent crawl.
    pub links: Vec<Url>,
    /// Time of the most recent crawl (days).
    pub last_crawl: f64,
    /// Time the page entered the collection.
    pub admitted: f64,
    /// Number of crawls of this page.
    pub crawl_count: u64,
    /// Change observation history (drives estimator EP).
    pub history: ChangeHistory,
    /// Bayesian frequency-class state (drives estimator EB).
    pub bayes: BayesianEstimator,
    /// Current importance score (set by the RankingModule; 1.0 until the
    /// first ranking pass, matching PageRank's mean).
    pub importance: f64,
}

/// The local collection: a capacity-bounded page store.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Collection {
    // Dense slot map, iterated in ascending-id order: iteration feeds
    // float accumulations (metrics sampling, ranking mass sums) that must
    // replay exactly for a fixed seed, and ascending `PageId` is the same
    // order the ordered map it replaced produced. A HashMap's per-instance
    // seed would reorder them run to run.
    pages: DenseMap<StoredPage>,
    capacity: usize,
    history_window: usize,
}

impl Collection {
    /// Create with a fixed page capacity (the paper's "fixed number of
    /// pages" assumption, §5.2) and a per-page history window.
    pub fn new(capacity: usize, history_window: usize) -> Collection {
        assert!(capacity > 0, "collection capacity must be positive");
        Collection { pages: DenseMap::new(), capacity, history_window }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.pages.len() >= self.capacity
    }

    /// True if the page is stored.
    pub fn contains(&self, page: PageId) -> bool {
        self.pages.contains(page)
    }

    /// Shared access to a stored page.
    pub fn get(&self, page: PageId) -> Option<&StoredPage> {
        self.pages.get(page)
    }

    /// Mutable access to a stored page.
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut StoredPage> {
        self.pages.get_mut(page)
    }

    /// Admit a new page crawled at `t` (Algorithm 5.1 step \[9\]). Panics
    /// if full — the engine must evict first (step \[7\]/\[8\]); that
    /// ordering is the refinement decision and must stay explicit.
    pub fn save(&mut self, url: Url, checksum: Checksum, links: Vec<Url>, t: f64) {
        assert!(!self.is_full(), "collection full: evict before saving");
        assert!(!self.pages.contains(url.page), "page already stored: use update");
        let mut history = ChangeHistory::new(self.history_window);
        history.record_visit(t, checksum);
        let mut bayes = BayesianEstimator::uniform_prior(BayesianEstimator::paper_classes())
            .expect("paper classes are non-empty");
        let _ = &mut bayes; // first visit carries no comparison information
        self.pages.insert(
            url.page,
            StoredPage {
                url,
                checksum,
                links,
                last_crawl: t,
                admitted: t,
                crawl_count: 1,
                history,
                bayes,
                importance: 1.0,
            },
        );
    }

    /// Update an existing page from a re-crawl at `t` (Algorithm 5.1 step
    /// \[5\]). Returns whether a change was detected.
    pub fn update(&mut self, page: PageId, checksum: Checksum, links: Vec<Url>, t: f64) -> bool {
        let stored = self.pages.get_mut(page).expect("update requires a stored page");
        let obs = stored.history.record_visit(t, checksum);
        if obs.interval > 0.0 {
            stored.bayes.observe(obs.interval, obs.changed);
        }
        stored.checksum = checksum;
        stored.links = links;
        stored.last_crawl = t;
        stored.crawl_count += 1;
        obs.changed
    }

    /// Discard a page (Algorithm 5.1 step \[8\]). Returns its state.
    pub fn discard(&mut self, page: PageId) -> Option<StoredPage> {
        self.pages.remove(page)
    }

    /// Iterate stored pages in ascending-id order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &StoredPage)> {
        self.pages.iter()
    }

    /// Iterate stored pages mutably, ascending-id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (PageId, &mut StoredPage)> {
        self.pages.iter_mut()
    }

    /// The stored page with the lowest importance (deterministic
    /// tie-break on page id) — the discard candidate of §5.2.
    pub fn least_important(&self) -> Option<PageId> {
        self.pages
            .iter()
            .min_by(|a, b| {
                a.1.importance
                    .partial_cmp(&b.1.importance)
                    .expect("importance is never NaN")
                    .then(a.0.cmp(&b.0))
            })
            .map(|(p, _)| p)
    }

    /// Minimum importance in the collection.
    pub fn min_importance(&self) -> f64 {
        self.pages
            .values()
            .map(|s| s.importance)
            .fold(f64::INFINITY, f64::min)
    }

    /// Remove and return every page whose site satisfies `departing`, in
    /// ascending page-id order — the donor side of a fleet rebalance.
    pub fn extract_pages(&mut self, departing: impl Fn(SiteId) -> bool) -> Vec<StoredPage> {
        let leaving: Vec<PageId> = self
            .pages
            .iter()
            .filter(|(_, stored)| departing(stored.url.site))
            .map(|(p, _)| p)
            .collect();
        leaving
            .into_iter()
            .filter_map(|p| self.pages.remove(p))
            .collect()
    }

    /// Re-insert a page extracted from another shard's collection, state
    /// verbatim (change history, estimators, importance all carried
    /// over). Panics if the page is already stored; unlike
    /// [`Collection::save`] this may overfill — rebalancing trims to the
    /// re-apportioned capacity afterwards via [`Collection::set_capacity`]
    /// and explicit eviction.
    pub fn absorb(&mut self, page: StoredPage) {
        assert!(!self.pages.contains(page.url.page), "page already stored: cannot absorb");
        self.pages.insert(page.url.page, page);
    }

    /// Rewrite the capacity — fleet rebalancing re-apportions capacity
    /// along with site ownership. The caller is responsible for evicting
    /// down to the new capacity.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "collection capacity must be positive");
        self.capacity = capacity;
    }
}

impl BinEncode for StoredPage {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.url.bin_encode(out);
        self.checksum.bin_encode(out);
        self.links.bin_encode(out);
        self.last_crawl.bin_encode(out);
        self.admitted.bin_encode(out);
        self.crawl_count.bin_encode(out);
        self.history.bin_encode(out);
        self.bayes.bin_encode(out);
        self.importance.bin_encode(out);
    }
}

impl BinDecode for StoredPage {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<StoredPage, BinError> {
        Ok(StoredPage {
            url: Url::bin_decode(r)?,
            checksum: Checksum::bin_decode(r)?,
            links: Vec::bin_decode(r)?,
            last_crawl: f64::bin_decode(r)?,
            admitted: f64::bin_decode(r)?,
            crawl_count: u64::bin_decode(r)?,
            history: ChangeHistory::bin_decode(r)?,
            bayes: BayesianEstimator::bin_decode(r)?,
            importance: f64::bin_decode(r)?,
        })
    }
}

impl BinEncode for Collection {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.pages.bin_encode(out);
        self.capacity.bin_encode(out);
        self.history_window.bin_encode(out);
    }
}

impl BinDecode for Collection {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<Collection, BinError> {
        Ok(Collection {
            pages: DenseMap::bin_decode(r)?,
            capacity: usize::bin_decode(r)?,
            history_window: usize::bin_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::SiteId;

    fn url(i: u64) -> Url {
        Url::new(SiteId(0), PageId(i))
    }

    fn collection() -> Collection {
        Collection::new(3, 50)
    }

    #[test]
    fn save_update_discard_lifecycle() {
        let mut c = collection();
        c.save(url(1), Checksum(100), vec![url(2)], 0.0);
        assert!(c.contains(PageId(1)));
        assert_eq!(c.len(), 1);
        // Unchanged re-crawl.
        assert!(!c.update(PageId(1), Checksum(100), vec![], 1.0));
        // Changed re-crawl.
        assert!(c.update(PageId(1), Checksum(200), vec![url(3)], 2.0));
        let stored = c.get(PageId(1)).unwrap();
        assert_eq!(stored.crawl_count, 3);
        assert_eq!(stored.history.detections(), 1);
        assert_eq!(stored.links, vec![url(3)]);
        let removed = c.discard(PageId(1)).unwrap();
        assert_eq!(removed.crawl_count, 3);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "evict before saving")]
    fn save_into_full_collection_panics() {
        let mut c = collection();
        for i in 0..3 {
            c.save(url(i), Checksum(i), vec![], 0.0);
        }
        c.save(url(9), Checksum(9), vec![], 0.0);
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn double_save_panics() {
        let mut c = collection();
        c.save(url(1), Checksum(1), vec![], 0.0);
        c.save(url(1), Checksum(1), vec![], 1.0);
    }

    #[test]
    fn least_important_breaks_ties_deterministically() {
        let mut c = collection();
        for i in 0..3 {
            c.save(url(i), Checksum(i), vec![], 0.0);
        }
        // All importance 1.0 → lowest page id wins the tie.
        assert_eq!(c.least_important(), Some(PageId(0)));
        c.get_mut(PageId(2)).unwrap().importance = 0.1;
        assert_eq!(c.least_important(), Some(PageId(2)));
        assert!((c.min_importance() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bayes_observes_changes_on_update() {
        let mut c = collection();
        c.save(url(1), Checksum(0), vec![], 0.0);
        for day in 1..=30 {
            // Change every other day.
            let ck = Checksum((day / 2) as u64);
            c.update(PageId(1), ck, vec![], day as f64);
        }
        let stored = c.get(PageId(1)).unwrap();
        assert_eq!(stored.bayes.observations(), 30);
        // Posterior mean should land near 0.5/day, far from the
        // "quarterly+" class.
        let rate = stored.bayes.posterior_mean_rate().per_day();
        assert!(rate > 0.1, "rate={rate}");
    }
}
