//! The incremental crawler architecture of §5 — the paper's primary
//! contribution — together with the periodic (batch + shadowing) baseline
//! it argues against.
//!
//! The architecture follows Figure 12:
//!
//! ```text
//!   AllUrls ──scan──▶ RankingModule ──add/remove──▶ CollUrls (priority queue)
//!      ▲                   │ discard                     │ pop / pushback
//!      │ addUrls           ▼                             ▼
//!   CrawlModule ◀──crawl── UpdateModule ◀──checksum── Collection
//! ```
//!
//! * [`allurls`] — every URL ever discovered, with the in-link evidence the
//!   RankingModule uses to estimate the importance of uncrawled pages.
//! * [`collection`] — the local page store: checksums, links, change
//!   histories, importance scores.
//! * [`modules`] — the three modules as separable units: `CrawlModule`
//!   (fetch + link extraction), `UpdateModule` (update decision: what to
//!   refresh, when), `RankingModule` (refinement decision: what to keep).
//! * [`incremental`] — the single-threaded deterministic engine combining
//!   them (Algorithm 5.1 / Figure 11 made concrete).
//! * [`threaded`] — the same architecture with real concurrency: crawl
//!   workers behind crossbeam channels, shared state behind parking_lot
//!   locks, the RankingModule decoupled from the crawl hot path exactly as
//!   §5.3 prescribes ("Separating the update decision from the refinement
//!   decision is crucial").
//! * [`periodic`] — the batch-mode, shadowing, fixed-frequency baseline
//!   (the right-hand column of Figure 10).
//! * [`metrics`] — freshness/age/new-page-latency instrumentation against
//!   simulator ground truth.
//! * [`routing`] — cross-shard link routing for fleets: a scoped engine
//!   diverts foreign-site discoveries into an outbox instead of burning
//!   fetches on them, and the fleet coordinator delivers merged batches
//!   back into the owning shards' frontiers (durably, via the WAL).
//! * [`engine`] — the [`CrawlEngine`] trait all three engines implement:
//!   one step-wise `drive`/`replay`/`export_state` contract, plus the
//!   shared [`CrawlBudget`] both configuration families derive from. The
//!   application-facing `CrawlSession` builder in `webevo-store` drives
//!   engines exclusively through this trait.
//! * [`view`] — the serving surface: a write-only [`ViewPublisher`]
//!   observer that sees the user-visible pages at every quiescent pass
//!   boundary, from which `webevo-serve` builds immutable epoch-numbered
//!   query views. Like observability, publishing never feeds back into
//!   crawl decisions.
//! * [`state`] + [`hooks`] — the durability surface: the full serializable
//!   engine state captured at pass boundaries, and the [`CrawlHook`]
//!   observer that `webevo-store` implements to persist snapshots and
//!   per-fetch write-ahead-log deltas. Every engine restores via
//!   [`engine::restore`] and replays its write-ahead log, so a killed
//!   crawl continues bit-identically after restart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allurls;
pub mod collection;
pub mod engine;
pub mod hooks;
pub mod incremental;
pub mod metrics;
pub mod modules;
pub mod periodic;
pub mod routing;
pub mod state;
pub mod threaded;
pub mod view;

pub use allurls::AllUrls;
pub use collection::{Collection, StoredPage};
pub use engine::{collection_quality, restore, CrawlBudget, CrawlEngine};
pub use hooks::{CrawlHook, FetchRecord, NoopHook, PairHook};
pub use incremental::{IncrementalConfig, IncrementalCrawler};
pub use metrics::CrawlMetrics;
pub use modules::{
    CrawlModule, EstimatorKind, RankingConfig, RankingModule, RevisitStrategy, UpdateModule,
};
pub use periodic::{PeriodicConfig, PeriodicCrawler, PeriodicState};
pub use routing::{
    merge_outboxes, rebalance_states, route_exchange, RoutedBatch, RoutedLink, RoutingState,
    ShardScope, WalEvent,
};
pub use state::{CrawlerState, EngineClock, EngineConfig, EngineKind, QueueEntry};
pub use threaded::ThreadedCrawler;
pub use view::{BoundaryPages, ViewBoundary, ViewPublisher};
