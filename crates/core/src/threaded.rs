//! The Figure 12 architecture with real concurrency.
//!
//! §5.3: *"multiple CrawlModules may run in parallel"* and *"separating the
//! update decision (UpdateModule) from the refinement decision
//! (RankingModule) is crucial for performance … the crawler cannot
//! recompute the importance of pages for every page crawled."*
//!
//! This engine realizes both: N crawl workers fetch concurrently behind
//! crossbeam channels while the coordinator (UpdateModule role) applies
//! results and schedules revisits, and the RankingModule runs on its *own*
//! thread against collection snapshots, feeding replacement decisions back
//! asynchronously — the crawl hot path never waits for PageRank.
//!
//! Simulated time advances with the fetch budget exactly as in the
//! single-threaded engine (one slot per fetch), so results are comparable;
//! only the *order* in which concurrent results land differs, as it would
//! in a real deployment.

use crate::allurls::AllUrls;
use crate::collection::Collection;
use crate::incremental::IncrementalConfig;
use crate::metrics::CrawlMetrics;
use crate::modules::{RankingModule, UpdateModule};
use crossbeam::channel;
use std::collections::HashSet;
use webevo_schedule::RevisitQueue;
use webevo_sim::{FetchError, FetchOutcome, Politeness, SimFetcher, WebUniverse};
use webevo_types::{PageId, Url};

/// A fetch completion flowing back from a crawl worker.
struct CrawlDone {
    url: Url,
    t: f64,
    result: Result<FetchOutcome, FetchError>,
}

/// A ranking request: snapshots of the state the RankingModule scans.
struct RankRequest {
    collection: Collection,
    all_urls: AllUrls,
}

/// A ranking response: new importance scores and replacement proposals.
struct RankResponse {
    importance: Vec<(PageId, f64)>,
    replacements: Vec<(PageId, Url)>,
}

/// The multi-threaded incremental crawler.
pub struct ThreadedCrawler {
    config: IncrementalConfig,
    workers: usize,
    collection: Collection,
    all_urls: AllUrls,
    queue: RevisitQueue,
    queued: HashSet<PageId>,
    /// Ranking-proposed admissions; eviction happens on crawl success
    /// (see the single-threaded engine for the rationale).
    admissions: HashSet<PageId>,
    update: UpdateModule,
    metrics: CrawlMetrics,
    ranking_applied: u64,
    run_start: f64,
}

impl ThreadedCrawler {
    /// Create with `workers` parallel CrawlModules.
    pub fn new(config: IncrementalConfig, workers: usize) -> ThreadedCrawler {
        assert!(workers >= 1);
        let default_interval = config.capacity as f64 / config.crawl_rate_per_day;
        ThreadedCrawler {
            workers,
            collection: Collection::new(config.capacity, config.history_window),
            all_urls: AllUrls::new(),
            queue: RevisitQueue::new(),
            queued: HashSet::new(),
            admissions: HashSet::new(),
            update: UpdateModule::new(config.revisit, config.estimator, default_interval),
            metrics: CrawlMetrics::default(),
            ranking_applied: 0,
            run_start: 0.0,
            config,
        }
    }

    /// The collection (for inspection).
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    /// Ranking outcomes applied.
    pub fn ranking_applied(&self) -> u64 {
        self.ranking_applied
    }

    fn enqueue(&mut self, url: Url, due: f64) {
        if self.queued.insert(url.page) {
            self.queue.push(url, due);
        }
    }

    /// Run against the universe from `start` to `end` days. Workers build
    /// their own fetchers (politeness per worker; the coordinator is the
    /// single scheduler so per-site pacing is preserved by the queue).
    pub fn run(&mut self, universe: &WebUniverse, start: f64, end: f64) -> &CrawlMetrics {
        assert!(end > start);
        self.run_start = start;
        for site in universe.sites() {
            if let Some(root) = universe.occupant(site.id, 0, start) {
                let url = Url::new(site.id, root);
                self.all_urls.discover(url, start);
                self.enqueue(url, start);
            }
        }
        let step = 1.0 / self.config.crawl_rate_per_day;
        self.metrics.observe_speed(self.config.crawl_rate_per_day);

        let (work_tx, work_rx) = channel::unbounded::<(Url, f64)>();
        let (done_tx, done_rx) = channel::unbounded::<CrawlDone>();
        let (rank_req_tx, rank_req_rx) = channel::unbounded::<RankRequest>();
        let (rank_res_tx, rank_res_rx) = channel::unbounded::<RankResponse>();

        let workers = self.workers;
        let ranking_config = self.config.ranking.clone();

        crossbeam::scope(|scope| {
            // --- CrawlModule workers. ---
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move |_| {
                    let mut fetcher =
                        SimFetcher::new(universe).with_politeness(Politeness::unrestricted());
                    while let Ok((url, t)) = work_rx.recv() {
                        let result = webevo_sim::Fetcher::fetch(&mut fetcher, url, t);
                        if done_tx.send(CrawlDone { url, t, result }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx); // coordinator holds the only receiver

            // --- RankingModule thread. ---
            scope.spawn(move |_| {
                let mut ranking = RankingModule::new(ranking_config);
                while let Ok(mut req) = rank_req_rx.recv() {
                    let outcome = ranking.run(&mut req.collection, &req.all_urls);
                    let importance = req
                        .collection
                        .iter()
                        .map(|(&p, s)| (p, s.importance))
                        .collect();
                    if rank_res_tx
                        .send(RankResponse { importance, replacements: outcome.replacements })
                        .is_err()
                    {
                        break;
                    }
                }
            });

            // --- Coordinator: the UpdateModule role. ---
            let mut t = start;
            let mut outstanding = 0usize;
            let mut ranking_in_flight = false;
            let mut next_ranking = start + self.config.ranking_interval_days;
            let mut next_sample = start;
            loop {
                // Apply completed fetches (non-blocking drain).
                while let Ok(done) = done_rx.try_recv() {
                    outstanding -= 1;
                    self.apply_result(universe, done);
                }
                // Apply a ranking outcome if one is ready.
                if let Ok(res) = rank_res_rx.try_recv() {
                    ranking_in_flight = false;
                    self.apply_ranking(res);
                }
                if t >= next_sample {
                    self.sample_metrics(universe, t.min(end));
                    next_sample += self.config.sample_interval_days;
                }
                if t >= next_ranking {
                    if ranking_in_flight {
                        // Back-pressure: the previous pass must land before
                        // the next is due. Waiting here (only on the pass
                        // boundary, never per fetch) keeps ranking at most
                        // one interval behind simulated time instead of
                        // letting the coordinator outrun PageRank by an
                        // unbounded, timing-dependent amount.
                        if let Ok(res) = rank_res_rx.recv() {
                            ranking_in_flight = false;
                            self.apply_ranking(res);
                        }
                    }
                    // Ship snapshots; the crawl path continues immediately.
                    let req = RankRequest {
                        collection: self.collection.clone(),
                        all_urls: self.all_urls.clone(),
                    };
                    if rank_req_tx.send(req).is_ok() {
                        ranking_in_flight = true;
                    }
                    next_ranking += self.config.ranking_interval_days;
                }
                if t >= end {
                    if outstanding == 0 {
                        break;
                    }
                    // Drain stragglers.
                    if let Ok(done) = done_rx.recv() {
                        outstanding -= 1;
                        self.apply_result(universe, done);
                    }
                    continue;
                }
                if outstanding < workers {
                    if let Some(visit) = self.queue.pop() {
                        self.queued.remove(&visit.url.page);
                        if work_tx.send((visit.url, t)).is_ok() {
                            outstanding += 1;
                        }
                        t += step;
                        continue;
                    }
                }
                if outstanding > 0 {
                    // Pipeline full or queue empty: wait for a completion.
                    if let Ok(done) = done_rx.recv() {
                        outstanding -= 1;
                        self.apply_result(universe, done);
                    }
                } else {
                    // Nothing to do this slot.
                    t += step;
                }
            }
            drop(work_tx); // workers exit
            drop(rank_req_tx); // ranking thread exits
            // Apply any in-flight ranking outcome rather than discarding
            // the work (recv returns Err once the ranking thread exits).
            while let Ok(res) = rank_res_rx.recv() {
                self.apply_ranking(res);
            }
        })
        .expect("crawler threads do not panic");
        self.sample_metrics(universe, end);
        &self.metrics
    }

    fn apply_result(&mut self, universe: &WebUniverse, done: CrawlDone) {
        let CrawlDone { url, t, result } = done;
        match result {
            Ok(outcome) => {
                self.metrics.record_fetch(true);
                if self.collection.contains(url.page) {
                    self.collection.update(url.page, outcome.checksum, outcome.links.clone(), t);
                } else {
                    let admitted = self.admissions.remove(&url.page);
                    if self.collection.is_full() {
                        if !admitted {
                            return;
                        }
                        if let Some(victim) = self.collection.least_important() {
                            if let Some(stored) = self.collection.discard(victim) {
                                self.queue.remove(stored.url);
                                self.queued.remove(&victim);
                                self.update.forget(victim);
                            }
                        }
                    }
                    self.collection.save(url, outcome.checksum, outcome.links.clone(), t);
                    let birth = universe.page(url.page).birth;
                    if birth >= self.run_start {
                        self.metrics.record_admission_latency(t - birth);
                        let found = self
                            .all_urls
                            .info(url)
                            .map(|i| i.discovered)
                            .unwrap_or(t);
                        self.metrics.record_discovery_latency(t - found);
                    }
                }
                for link in &outcome.links {
                    let first_sighting = !self.all_urls.contains(*link);
                    self.all_urls.add_in_link(*link, url.page, t);
                    if !self.collection.is_full() && !self.collection.contains(link.page) {
                        if first_sighting {
                            if self.queued.insert(link.page) {
                                self.queue.push_front(*link);
                            }
                        } else {
                            self.enqueue(*link, t);
                        }
                    }
                }
                let due = self.update.next_due(url.page, t);
                self.enqueue(url, due);
            }
            Err(FetchError::NotFound) => {
                self.metrics.record_fetch(false);
                self.all_urls.mark_dead(url, t);
                self.admissions.remove(&url.page);
                if self.collection.discard(url.page).is_some() {
                    self.update.forget(url.page);
                }
            }
            Err(FetchError::Transient) => {
                self.metrics.record_fetch(false);
                self.enqueue(url, t + 0.25);
            }
            Err(FetchError::RateLimited { retry_at }) => {
                self.enqueue(url, retry_at.max(t + 0.01));
            }
        }
    }

    fn apply_ranking(&mut self, res: RankResponse) {
        self.ranking_applied += 1;
        for (p, importance) in res.importance {
            if let Some(stored) = self.collection.get_mut(p) {
                stored.importance = importance;
            }
        }
        for (_victim, admit) in res.replacements {
            // The snapshot may be stale: admit may already be stored.
            if self.collection.contains(admit.page) {
                continue;
            }
            self.admissions.insert(admit.page);
            if self.queued.insert(admit.page) {
                self.queue.push_front(admit);
            }
        }
        self.update
            .reallocate(&self.collection, self.config.crawl_rate_per_day);
    }

    fn sample_metrics(&mut self, universe: &WebUniverse, t: f64) {
        if self.collection.is_empty() {
            self.metrics.sample(t, 0.0, 0.0);
            return;
        }
        let mut fresh = 0usize;
        let mut age_sum = 0.0;
        let n = self.collection.len();
        for (&p, stored) in self.collection.iter() {
            if universe.copy_is_fresh(p, stored.last_crawl, t) {
                fresh += 1;
            } else {
                let page = universe.page(p);
                let staled_at = page
                    .process
                    .first_event_after(stored.last_crawl)
                    .unwrap_or(page.death)
                    .min(page.death);
                age_sum += (t - staled_at).max(0.0);
            }
        }
        self.metrics.sample(t, fresh as f64 / n as f64, age_sum / n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{IncrementalCrawler, IncrementalConfig};
    use crate::modules::{EstimatorKind, RevisitStrategy};
    use crate::modules::RankingConfig;
    use webevo_sim::UniverseConfig;

    fn config(capacity: usize) -> IncrementalConfig {
        IncrementalConfig {
            capacity,
            crawl_rate_per_day: capacity as f64 / 5.0,
            ranking_interval_days: 2.0,
            revisit: RevisitStrategy::Uniform,
            estimator: EstimatorKind::Ep,
            history_window: 100,
            sample_interval_days: 1.0,
            ranking: RankingConfig::default(),
        }
    }

    #[test]
    fn threaded_fills_collection() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(55));
        let mut crawler = ThreadedCrawler::new(config(50), 4);
        crawler.run(&u, 0.0, 50.0);
        assert!(
            crawler.collection().len() >= 45,
            "len={}",
            crawler.collection().len()
        );
        assert!(crawler.ranking_applied() > 5);
    }

    #[test]
    fn threaded_matches_single_threaded_statistically() {
        // Fixed composition (no churn, capacity covers every reachable
        // page): any freshness difference is then pure scheduling, which
        // must agree between the engines. Under churn the engines hold
        // *different but equally valid* page sets, because admission
        // ordering is race-dependent — exactly as in a real concurrent
        // crawler.
        let mut ucfg = UniverseConfig::test_scale(56);
        ucfg.churn = false;
        ucfg.pages_per_site = 20;
        ucfg.window_size = 20;
        let u = WebUniverse::generate(ucfg);
        let capacity = 200; // 10 sites × 20 slots: everything fits
        let mut threaded = ThreadedCrawler::new(config(capacity), 4);
        threaded.run(&u, 0.0, 60.0);
        let mut fetcher = webevo_sim::SimFetcher::new(&u);
        let mut single = IncrementalCrawler::new(config(capacity));
        single.run(&u, &mut fetcher, 0.0, 60.0);
        let f_threaded = threaded.metrics().average_freshness_from(30.0);
        let f_single = single.metrics().average_freshness_from(30.0);
        assert!(
            (f_threaded - f_single).abs() < 0.08,
            "threaded {f_threaded} vs single {f_single}"
        );
    }

    #[test]
    fn single_worker_still_works() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(57));
        let mut crawler = ThreadedCrawler::new(config(30), 1);
        crawler.run(&u, 0.0, 30.0);
        assert!(crawler.collection().len() >= 25);
    }
}
